"""Dependency-free minimization of conjunctive queries (core computation).

Chandra & Merlin showed that every conjunctive query has a unique (up to
renaming) minimal equivalent subquery — its *core* — obtained by repeatedly
removing conjuncts that can be "folded" onto the rest.  Removing a conjunct
always makes the query weaker (``Q ⊆ Q_reduced``), so the reduced query is
equivalent to Q iff ``Q_reduced ⊆ Q``, i.e. iff there is a homomorphism
from Q onto the reduced query fixing the summary row.

Minimization *under dependencies* (the paper's notion of non-minimality in
the presence of Σ) lives in :mod:`repro.containment.equivalence`
(:func:`~repro.containment.equivalence.minimize_under`), which goes through
the chase-based containment test; this module provides the Σ = ∅ base case
it builds on.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.exceptions import QueryError
from repro.homomorphism.query_homomorphism import has_query_homomorphism
from repro.queries.conjunctive_query import ConjunctiveQuery


def _without_conjunct_or_none(query: ConjunctiveQuery, label: str) -> Optional[ConjunctiveQuery]:
    """Drop a conjunct unless doing so would make the query unsafe.

    A conjunct carrying the only occurrence of a summary-row variable can
    never be redundant (removing it changes the query's output variables),
    so minimization simply skips it.
    """
    try:
        return query.without_conjunct(label)
    except QueryError:
        return None


def folds_onto_subquery(query: ConjunctiveQuery, subquery: ConjunctiveQuery) -> bool:
    """True if Q maps homomorphically onto the subquery, fixing the summary row.

    The subquery is assumed to use (a subset of) Q's conjuncts and the same
    summary row, so "fixing the summary row" is the identity requirement on
    summary entries.
    """
    return has_query_homomorphism(
        query.conjuncts, query.summary_row,
        subquery.conjuncts, subquery.summary_row,
    )


def removable_conjuncts(query: ConjunctiveQuery) -> List[str]:
    """Labels of conjuncts whose individual removal preserves equivalence."""
    labels: List[str] = []
    if len(query) <= 1:
        return labels
    for conjunct in query.conjuncts:
        reduced = _without_conjunct_or_none(query, conjunct.label)
        if reduced is not None and folds_onto_subquery(query, reduced):
            labels.append(conjunct.label)
    return labels


def minimize(query: ConjunctiveQuery, name: Optional[str] = None) -> ConjunctiveQuery:
    """Compute the core: a minimal subquery equivalent to ``query``.

    Conjuncts are examined in label order and removed greedily whenever the
    remaining query still admits a folding homomorphism from the original.
    Greedy removal is correct because equivalence to the original is
    maintained at every step and the core is unique up to isomorphism.
    """
    current = query
    changed = True
    while changed and len(current) > 1:
        changed = False
        for conjunct in current.conjuncts:
            reduced = _without_conjunct_or_none(current, conjunct.label)
            if reduced is not None and folds_onto_subquery(query, reduced):
                current = reduced
                changed = True
                break
    if name is not None:
        current = current.renamed(name)
    return current


def core_of(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """Alias of :func:`minimize` named after the standard terminology."""
    return minimize(query)


def is_minimal(query: ConjunctiveQuery) -> bool:
    """True if no proper subquery of ``query`` is equivalent to it."""
    return not removable_conjuncts(query)


def minimization_report(query: ConjunctiveQuery) -> Tuple[ConjunctiveQuery, List[str]]:
    """Return the minimized query together with the labels removed."""
    minimized = minimize(query)
    kept = {c.label for c in minimized.conjuncts}
    removed = [c.label for c in query.conjuncts if c.label not in kept]
    return minimized, removed
