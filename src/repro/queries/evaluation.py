"""Evaluating conjunctive queries over finite databases.

``Q(B)`` is defined via homomorphisms: a tuple is in the answer iff it is
the image of the summary row under some homomorphism from Q to B
(Section 2).  This module is a thin query-level wrapper over the generic
engine in :mod:`repro.homomorphism`; the storage package provides an
independent join-based evaluator that the test suite cross-checks against
this one.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Set, Tuple

from repro.exceptions import EvaluationError
from repro.homomorphism.database_homomorphism import (
    answers_contain,
    database_target_index,
    evaluate_atoms,
)
from repro.homomorphism.problem import TargetIndex
from repro.queries.conjunctive_query import ConjunctiveQuery
from repro.relational.database import Database


def evaluate(query: ConjunctiveQuery, database: Database,
             index: Optional[TargetIndex] = None) -> Set[Tuple[Any, ...]]:
    """Compute the answer relation Q(B).

    ``index`` may be a prebuilt :func:`database_target_index` when the same
    database is queried repeatedly (the finite-containment sampler does
    this).
    """
    _require_compatible(query, database)
    return evaluate_atoms(query.conjuncts, query.summary_row, database, index=index)


def output_tuples(query: ConjunctiveQuery, database: Database) -> Set[Tuple[Any, ...]]:
    """Alias of :func:`evaluate` named after the paper's Q(D) notation."""
    return evaluate(query, database)


def satisfies_boolean(query: ConjunctiveQuery, database: Database) -> bool:
    """For Boolean queries: is the answer non-empty?

    A Boolean query is one whose summary row contains only constants; its
    answer is either empty or the single constant row.
    """
    return bool(evaluate(query, database))


def answer_contains(query: ConjunctiveQuery, database: Database,
                    row: Sequence[Any]) -> bool:
    """Membership test ``row ∈ Q(B)`` without enumerating the full answer."""
    _require_compatible(query, database)
    return answers_contain(query.conjuncts, query.summary_row, database, row)


def answers_contained_in(query: ConjunctiveQuery, other: ConjunctiveQuery,
                         database: Database) -> bool:
    """Check ``Q(B) ⊆ Q'(B)`` on one concrete database.

    This is the per-database check that finite containment quantifies over
    all finite databases; the finite-containment sampler calls it on many
    generated databases.
    """
    query.require_same_interface(other)
    index = database_target_index(database)
    left = evaluate(query, database, index=index)
    if not left:
        return True
    right = evaluate(other, database, index=index)
    return left <= right


def _require_compatible(query: ConjunctiveQuery, database: Database) -> None:
    """The database must supply every relation the query mentions."""
    for relation_name in query.relations_used():
        if relation_name not in database:
            raise EvaluationError(
                f"database has no relation {relation_name!r} required by query {query.name}"
            )
        expected = query.input_schema.relation(relation_name).arity
        actual = database.relation(relation_name).arity
        if expected != actual:
            raise EvaluationError(
                f"relation {relation_name!r} has arity {actual} in the database "
                f"but {expected} in the query's input schema"
            )
