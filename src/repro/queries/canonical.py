"""Canonical databases (frozen queries).

"The conjuncts of a query Q can be viewed as tuples in a database
satisfying the query's input scheme, where each variable is interpreted as
a unique new constant" (Section 3).  The canonical database is the basic
device behind the Chandra–Merlin containment test and behind Theorem 1's
"consider chase(Q) as a database satisfying Σ" step.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.queries.conjunctive_query import ConjunctiveQuery
from repro.relational.database import Database
from repro.terms.term import Constant, Term, Variable


def freeze_symbol(term: Term) -> Any:
    """The database value a query symbol freezes to.

    Constants freeze to their own value; variables freeze to a fresh value
    derived from their (unique) name.  Distinct variables freeze to
    distinct values because variable names are unique within a query.
    """
    if isinstance(term, Constant):
        return term.value
    return f"⟨{term.name}⟩"


def freeze_query(query: ConjunctiveQuery) -> Dict[Term, Any]:
    """The freezing map: every symbol of the query to a database value."""
    return {term: freeze_symbol(term) for term in query.symbols()}


def canonical_database(query: ConjunctiveQuery) -> Tuple[Database, Dict[Term, Any]]:
    """The canonical database of a query and the freezing map used.

    Returns a pair ``(database, freezing)`` where ``database`` has one row
    per conjunct (with variables replaced by frozen values) and
    ``freezing`` maps every query symbol to its frozen value.  The frozen
    summary row ``tuple(freezing[t] for t in query.summary_row)`` is, by
    construction, in ``query(database)``.
    """
    freezing = freeze_query(query)
    database = Database(query.input_schema)
    for conjunct in query.conjuncts:
        row = tuple(freezing[term] for term in conjunct.terms)
        database.add(conjunct.relation, row)
    return database, freezing


def frozen_summary_row(query: ConjunctiveQuery) -> Tuple[Any, ...]:
    """The summary row under the freezing map (an element of Q(canonical DB))."""
    freezing = freeze_query(query)
    return tuple(freezing[term] if isinstance(term, Variable) else term.value
                 for term in query.summary_row)
