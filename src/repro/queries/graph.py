"""The symbol-sharing graph of a query (Section 4).

Theorem 3's proof works with the graph G_Q' that has a vertex for the
summary row and for each conjunct of Q', with an edge between two vertices
whenever the corresponding conjuncts (or conjunct and summary row) share a
symbol.  Its connected components and their diameters determine how deep a
finite approximation of the chase must be built; the finite-containment
module uses :class:`QueryGraph` to compute the paper's ``(d + 1)·k_Σ``
depth.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, List, Optional, Set

from repro.queries.conjunctive_query import ConjunctiveQuery
from repro.terms.term import Term, Variable

#: Identifier of the summary-row vertex in the graph.
SUMMARY_VERTEX = "__summary__"


class QueryGraph:
    """Vertices are conjunct labels plus the summary row; edges share symbols."""

    def __init__(self, query: ConjunctiveQuery, include_summary_vertex: bool = True):
        self._query = query
        self._include_summary = include_summary_vertex
        self._symbols: Dict[str, Set[Term]] = {}
        for conjunct in query.conjuncts:
            self._symbols[conjunct.label] = {
                t for t in conjunct.terms if isinstance(t, Variable)
            }
        if include_summary_vertex:
            self._symbols[SUMMARY_VERTEX] = {
                t for t in query.summary_row if isinstance(t, Variable)
            }
        self._adjacency = self._build_adjacency()

    def _build_adjacency(self) -> Dict[str, Set[str]]:
        adjacency: Dict[str, Set[str]] = {vertex: set() for vertex in self._symbols}
        vertices = list(self._symbols)
        for i, first in enumerate(vertices):
            for second in vertices[i + 1:]:
                if self._symbols[first] & self._symbols[second]:
                    adjacency[first].add(second)
                    adjacency[second].add(first)
        return adjacency

    # -- basic accessors ----------------------------------------------------

    @property
    def vertices(self) -> List[str]:
        return list(self._symbols)

    def neighbours(self, vertex: str) -> Set[str]:
        return set(self._adjacency[vertex])

    def edge_count(self) -> int:
        return sum(len(n) for n in self._adjacency.values()) // 2

    def shares_symbol(self, first: str, second: str) -> bool:
        """True if the two vertices share at least one variable."""
        return second in self._adjacency[first]

    # -- connectivity -----------------------------------------------------------

    def connected_components(self) -> List[FrozenSet[str]]:
        """Connected components as frozensets of vertex labels."""
        remaining = set(self._symbols)
        components: List[FrozenSet[str]] = []
        while remaining:
            start = next(iter(remaining))
            component = self._reachable_from(start)
            components.append(frozenset(component))
            remaining -= component
        return components

    def _reachable_from(self, start: str) -> Set[str]:
        seen = {start}
        frontier = deque([start])
        while frontier:
            vertex = frontier.popleft()
            for neighbour in self._adjacency[vertex]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        return seen

    def is_connected(self) -> bool:
        """True if the whole graph (summary vertex included) is connected."""
        return len(self.connected_components()) <= 1

    def component_of(self, vertex: str) -> FrozenSet[str]:
        return frozenset(self._reachable_from(vertex))

    def component_containing_summary(self) -> Optional[FrozenSet[str]]:
        """The component of the summary-row vertex, if that vertex exists."""
        if SUMMARY_VERTEX not in self._symbols:
            return None
        return self.component_of(SUMMARY_VERTEX)

    # -- distances -------------------------------------------------------------------

    def eccentricity(self, vertex: str) -> int:
        """Greatest BFS distance from ``vertex`` within its component."""
        distances = self._bfs_distances(vertex)
        return max(distances.values()) if distances else 0

    def _bfs_distances(self, start: str) -> Dict[str, int]:
        distances = {start: 0}
        frontier = deque([start])
        while frontier:
            vertex = frontier.popleft()
            for neighbour in self._adjacency[vertex]:
                if neighbour not in distances:
                    distances[neighbour] = distances[vertex] + 1
                    frontier.append(neighbour)
        return distances

    def diameter(self) -> int:
        """Maximum eccentricity over all vertices (per-component maximum).

        This is the ``d`` of Theorem 3; for a disconnected graph it is the
        maximum diameter over the connected components, which is how the
        theorem's proof uses it.
        """
        if not self._symbols:
            return 0
        return max(self.eccentricity(vertex) for vertex in self._symbols)

    def component_diameter(self, component: FrozenSet[str]) -> int:
        """Diameter of a single connected component."""
        return max((self.eccentricity(vertex) for vertex in component), default=0)

    # -- reporting -----------------------------------------------------------------------

    def describe(self) -> str:
        """Human-readable description used in chase/finite-model reports."""
        components = self.connected_components()
        lines = [
            f"query graph of {self._query.name}: {len(self.vertices)} vertices, "
            f"{self.edge_count()} edges, {len(components)} component(s), "
            f"diameter {self.diameter()}"
        ]
        for index, component in enumerate(sorted(components, key=sorted), start=1):
            members = ", ".join(sorted(component))
            lines.append(f"  component {index}: {{{members}}}")
        return "\n".join(lines)
