"""Conjunctive queries.

A conjunctive query (Section 2 of the paper) has an input database scheme,
an output relation scheme, distinguished variables (DVs), nondistinguished
variables (NDVs), a set of conjuncts (atoms over the input relations whose
entries are DVs, NDVs, or constants), and a summary row of DVs and
constants.  This package provides the query objects, a fluent builder,
evaluation over finite databases, the canonical-database view of a query,
the symbol-sharing graph used in Section 4, and dependency-free
minimization (core computation).
"""

from repro.queries.conjunct import Conjunct
from repro.queries.conjunctive_query import ConjunctiveQuery
from repro.queries.builder import QueryBuilder
from repro.queries.canonical import canonical_database, freeze_query
from repro.queries.evaluation import evaluate, output_tuples, satisfies_boolean
from repro.queries.graph import QueryGraph
from repro.queries.minimization import core_of, is_minimal, minimize

__all__ = [
    "Conjunct",
    "ConjunctiveQuery",
    "QueryBuilder",
    "QueryGraph",
    "canonical_database",
    "core_of",
    "evaluate",
    "freeze_query",
    "is_minimal",
    "minimize",
    "output_tuples",
    "satisfies_boolean",
]
