"""The :class:`ConjunctiveQuery` object.

Formally (Section 2 of the paper) a conjunctive query consists of an input
database scheme, an output relation scheme, a set of distinguished
variables, a set of nondistinguished variables, a set of distinct
conjuncts, and a summary row whose entries are DVs or constants.  This
module provides that object together with validation, substitution, and
the bookkeeping (symbol sets, sizes) the chase and containment procedures
need.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Set, Tuple

from repro.exceptions import QueryError
from repro.relational.schema import DatabaseSchema
from repro.queries.conjunct import Conjunct
from repro.terms.substitution import Substitution
from repro.terms.term import Constant, DistinguishedVariable, NonDistinguishedVariable, Term, Variable


class ConjunctiveQuery:
    """A conjunctive query over a database schema.

    Parameters
    ----------
    input_schema:
        The database scheme the query is addressed to.
    conjuncts:
        The query's atoms.  Labels are made unique automatically (``c1``,
        ``c2``, ... in the given order) when duplicates occur, because the
        chase needs to refer to occurrences of conjuncts.
    summary_row:
        Entries are distinguished variables or constants; this is the row
        returned for every homomorphic embedding of the query.
    output_attributes:
        Names of the output relation scheme's columns; defaults to
        ``out1..outp``.
    name:
        Optional display name used in reports.
    """

    def __init__(self, input_schema: DatabaseSchema,
                 conjuncts: Sequence[Conjunct],
                 summary_row: Sequence[Term],
                 output_attributes: Optional[Sequence[str]] = None,
                 name: str = "Q"):
        self._input_schema = input_schema
        self._name = name
        self._summary_row = tuple(summary_row)
        self._conjuncts = self._normalise_conjuncts(conjuncts)
        self._output_attributes = self._normalise_output(output_attributes)
        self._validate()

    # -- construction helpers ------------------------------------------------

    def _normalise_conjuncts(self, conjuncts: Sequence[Conjunct]) -> Tuple[Conjunct, ...]:
        conjuncts = list(conjuncts)
        if not conjuncts:
            raise QueryError("a conjunctive query must have at least one conjunct")
        seen_labels: Set[str] = set()
        normalised: List[Conjunct] = []
        counter = 0
        for conjunct in conjuncts:
            label = conjunct.label
            needs_fresh = not label or label in seen_labels or label == conjunct.relation
            if needs_fresh:
                counter += 1
                label = f"c{counter}"
                while label in seen_labels:
                    counter += 1
                    label = f"c{counter}"
            if label in seen_labels:
                raise QueryError(f"duplicate conjunct label {label!r}")
            seen_labels.add(label)
            normalised.append(conjunct.with_label(label))
        return tuple(normalised)

    def _normalise_output(self, output_attributes: Optional[Sequence[str]]) -> Tuple[str, ...]:
        if output_attributes is None:
            return tuple(f"out{i}" for i in range(1, len(self._summary_row) + 1))
        attributes = tuple(output_attributes)
        if len(attributes) != len(self._summary_row):
            raise QueryError(
                f"output scheme has {len(attributes)} attributes but the summary row "
                f"has {len(self._summary_row)} entries"
            )
        return attributes

    def _validate(self) -> None:
        for conjunct in self._conjuncts:
            if conjunct.relation not in self._input_schema:
                raise QueryError(
                    f"conjunct {conjunct} refers to relation {conjunct.relation!r} "
                    f"which is not in the input schema"
                )
            expected = self._input_schema.relation(conjunct.relation).arity
            if conjunct.arity != expected:
                raise QueryError(
                    f"conjunct {conjunct} has arity {conjunct.arity}, "
                    f"but relation {conjunct.relation!r} has arity {expected}"
                )
        body_variables = {
            term
            for conjunct in self._conjuncts
            for term in conjunct.terms
            if isinstance(term, (DistinguishedVariable, NonDistinguishedVariable))
        }
        for entry in self._summary_row:
            if isinstance(entry, Constant):
                continue
            if isinstance(entry, NonDistinguishedVariable):
                raise QueryError(
                    f"summary row entry {entry} is a nondistinguished variable; "
                    "summary entries must be distinguished variables or constants"
                )
            if isinstance(entry, DistinguishedVariable):
                if entry not in body_variables:
                    raise QueryError(
                        f"summary row variable {entry} does not occur in any conjunct "
                        "(the query would be unsafe)"
                    )
                continue
            raise QueryError(f"summary row entry {entry!r} is not a term")

    # -- identity / rendering --------------------------------------------------

    @property
    def name(self) -> str:
        return self._name

    @property
    def input_schema(self) -> DatabaseSchema:
        return self._input_schema

    @property
    def conjuncts(self) -> Tuple[Conjunct, ...]:
        return self._conjuncts

    @property
    def summary_row(self) -> Tuple[Term, ...]:
        return self._summary_row

    @property
    def output_attributes(self) -> Tuple[str, ...]:
        return self._output_attributes

    @property
    def output_arity(self) -> int:
        return len(self._summary_row)

    def __len__(self) -> int:
        """Number of conjuncts (the |Q| used in the paper's bounds)."""
        return len(self._conjuncts)

    def __iter__(self) -> Iterator[Conjunct]:
        return iter(self._conjuncts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConjunctiveQuery):
            return NotImplemented
        return (
            self._summary_row == other._summary_row
            and set(self._conjuncts) == set(other._conjuncts)
            and self._input_schema == other._input_schema
        )

    def __hash__(self) -> int:
        return hash((self._summary_row, frozenset(self._conjuncts)))

    def __str__(self) -> str:
        head = ", ".join(str(t) for t in self._summary_row)
        body = ", ".join(str(c) for c in self._conjuncts)
        return f"{self._name}({head}) :- {body}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ConjunctiveQuery {self}>"

    # -- symbol bookkeeping ------------------------------------------------------

    def symbols(self) -> Set[Term]:
        """All symbols (variables and constants) occurring in the query."""
        result: Set[Term] = set(self._summary_row)
        for conjunct in self._conjuncts:
            result.update(conjunct.symbols())
        return result

    def variables(self) -> Set[Variable]:
        """All variables occurring in the conjuncts or the summary row."""
        return {t for t in self.symbols() if isinstance(t, Variable)}

    def distinguished_variables(self) -> Set[DistinguishedVariable]:
        return {t for t in self.variables() if isinstance(t, DistinguishedVariable)}

    def nondistinguished_variables(self) -> Set[Variable]:
        return {t for t in self.variables() if not isinstance(t, DistinguishedVariable)}

    def constants(self) -> Set[Constant]:
        return {t for t in self.symbols() if isinstance(t, Constant)}

    def conjuncts_for(self, relation: str) -> Tuple[Conjunct, ...]:
        """The conjuncts associated with one relation."""
        return tuple(c for c in self._conjuncts if c.relation == relation)

    def conjunct_by_label(self, label: str) -> Conjunct:
        for conjunct in self._conjuncts:
            if conjunct.label == label:
                return conjunct
        raise QueryError(f"query has no conjunct labelled {label!r}")

    def relations_used(self) -> Set[str]:
        return {c.relation for c in self._conjuncts}

    def is_boolean(self) -> bool:
        """True if the summary row contains only constants."""
        return all(isinstance(t, Constant) for t in self._summary_row)

    # -- transformation ------------------------------------------------------------

    def substitute(self, substitution: Substitution, name: Optional[str] = None) -> "ConjunctiveQuery":
        """Apply a substitution to every conjunct and to the summary row.

        Distinguished variables mapped to other variables or constants are
        allowed (this is exactly what the FD chase rule does to the summary
        row), so the result may have constants where DVs used to be.
        """
        new_conjuncts = [c.substitute(substitution) for c in self._conjuncts]
        new_summary = substitution.apply_tuple(self._summary_row)
        return ConjunctiveQuery(
            input_schema=self._input_schema,
            conjuncts=new_conjuncts,
            summary_row=new_summary,
            output_attributes=self._output_attributes,
            name=name or self._name,
        )

    def with_conjuncts(self, conjuncts: Sequence[Conjunct], name: Optional[str] = None) -> "ConjunctiveQuery":
        """Same interface (schema, summary, output) over a different body."""
        return ConjunctiveQuery(
            input_schema=self._input_schema,
            conjuncts=conjuncts,
            summary_row=self._summary_row,
            output_attributes=self._output_attributes,
            name=name or self._name,
        )

    def without_conjunct(self, label: str, name: Optional[str] = None) -> "ConjunctiveQuery":
        """Drop the conjunct with the given label (used by minimization)."""
        remaining = [c for c in self._conjuncts if c.label != label]
        if len(remaining) == len(self._conjuncts):
            raise QueryError(f"query has no conjunct labelled {label!r}")
        if not remaining:
            raise QueryError("cannot drop the last conjunct of a query")
        return self.with_conjuncts(remaining, name=name)

    def renamed(self, name: str) -> "ConjunctiveQuery":
        """Same query with a different display name."""
        return ConjunctiveQuery(
            input_schema=self._input_schema,
            conjuncts=self._conjuncts,
            summary_row=self._summary_row,
            output_attributes=self._output_attributes,
            name=name,
        )

    # -- interface compatibility -----------------------------------------------------

    def same_interface_as(self, other: "ConjunctiveQuery") -> bool:
        """True if containment between the two queries is well-posed.

        The paper requires equal input schemes and equal output schemes;
        we check the input schema and the output arity (column naming is
        cosmetic).
        """
        return (
            self._input_schema == other._input_schema
            and self.output_arity == other.output_arity
        )

    def require_same_interface(self, other: "ConjunctiveQuery") -> None:
        if not self.same_interface_as(other):
            raise QueryError(
                f"queries {self._name} and {other._name} do not have the same "
                "input/output interface; containment is not well-posed"
            )

    # -- sizes used by the paper's bounds ----------------------------------------------

    def size(self) -> int:
        """|Q|: the number of conjuncts."""
        return len(self._conjuncts)

    def total_symbol_occurrences(self) -> int:
        """Total number of term occurrences (a finer size measure)."""
        return sum(c.arity for c in self._conjuncts) + len(self._summary_row)
