"""A fluent builder for conjunctive queries.

Building a :class:`~repro.queries.conjunctive_query.ConjunctiveQuery`
directly requires creating term objects by hand.  The builder lets callers
write the query the way the paper writes them::

    builder = QueryBuilder(schema, name="Q1")
    q1 = (
        builder
        .head("e")                      # summary row: the DV e
        .atom("EMP", "e", "s", "d")     # EMP(e, s, d)
        .atom("DEP", "d", "l")          # DEP(d, l)
        .build()
    )

String arguments are interpreted as variable names (distinguished if they
appear in the head, nondistinguished otherwise); any non-string argument,
or a string passed through :meth:`QueryBuilder.constant`, becomes a
constant.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import QueryError
from repro.queries.conjunct import Conjunct
from repro.queries.conjunctive_query import ConjunctiveQuery
from repro.relational.schema import DatabaseSchema
from repro.terms.term import Constant, DistinguishedVariable, NonDistinguishedVariable, Term


class _ConstantMarker:
    """Wrapper distinguishing an explicit constant from a variable name."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value


class QueryBuilder:
    """Accumulates head variables and atoms, then builds the query.

    The builder is single-use: :meth:`build` freezes the accumulated state
    into a :class:`ConjunctiveQuery`.  Calling :meth:`build` twice returns
    equal queries.
    """

    def __init__(self, schema: DatabaseSchema, name: str = "Q"):
        self._schema = schema
        self._name = name
        self._head: List[Any] = []
        self._atoms: List[Tuple[str, Tuple[Any, ...], str]] = []
        self._output_attributes: Optional[Sequence[str]] = None

    # -- head -----------------------------------------------------------------

    def head(self, *entries: Any) -> "QueryBuilder":
        """Declare the summary row.

        String entries become distinguished variables; other values (or
        values wrapped by :meth:`constant`) become constants.
        """
        self._head = list(entries)
        return self

    def output(self, *attribute_names: str) -> "QueryBuilder":
        """Optionally name the output relation scheme's columns."""
        self._output_attributes = attribute_names
        return self

    # -- body -----------------------------------------------------------------

    def atom(self, relation: str, *entries: Any, label: str = "") -> "QueryBuilder":
        """Add one conjunct over ``relation`` with the given entries."""
        if relation not in self._schema:
            raise QueryError(f"unknown relation {relation!r} in atom")
        self._atoms.append((relation, tuple(entries), label))
        return self

    @staticmethod
    def constant(value: Any) -> _ConstantMarker:
        """Mark a value (for example a string) as a constant, not a variable."""
        return _ConstantMarker(value)

    # -- build -----------------------------------------------------------------

    def build(self, name: Optional[str] = None) -> ConjunctiveQuery:
        """Create the query from the accumulated head and atoms."""
        if not self._atoms:
            raise QueryError("cannot build a query with no atoms")
        head_names = {entry for entry in self._head if isinstance(entry, str)}
        term_cache: Dict[str, Term] = {}

        def to_term(entry: Any) -> Term:
            if isinstance(entry, _ConstantMarker):
                return Constant(entry.value)
            if isinstance(entry, (Constant, DistinguishedVariable, NonDistinguishedVariable)):
                return entry
            if isinstance(entry, str):
                if entry not in term_cache:
                    if entry in head_names:
                        term_cache[entry] = DistinguishedVariable(entry)
                    else:
                        term_cache[entry] = NonDistinguishedVariable(entry)
                return term_cache[entry]
            return Constant(entry)

        conjuncts = [
            Conjunct(relation, [to_term(entry) for entry in entries], label=label)
            for relation, entries, label in self._atoms
        ]
        summary = tuple(to_term(entry) for entry in self._head)
        return ConjunctiveQuery(
            input_schema=self._schema,
            conjuncts=conjuncts,
            summary_row=summary,
            output_attributes=self._output_attributes,
            name=name or self._name,
        )


def query(schema: DatabaseSchema, head: Sequence[Any], atoms: Sequence[Sequence[Any]],
          name: str = "Q") -> ConjunctiveQuery:
    """One-shot convenience wrapper around :class:`QueryBuilder`.

    ``atoms`` is a sequence of ``(relation, entry, entry, ...)`` tuples::

        q = query(schema, ["e"], [("EMP", "e", "s", "d"), ("DEP", "d", "l")])
    """
    builder = QueryBuilder(schema, name=name)
    builder.head(*head)
    for atom in atoms:
        builder.atom(atom[0], *atom[1:])
    return builder.build()
