"""Conjuncts: the atoms of a conjunctive query.

A conjunct is associated with a relation of the input scheme and has one
entry per column of that relation; each entry is a DV, an NDV, or a
constant.  During the chase, conjuncts additionally carry a *label* (a
stable identifier used for deterministic ordering and for naming created
NDVs) and a *level* (Section 3), but level bookkeeping lives in the chase
package — here a conjunct is just the syntactic object.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Sequence, Set, Tuple

from repro.exceptions import QueryError
from repro.terms.substitution import Substitution
from repro.terms.term import Constant, Term, Variable


@dataclass(frozen=True)
class Conjunct:
    """One atom ``R(t1, ..., tm)`` of a conjunctive query.

    ``label`` is a stable identifier; two conjuncts with the same relation
    and terms but different labels are distinct conjuncts (the paper's
    C_Q is a set of *distinct* conjuncts, and the chase needs to talk about
    occurrences).  Labels also give the deterministic "lexicographically
    first conjunct" order used by the chase policy.
    """

    relation: str
    terms: Tuple[Term, ...]
    label: str = ""

    def __init__(self, relation: str, terms: Sequence[Term], label: str = ""):
        if not relation:
            raise QueryError("conjunct must name a relation")
        if not terms:
            raise QueryError(f"conjunct over {relation!r} must have at least one term")
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "terms", tuple(terms))
        object.__setattr__(self, "label", label or relation)

    # -- accessors ---------------------------------------------------------

    @property
    def arity(self) -> int:
        return len(self.terms)

    def __iter__(self) -> Iterator[Term]:
        return iter(self.terms)

    def __getitem__(self, position: int) -> Term:
        return self.terms[position]

    def term_at(self, position: int) -> Term:
        """Entry in 0-based column ``position``."""
        if not 0 <= position < self.arity:
            raise QueryError(
                f"column {position} out of range for conjunct {self}"
            )
        return self.terms[position]

    def terms_at(self, positions: Sequence[int]) -> Tuple[Term, ...]:
        """Entries in the listed 0-based columns, in order."""
        return tuple(self.term_at(p) for p in positions)

    def __str__(self) -> str:
        body = ", ".join(str(t) for t in self.terms)
        return f"{self.relation}({body})"

    def describe(self) -> str:
        """Rendering that includes the label (used in chase graph dumps)."""
        return f"[{self.label}] {self}"

    # -- symbol bookkeeping ---------------------------------------------------

    def symbols(self) -> Set[Term]:
        """All terms occurring in this conjunct (constants included)."""
        return set(self.terms)

    def variables(self) -> Set[Variable]:
        """All variables occurring in this conjunct."""
        return {t for t in self.terms if isinstance(t, Variable)}

    def constants(self) -> Set[Constant]:
        """All constants occurring in this conjunct."""
        return {t for t in self.terms if isinstance(t, Constant)}

    def positions_of(self, term: Term) -> Tuple[int, ...]:
        """All 0-based columns in which ``term`` occurs."""
        return tuple(i for i, t in enumerate(self.terms) if t == term)

    def has_repeated_variable(self) -> bool:
        """True if some variable occurs in more than one column."""
        seen: Dict[Term, int] = {}
        for term in self.terms:
            if isinstance(term, Variable):
                seen[term] = seen.get(term, 0) + 1
        return any(count > 1 for count in seen.values())

    # -- transformation --------------------------------------------------------

    def substitute(self, substitution: Substitution, label: str = "") -> "Conjunct":
        """Apply a substitution to every entry; keeps the label by default."""
        return Conjunct(
            relation=self.relation,
            terms=substitution.apply_tuple(self.terms),
            label=label or self.label,
        )

    def with_label(self, label: str) -> "Conjunct":
        """Same atom, different label (``self`` when it already matches)."""
        if label == self.label:
            return self
        return Conjunct(relation=self.relation, terms=self.terms, label=label)

    def same_atom_as(self, other: "Conjunct") -> bool:
        """True if relation and terms agree (labels ignored)."""
        return self.relation == other.relation and self.terms == other.terms
