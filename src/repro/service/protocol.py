"""The service wire protocol: newline-delimited JSON requests and envelopes.

One request per line, one response envelope per line.  The request
format extends the ``repro batch`` JSONL question format — an object
with ``query`` and ``query_prime`` strings is a containment question
exactly as ``repro batch`` reads it — with an explicit ``op`` field for
the other procedures and optional inline ``schema``/``deps``/``views``
texts so one connection can serve many tenants::

    {"id": "1", "query": "Q2(e) :- EMP(e, s, d)",
     "query_prime": "Q1(e) :- EMP(e, s, d), DEP(d, l)",
     "schema": "EMP(emp, sal, dept)\\nDEP(dept, loc)",
     "deps": "EMP[dept] <= DEP[dept]"}
    {"op": "chase", "query": "...", "max_level": 4, "variant": "R"}
    {"op": "rewrite", "query": "...", "views": "V(e, d) :- ..."}
    {"op": "catalog.put", "views": "V(e, d) :- ..."}
    {"op": "rewrite", "query": "...", "catalog_fp": "9f3b..."}
    {"op": "stats"}
    {"op": "ping"}

A server may carry default schema/deps texts (``repro serve --schema
--deps``); a request that omits them uses the defaults.  Responses are
envelopes — ``{"id", "ok", "op", "shard", "elapsed_s", "cache_hit",
"result"}`` on success, ``{"id", "ok": false, "error": {"kind",
"message"}}`` on failure — so a client never has to guess whether a
line is an answer or a diagnostic.

Everything in this module is deliberately free of I/O: the asyncio
server, the worker pool (thread or process shards), and the tests all
call the same :func:`parse_line` / :func:`handle_record` /
:func:`shard_for` functions.
"""

from __future__ import annotations

import hashlib
import json
import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.api.config import SolverConfig
from repro.api.fingerprints import (
    catalog_fingerprint,
    dependency_fingerprint,
    schema_fingerprint,
)
from repro.api.requests import ChaseRequest, ContainmentRequest, RewriteRequest
from repro.api.solver import Solver
from repro.chase.engine import ChaseVariant
from repro.containment.serialization import (
    chase_result_to_dict,
    containment_result_to_dict,
)
from repro.dependencies.dependency_set import DependencySet
from repro.exceptions import ReproError
from repro.obs import health as obs_health
from repro.obs.metrics import get_registry
from repro.obs.profiler import get_profiler
from repro.obs.tracing import get_tracer, maybe_span
from repro.parser.dependency_parser import parse_dependencies
from repro.parser.query_parser import parse_query
from repro.parser.schema_parser import parse_schema
from repro.parser.view_parser import parse_views

#: Version 2 added the fleet tier: ``fleet.*`` coordinator operations,
#: the ``capacity``/``forbidden`` error kinds, and coordinator envelopes
#: carrying a ``node`` field.  Worker-facing records are unchanged, so a
#: v1 client keeps working against both workers and coordinators.
PROTOCOL_VERSION = 2

#: Per-line buffer limit for asyncio streams speaking this protocol.
#: asyncio's default ``readline`` limit is 64 KiB, which a single chase
#: response (every chase atom, serialized) exceeds routinely; every
#: ``start_server``/``open_connection`` in the service and fleet layers
#: must pass this instead, or large-but-legitimate envelopes kill the
#: connection mid-stream.
STREAM_LIMIT = 2 ** 24  # 16 MiB

#: The operations a worker understands.  ``contain`` is the default for
#: records without an ``op`` (the ``repro batch`` question shape).
OPERATIONS = ("contain", "chase", "rewrite", "stats", "ping")

#: The **user tier**: data-plane and read-only control operations any
#: tenant may issue, against a worker or a fleet coordinator alike.
USER_OPERATIONS = OPERATIONS

#: The **admin tier**: fleet-management operations a coordinator accepts
#: only with its admin token (node lifecycle, quotas, fleet status) —
#: the kuberdock-style ADMIN/USER command split.  Workers reject these
#: (they are meaningful only where the member registry lives).
ADMIN_OPERATIONS = ("fleet.register", "fleet.heartbeat", "fleet.drain",
                    "fleet.evacuate", "fleet.quota", "fleet.status")

#: The **catalog tier**: view-catalog registration, so tenants with
#: thousand-view catalogs stop resending the views text per request.
#: ``catalog.put`` parses and fingerprints a catalog once and stores it;
#: subsequent ``rewrite`` records may carry ``catalog_fp`` instead of
#: ``views``.  At a worker the pool front end answers these un-gated
#: (its listener is inside the trust boundary, like ``obs.*``); at a
#: coordinator the mutations (``put``/``drop``) are admin-gated and
#: broadcast to every alive node, while ``catalog.list`` stays user-tier
#: so tenants can discover what is registered.
CATALOG_OPERATIONS = ("catalog.put", "catalog.list", "catalog.drop")

#: The **observability tier**: metrics scrape, trace lookup, health, and
#: profiler control.  A worker answers these un-gated (its listener is
#: already inside the trust boundary); a coordinator gates them behind
#: the same admin token as ``fleet.*`` because its port is the one
#: exposed to tenants.  ``obs.profile`` mutates process state (it starts
#: and stops the sampling profiler), the other three are read-only.
OBS_OPERATIONS = ("obs.metrics", "obs.trace", "obs.health", "obs.profile")

#: Profiler actions ``obs.profile`` accepts.
PROFILE_ACTIONS = ("status", "start", "stop", "top", "reset")

#: Error kinds carried in error envelopes, coarse enough for a client to
#: switch on: ``protocol`` (malformed line/record), ``parse`` (schema,
#: dependency, query, or view text did not parse), ``budget`` (a budget
#: field is invalid or above the server's limit), ``overloaded``
#: (admission control rejected the request), ``capacity`` (the fleet has
#: no chase-node budget left for this request — the envelope carries a
#: ``capacity`` detail object), ``forbidden`` (an admin-tier operation
#: without the admin token), ``internal`` (unexpected).
ERROR_KINDS = ("protocol", "parse", "budget", "overloaded", "capacity",
               "forbidden", "internal")


class ProtocolError(ReproError):
    """A request violates the wire protocol (carries an error kind)."""

    def __init__(self, kind: str, message: str):
        super().__init__(message)
        self.kind = kind if kind in ERROR_KINDS else "internal"


class ServiceOverloaded(ReproError):
    """Admission control rejected a request (queues full)."""


@dataclass(frozen=True)
class ServiceDefaults:
    """Server-side default texts a request may omit."""

    schema_text: Optional[str] = None
    deps_text: Optional[str] = None


@dataclass(frozen=True)
class ServiceLimits:
    """Per-request budget ceilings the server enforces.

    Client-supplied budgets are clamped to these, so one tenant cannot
    buy an unbounded chase on a shared service.  Non-positive ceilings
    are a front-end misconfiguration; they fail here, at construction,
    rather than per-request deep inside a shard.
    """

    max_conjuncts: int = 100_000
    max_level: int = 64

    def __post_init__(self) -> None:
        if self.max_conjuncts <= 0:
            raise ReproError(
                f"ServiceLimits.max_conjuncts must be positive, got {self.max_conjuncts}")
        if self.max_level <= 0:
            raise ReproError(
                f"ServiceLimits.max_level must be positive, got {self.max_level}")


class TenantParser:
    """Memoised parsing of schema/deps/views texts.

    Tenants repeat: the same schema text arrives on every request of a
    tenant, so the router and each shard keep a small text→object memo
    instead of re-tokenizing per request.  Bounded by dropping the
    oldest half when full (tenant counts are small; precise LRU order
    is not worth the bookkeeping here).
    """

    def __init__(self, max_entries: int = 256):
        self._max_entries = max_entries
        self._schemas: Dict[str, Any] = {}
        self._dependencies: Dict[Tuple[str, str], Any] = {}
        self._catalogs: Dict[Tuple[str, str], Any] = {}

    def _bound(self, memo: Dict) -> None:
        if len(memo) > self._max_entries:
            for key in list(memo)[: self._max_entries // 2]:
                del memo[key]

    def schema(self, text: str):
        if text not in self._schemas:
            self._schemas[text] = parse_schema(text)
            self._bound(self._schemas)
        return self._schemas[text]

    def dependencies(self, text: Optional[str], schema_text: str) -> DependencySet:
        key = (text or "", schema_text)
        if key not in self._dependencies:
            schema = self.schema(schema_text)
            if text is None or not text.strip():
                parsed = DependencySet(schema=schema)
            else:
                parsed = parse_dependencies(text, schema)
            self._dependencies[key] = parsed
            self._bound(self._dependencies)
        return self._dependencies[key]

    def catalog(self, text: str, schema_text: str):
        key = (text, schema_text)
        if key not in self._catalogs:
            self._catalogs[key] = parse_views(text, self.schema(schema_text))
            self._bound(self._catalogs)
        return self._catalogs[key]


class CatalogStore:
    """Registered view catalogs, addressed by content fingerprint.

    ``catalog.put`` parses a views text once, fingerprints the parsed
    catalog (:func:`~repro.api.fingerprints.catalog_fingerprint`, so a
    tenant can compute the same handle locally), and keeps the text;
    a later ``rewrite`` record carrying ``catalog_fp`` is materialised
    back into a plain rewrite by :func:`resolve_catalog_record` before
    routing.  Thread-safe: the pool front end mutates it from whatever
    thread submits, while shard threads never see it at all.

    Registration is idempotent — re-putting identical views text lands
    on the same fingerprint and simply refreshes the entry.
    """

    def __init__(self, max_entries: int = 256):
        if max_entries <= 0:
            raise ReproError(
                f"CatalogStore.max_entries must be positive, got {max_entries}")
        self._max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: Dict[str, Dict[str, Any]] = {}

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def put(self, views_text: str, schema_text: str, parser: TenantParser,
            name: Optional[str] = None) -> Dict[str, Any]:
        """Parse, fingerprint, and store one catalog; returns its entry."""
        catalog = parser.catalog(views_text, schema_text)
        if len(catalog) == 0:
            raise ProtocolError("protocol",
                                "catalog.put got an empty views text")
        fingerprint = catalog_fingerprint(catalog)
        entry = {
            "fingerprint": fingerprint,
            "name": name or fingerprint[:12],
            "view_count": len(catalog),
            "views_text": views_text,
            "schema_text": schema_text,
        }
        with self._lock:
            replaced = fingerprint in self._entries
            self._entries[fingerprint] = entry
            if len(self._entries) > self._max_entries:
                # Same bounding policy as TenantParser: drop the oldest
                # half (registration counts are small; precise LRU order
                # is not worth the bookkeeping).
                for key in list(self._entries)[: self._max_entries // 2]:
                    del self._entries[key]
        return dict(entry, replaced=replaced)

    def get(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            return self._entries.get(fingerprint)

    def drop(self, fingerprint: str) -> bool:
        with self._lock:
            return self._entries.pop(fingerprint, None) is not None

    def rows(self) -> List[Dict[str, Any]]:
        """Public listing rows — everything except the (large) texts."""
        with self._lock:
            return [{"fingerprint": entry["fingerprint"],
                     "name": entry["name"],
                     "view_count": entry["view_count"]}
                    for entry in self._entries.values()]

    def entries(self) -> List[Dict[str, Any]]:
        """Full entries (texts included) — how a coordinator replays its
        registered catalogs to a node that joined after the ``put``."""
        with self._lock:
            return [dict(entry) for entry in self._entries.values()]


# ---------------------------------------------------------------------------
# Parsing and validation
# ---------------------------------------------------------------------------


def parse_line(line: str) -> Dict[str, Any]:
    """One wire line → a validated record dict (op resolved and checked)."""
    stripped = line.strip()
    if not stripped:
        raise ProtocolError("protocol", "empty request line")
    try:
        record = json.loads(stripped)
    except json.JSONDecodeError as error:
        raise ProtocolError("protocol", f"request is not valid JSON: {error}")
    if not isinstance(record, dict):
        raise ProtocolError(
            "protocol", f"request must be a JSON object, got {type(record).__name__}")
    return validate_record(record)


def validate_record(record: Dict[str, Any]) -> Dict[str, Any]:
    """Structural validation; returns the record with ``op`` made explicit."""
    op = record.get("op", "contain")
    if (op not in OPERATIONS and op not in OBS_OPERATIONS
            and op not in CATALOG_OPERATIONS):
        raise ProtocolError(
            "protocol",
            f"unknown op {op!r}; expected one of "
            f"{OPERATIONS + CATALOG_OPERATIONS + OBS_OPERATIONS}")
    record = dict(record, op=op)
    context = record.get("trace_context")
    if context is not None:
        if not isinstance(context, dict) or not isinstance(context.get("id"), str):
            raise ProtocolError(
                "protocol",
                "'trace_context' must be an object with a string 'id'")
        parent = context.get("parent")
        if parent is not None and not isinstance(parent, str):
            raise ProtocolError(
                "protocol", "'trace_context.parent' must be a string")
    if op in OBS_OPERATIONS:
        return _validate_obs_record(record)
    required = {"contain": ("query", "query_prime"),
                "chase": ("query",),
                "rewrite": ("query",),
                "catalog.put": ("views",),
                "catalog.drop": ("catalog_fp",)}.get(op, ())
    for key in required:
        if key not in record:
            raise ProtocolError("protocol", f"op {op!r} requires a {key!r} field")
    if op == "rewrite" and "views" not in record and "catalog_fp" not in record:
        raise ProtocolError(
            "protocol",
            "op 'rewrite' requires a 'views' text or a registered 'catalog_fp'")
    for key in ("query", "query_prime", "schema", "deps", "views",
                "catalog_fp", "name", "strategy"):
        if key in record and record[key] is not None and not isinstance(record[key], str):
            raise ProtocolError(
                "protocol",
                f"{key!r} must be a string, got {type(record[key]).__name__}")
    for key in ("max_conjuncts", "max_level"):
        if key in record and record[key] is not None:
            if isinstance(record[key], bool) or not isinstance(record[key], int):
                raise ProtocolError(
                    "budget",
                    f"{key!r} must be an integer, got {type(record[key]).__name__}")
            if record[key] <= 0:
                raise ProtocolError("budget", f"{key!r} must be positive")
    variant = record.get("variant")
    if variant is not None and variant not in ("R", "O"):
        raise ProtocolError("protocol", f"variant must be 'R' or 'O', got {variant!r}")
    return record


def _validate_obs_record(record: Dict[str, Any]) -> Dict[str, Any]:
    """Structural checks for the ``obs.*`` tier."""
    op = record["op"]
    fmt = record.get("format")
    if op == "obs.metrics" and fmt is not None and fmt not in ("json", "prometheus"):
        raise ProtocolError(
            "protocol", f"'format' must be 'json' or 'prometheus', got {fmt!r}")
    if op == "obs.trace":
        trace_id = record.get("trace_id")
        if trace_id is not None and not isinstance(trace_id, str):
            raise ProtocolError("protocol", "'trace_id' must be a string")
    if op == "obs.profile":
        action = record.get("action", "status")
        if action not in PROFILE_ACTIONS:
            raise ProtocolError(
                "protocol",
                f"'action' must be one of {PROFILE_ACTIONS}, got {action!r}")
    limit = record.get("limit")
    if limit is not None:
        if isinstance(limit, bool) or not isinstance(limit, int) or limit <= 0:
            raise ProtocolError("protocol", "'limit' must be a positive integer")
    return record


def handle_obs_record(record: Dict[str, Any],
                      shard: Optional[int] = None) -> Dict[str, Any]:
    """Answer one ``obs.*`` record from this process's observability state.

    Never raises, for the same reason as :func:`handle_record`.  Answers
    reflect the *answering process*: a front end answers from its own
    registry and trace store, which — under process-pool shards — does
    not include counters incremented inside shard subprocesses.  (Thread
    shards and the coordinator, which absorbs node spans, see
    everything.)
    """
    identifier = record.get("id")
    try:
        record = validate_record(record)
        op = record["op"]
        if op == "obs.metrics":
            if record.get("format") == "prometheus":
                result: Dict[str, Any] = {
                    "format": "prometheus",
                    "text": get_registry().render_prometheus(),
                }
            else:
                result = {"format": "json", "metrics": get_registry().snapshot()}
        elif op == "obs.trace":
            result = _obs_trace_result(record)
        elif op == "obs.health":
            result = obs_health()
        else:  # obs.profile
            result = _obs_profile_result(record)
        return _success_envelope(record, result, 0.0, None, shard)
    except ProtocolError as error:
        return error_envelope(identifier, error.kind, str(error), shard)
    except Exception as error:  # pragma: no cover - defensive: bugs become envelopes
        return error_envelope(identifier, "internal",
                              f"{type(error).__name__}: {error}", shard)


def _obs_trace_result(record: Dict[str, Any]) -> Dict[str, Any]:
    tracer = get_tracer()
    trace_id = record.get("trace_id")
    if trace_id is not None:
        spans = tracer.store.get(trace_id)
        return {"trace_id": trace_id, "found": spans is not None,
                "spans": spans or []}
    limit = record.get("limit") or 20
    if record.get("slow"):
        return {"slow_ops": tracer.slow_log.entries(limit),
                "threshold_s": tracer.slow_log.threshold_s}
    return {"traces": tracer.store.recent(limit)}


def _obs_profile_result(record: Dict[str, Any]) -> Dict[str, Any]:
    profiler = get_profiler()
    action = record.get("action", "status")
    if action == "start":
        interval = record.get("interval_s")
        if interval is not None and (isinstance(interval, bool)
                                     or not isinstance(interval, (int, float))
                                     or interval <= 0):
            raise ProtocolError("protocol", "'interval_s' must be a positive number")
        started = profiler.start(float(interval) if interval else None)
        return {"action": "start", "started": started,
                "running": profiler.running}
    if action == "stop":
        stopped = profiler.stop()
        return {"action": "stop", "stopped": stopped,
                "running": profiler.running}
    if action == "reset":
        profiler.reset()
        return {"action": "reset", "running": profiler.running}
    if action == "top":
        return dict(profiler.top(record.get("limit") or 20), action="top")
    return {"action": "status", "running": profiler.running,
            "interval_s": profiler.interval_s}


def _schema_text(record: Dict[str, Any], defaults: ServiceDefaults) -> str:
    text = record.get("schema") or defaults.schema_text
    if text is None:
        raise ProtocolError(
            "protocol",
            "request carries no 'schema' and the server has no default schema")
    return text


# ---------------------------------------------------------------------------
# Catalog registration (answered by the front end, never by a shard)
# ---------------------------------------------------------------------------


def handle_catalog_record(record: Dict[str, Any], store: CatalogStore,
                          defaults: ServiceDefaults = ServiceDefaults(),
                          parser: Optional[TenantParser] = None,
                          shard: Optional[int] = None) -> Dict[str, Any]:
    """Answer one ``catalog.*`` record against a catalog store.

    Never raises, for the same reason as :func:`handle_record`: on the
    wire an exception has nowhere else to go.
    """
    identifier = record.get("id")
    parser = parser if parser is not None else TenantParser()
    try:
        record = validate_record(record)
        op = record["op"]
        if op == "catalog.put":
            entry = store.put(record["views"], _schema_text(record, defaults),
                              parser, name=record.get("name"))
            result = {"fingerprint": entry["fingerprint"],
                      "name": entry["name"],
                      "view_count": entry["view_count"],
                      "replaced": entry["replaced"]}
        elif op == "catalog.list":
            result = {"catalogs": store.rows(), "count": len(store)}
        else:  # catalog.drop
            result = {"fingerprint": record["catalog_fp"],
                      "dropped": store.drop(record["catalog_fp"])}
        return _success_envelope(record, result, 0.0, None, shard)
    except ProtocolError as error:
        return error_envelope(identifier, error.kind, str(error), shard)
    except ReproError as error:
        return error_envelope(identifier, "parse", str(error), shard)
    except Exception as error:  # pragma: no cover - defensive: bugs become envelopes
        return error_envelope(identifier, "internal",
                              f"{type(error).__name__}: {error}", shard)


def resolve_catalog_record(record: Dict[str, Any],
                           store: CatalogStore) -> Dict[str, Any]:
    """Materialise a rewrite-by-fingerprint record into a plain rewrite.

    Returns the record unchanged unless it is a ``rewrite`` carrying a
    ``catalog_fp`` and no inline ``views``; then the registered
    catalog's views text (and its schema text, when the record names
    none) is substituted in, so routing and the shard solver see the
    record a text-carrying tenant would have sent.  An unregistered
    fingerprint raises :class:`ProtocolError` — the tenant must
    ``catalog.put`` first.
    """
    if record.get("op") != "rewrite" or record.get("views") is not None:
        return record
    fingerprint = record.get("catalog_fp")
    if not isinstance(fingerprint, str):
        return record
    entry = store.get(fingerprint)
    if entry is None:
        raise ProtocolError(
            "protocol",
            f"unknown catalog fingerprint {fingerprint!r}; register the "
            "catalog with catalog.put first")
    resolved = dict(record, views=entry["views_text"])
    if resolved.get("schema") is None:
        resolved["schema"] = entry["schema_text"]
    return resolved


# ---------------------------------------------------------------------------
# Shard routing
# ---------------------------------------------------------------------------


def routing_fingerprints(record: Dict[str, Any], defaults: ServiceDefaults,
                         parser: TenantParser) -> Tuple[str, str]:
    """The (schema, Σ) fingerprints identifying a record's tenant."""
    schema_text = _schema_text(record, defaults)
    schema = parser.schema(schema_text)
    sigma = parser.dependencies(record.get("deps", defaults.deps_text), schema_text)
    return schema_fingerprint(schema), dependency_fingerprint(sigma)


def shard_for(schema_fp: str, deps_fp: str, shard_count: int) -> int:
    """``hash(schema_fingerprint, dependency_fingerprint) % shard_count``.

    SHA-256 over the two fingerprints rather than ``hash()``: the
    builtin is salted per process, and routing must agree between the
    front end, restarted front ends, and the tests.

    ``shard_count`` is validated where pools are *constructed*
    (:class:`~repro.service.pool.ShardedSolverPool` refuses a
    non-positive count), so a misconfigured front end fails at startup;
    the guard here is a last-resort invariant check for direct callers.
    """
    if shard_count <= 0:
        raise ValueError("shard_count must be positive")
    digest = hashlib.sha256(f"{schema_fp}|{deps_fp}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % shard_count


# ---------------------------------------------------------------------------
# Envelopes
# ---------------------------------------------------------------------------


def error_envelope(identifier: Optional[Any], kind: str, message: str,
                   shard: Optional[int] = None) -> Dict[str, Any]:
    envelope: Dict[str, Any] = {
        "id": identifier,
        "ok": False,
        "error": {"kind": kind if kind in ERROR_KINDS else "internal",
                  "message": message},
    }
    if shard is not None:
        envelope["shard"] = shard
    return envelope


def _success_envelope(record: Dict[str, Any], result: Dict[str, Any],
                      elapsed_s: float, cache_hit: Optional[bool],
                      shard: Optional[int]) -> Dict[str, Any]:
    envelope: Dict[str, Any] = {
        "id": record.get("id"),
        "ok": True,
        "op": record["op"],
        "result": result,
        "elapsed_s": round(elapsed_s, 6),
    }
    if cache_hit is not None:
        envelope["cache_hit"] = cache_hit
    if shard is not None:
        envelope["shard"] = shard
    return envelope


# ---------------------------------------------------------------------------
# Worker-side execution
# ---------------------------------------------------------------------------


def handle_record(record: Dict[str, Any], solver: Solver,
                  defaults: ServiceDefaults = ServiceDefaults(),
                  limits: ServiceLimits = ServiceLimits(),
                  parser: Optional[TenantParser] = None,
                  shard: Optional[int] = None) -> Dict[str, Any]:
    """Execute one validated record against a shard's solver.

    Never raises: every failure — unparsable tenant text, budget abuse,
    an unexpected engine error — becomes an error envelope, because on
    the wire an exception has nowhere else to go.

    A record carrying a valid ``trace_context`` executes under a root
    span adopted from it (``service.<op>``), so the phase spans the
    engines open land in this process's trace store; the envelope then
    carries the ``trace_id``, plus the serialized spans when the context
    asked to ``collect`` (how a coordinator absorbs a node's spans).
    """
    context = record.get("trace_context")
    tracer = get_tracer()
    if (tracer.enabled and isinstance(context, dict)
            and isinstance(context.get("id"), str)):
        op = record.get("op", "contain")
        parent = context.get("parent")
        with tracer.start_trace(
                f"service.{op}", trace_id=context["id"],
                parent_id=parent if isinstance(parent, str) else None,
                op=op) as root:
            if shard is not None:
                root.tags["shard"] = shard
            envelope = _execute_record(record, solver, defaults, limits,
                                       parser, shard)
            root.tags["ok"] = bool(envelope.get("ok"))
        envelope["trace_id"] = root.trace_id
        if context.get("collect"):
            spans = tracer.store.get(root.trace_id)
            if spans:
                envelope["spans"] = spans
        return envelope
    return _execute_record(record, solver, defaults, limits, parser, shard)


def _execute_record(record: Dict[str, Any], solver: Solver,
                    defaults: ServiceDefaults, limits: ServiceLimits,
                    parser: Optional[TenantParser],
                    shard: Optional[int]) -> Dict[str, Any]:
    parser = parser if parser is not None else TenantParser()
    identifier = record.get("id")
    try:
        record = validate_record(record)
        if record["op"] in OBS_OPERATIONS:
            return handle_obs_record(record, shard)
        if record["op"] in CATALOG_OPERATIONS:
            raise ProtocolError(
                "protocol",
                f"op {record['op']!r} is answered by a catalog-owning front "
                "end (pool or coordinator), not a shard solver")
        return _dispatch(record, solver, defaults, limits, parser, shard)
    except ProtocolError as error:
        return error_envelope(identifier, error.kind, str(error), shard)
    except ReproError as error:
        return error_envelope(identifier, "parse", str(error), shard)
    except Exception as error:  # pragma: no cover - defensive: bugs become envelopes
        return error_envelope(identifier, "internal",
                              f"{type(error).__name__}: {error}", shard)


def _dispatch(record: Dict[str, Any], solver: Solver, defaults: ServiceDefaults,
              limits: ServiceLimits, parser: TenantParser,
              shard: Optional[int]) -> Dict[str, Any]:
    op = record["op"]
    if op == "ping":
        return _success_envelope(record, {"pong": True,
                                          "protocol_version": PROTOCOL_VERSION},
                                 0.0, None, shard)
    if op == "stats":
        return _success_envelope(
            record,
            {"cache_stats": solver.cache_stats(),
             "requests": solver.stats.total_requests},
            0.0, None, shard)

    with maybe_span("parse") as span:
        schema_text = _schema_text(record, defaults)
        schema = parser.schema(schema_text)
        sigma = parser.dependencies(record.get("deps", defaults.deps_text),
                                    schema_text)
        query = parse_query(record["query"], schema)
        if span is not None:
            span.tags.update(relations=len(schema), dependencies=len(sigma))
    max_conjuncts = min(record.get("max_conjuncts") or limits.max_conjuncts,
                        limits.max_conjuncts)

    if op == "contain":
        # The level ceiling also caps the termination-certified deepening
        # for general Σ, so a tenant whose weakly-acyclic rules saturate
        # very deep cannot monopolise a shard.
        max_level = min(record.get("max_level") or limits.max_level,
                        limits.max_level)
        config = solver.config.derive(max_conjuncts=max_conjuncts,
                                      saturation_level_cap=max_level)
        query_prime = parse_query(record["query_prime"], schema)
        response = solver.solve(ContainmentRequest(
            query, query_prime, sigma, config=config, tag=record.get("id")))
        result = containment_result_to_dict(response.result)
        result["budget"] = response.budget.as_dict()
        return _success_envelope(record, result, response.elapsed_s,
                                 response.cache_hit, shard)

    if op == "chase":
        max_level = min(record.get("max_level") or limits.max_level,
                        limits.max_level)
        variant = ChaseVariant(record.get("variant", "R"))
        config = solver.config.derive(variant=variant,
                                      chase_max_conjuncts=max_conjuncts)
        response = solver.solve(ChaseRequest(
            query, sigma, max_level=max_level, config=config,
            tag=record.get("id")))
        result = chase_result_to_dict(response.result,
                                      include_trace=bool(record.get("trace")))
        return _success_envelope(record, result, response.elapsed_s,
                                 response.cache_hit, shard)

    # op == "rewrite"
    views_text = record.get("views")
    if views_text is None:
        # A rewrite-by-fingerprint record reached a bare shard solver:
        # only a catalog-owning front end can resolve it (the pool does,
        # before routing — see resolve_catalog_record).
        raise ProtocolError(
            "protocol",
            f"catalog fingerprint {record.get('catalog_fp')!r} cannot be "
            "resolved here; route rewrite-by-fingerprint records through a "
            "pool or coordinator front end")
    catalog = parser.catalog(views_text, schema_text)
    config = solver.config.derive(max_conjuncts=max_conjuncts)
    if record.get("strategy") is not None:
        # Validated by SolverConfig via the rewriter registry; an
        # unknown name raises ViewError → a "parse" error envelope.
        config = config.derive(rewrite_strategy=record["strategy"])
    response = solver.solve(RewriteRequest(
        query, catalog, sigma, config=config, tag=record.get("id")))
    result = response.report.as_dict()
    return _success_envelope(record, result, response.elapsed_s,
                             response.cache_hit, shard)


def make_worker_solver(config: Optional[SolverConfig] = None,
                       persistent_cache=None) -> Solver:
    """One shard's solver: the given config with serial execution forced.

    A shard is itself the unit of parallelism; nested thread pools
    inside a shard would only fight the other shards for cores.
    """
    base = config or SolverConfig()
    return Solver(base.derive(parallelism=None, executor="serial"),
                  persistent_cache=persistent_cache)
