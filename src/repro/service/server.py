"""The asyncio NDJSON front end over a :class:`ShardedSolverPool`.

One JSON request per line in, one envelope per line out, over TCP or a
Unix socket.  Requests on one connection are answered in order (the
handler awaits each answer before reading the next line); concurrency
comes from serving many connections, each of which may be pinned to a
different shard by its tenant's fingerprints.

Backpressure is two-layered:

* **global admission control** — at most ``max_pending`` requests may
  be in flight across all connections; request ``max_pending + 1``
  is answered immediately with an ``overloaded`` envelope instead of
  queueing without bound;
* **bounded shard inboxes** — the pool rejects submissions to a full
  shard, which likewise surfaces as an ``overloaded`` envelope.

A client that sees ``overloaded`` should back off and retry; nothing
was executed.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Any, Dict, Optional, Tuple

from repro.exceptions import ReproError
from repro.obs import ensure_default_probe
from repro.obs.tracing import get_tracer, new_trace_id
from repro.service.pool import ShardedSolverPool
from repro.service.protocol import (
    OBS_OPERATIONS,
    STREAM_LIMIT,
    ProtocolError,
    ServiceOverloaded,
    error_envelope,
    handle_obs_record,
    parse_line,
)

#: Data-plane ops that get a server-minted ``trace_context`` when the
#: client did not send one: every request is traceable from the server
#: side (slow-op log, ``obs.trace`` recents) even with untraced clients.
_TRACED_OPERATIONS = frozenset({"contain", "chase", "rewrite"})


class SolverService:
    """A long-lived NDJSON solver server speaking the service protocol.

    ``unix_path`` selects a Unix socket; otherwise ``host:port`` TCP
    (``port=0`` binds an ephemeral port, reported by :attr:`address`).
    ``max_pending=None`` disables global admission control (the shard
    inboxes still bound the queue).
    """

    def __init__(self, pool: ShardedSolverPool, host: str = "127.0.0.1",
                 port: int = 0, unix_path: Optional[str] = None,
                 max_pending: Optional[int] = None,
                 slow_op_threshold: Optional[float] = None):
        if max_pending is not None and max_pending < 0:
            # Fail at startup: a negative admission limit is always a
            # misconfiguration.  (0 is legal and sheds every data-plane
            # request — the tests use it to simulate a saturated service.)
            raise ReproError(
                f"max_pending must be non-negative (or None to disable "
                f"admission control), got {max_pending}")
        if slow_op_threshold is not None and slow_op_threshold <= 0:
            raise ReproError(
                f"slow_op_threshold must be positive (or None to disable "
                f"the slow-op log), got {slow_op_threshold}")
        self._pool = pool
        self._host = host
        self._port = port
        self._unix_path = unix_path
        self._max_pending = max_pending
        self._in_flight = 0
        self._server: Optional[asyncio.AbstractServer] = None
        # Running a server is opting into observability: install the
        # default metrics probe (never displacing a custom one) and arm
        # the slow-op log if asked.  Both are process-wide by design —
        # the ``obs.*`` ops answer for the process, not one server.
        ensure_default_probe()
        if slow_op_threshold is not None:
            get_tracer().slow_log.threshold_s = slow_op_threshold

    @property
    def pool(self) -> ShardedSolverPool:
        return self._pool

    @property
    def address(self) -> Tuple[str, Any]:
        """``("unix", path)`` or ``("tcp", (host, port))`` once started."""
        if self._unix_path is not None:
            return ("unix", self._unix_path)
        if self._server is not None and self._server.sockets:
            return ("tcp", self._server.sockets[0].getsockname()[:2])
        return ("tcp", (self._host, self._port))

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        if self._unix_path is not None:
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=self._unix_path,
                limit=STREAM_LIMIT)
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, host=self._host, port=self._port,
                limit=STREAM_LIMIT)

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    # -- the connection handler ----------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    text = line.decode("utf-8")
                except UnicodeDecodeError as error:
                    # Decoding with errors="replace" would silently mangle
                    # tenant schema/deps text and route the request as if
                    # it were valid, so the request is still rejected —
                    # but a replace-decode is fine for *peeking the id*,
                    # which usually sits before the bad bytes, so the
                    # client can correlate the rejection with its request.
                    envelope = error_envelope(
                        _peek_id(line.decode("utf-8", errors="replace")),
                        "protocol",
                        f"request line is not valid UTF-8: {error}")
                else:
                    envelope = await self._answer(text)
                writer.write(json.dumps(envelope, sort_keys=True,
                                        default=str).encode("utf-8") + b"\n")
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
        except asyncio.CancelledError:
            # Shutdown cancelled us mid-read; end quietly — a handler
            # that finishes "cancelled" makes asyncio's stream callback
            # log a spurious traceback while the loop is closing.
            pass
        finally:
            # No wait_closed(): every response was drained already, and
            # awaiting the close handshake inside a cancelled task would
            # re-raise immediately anyway.
            writer.close()

    async def _answer(self, line: str) -> Dict[str, Any]:
        try:
            record = parse_line(line)
        except ProtocolError as error:
            return error_envelope(_peek_id(line), error.kind, str(error))
        if record["op"] == "stats":
            # Answered by the front end, not one shard: a service-level
            # stats op merges every shard's cache picture plus the
            # pool's routing counters into one document.
            try:
                return await self._service_stats(record)
            except ServiceOverloaded as error:
                return error_envelope(record.get("id"), "overloaded", str(error))
        if record["op"] in OBS_OPERATIONS:
            # Control plane, answered by the front end from its own
            # process state — which under process-pool shards does not
            # include subprocess-side counters (thread shards see all).
            return handle_obs_record(record)
        if (record["op"] in _TRACED_OPERATIONS
                and record.get("trace_context") is None
                and get_tracer().enabled):
            # An untraced data-plane request still gets a server-minted
            # trace, so obs.trace / the slow-op log cover all traffic.
            record["trace_context"] = {"id": new_trace_id()}
        if (record["op"] != "ping"  # control plane: answerable under shedding
                and self._max_pending is not None
                and self._in_flight >= self._max_pending):
            return error_envelope(
                record.get("id"), "overloaded",
                f"service has {self._in_flight} requests in flight "
                f"(limit {self._max_pending}); retry later")
        self._in_flight += 1
        try:
            # The pool resolves a concurrent.futures.Future from a worker
            # thread/process; wrap_future bridges it into this loop.
            future = self._pool.submit(record)
            return await asyncio.wrap_future(future)
        except ServiceOverloaded as error:
            return error_envelope(record.get("id"), "overloaded", str(error))
        except ProtocolError as error:
            return error_envelope(record.get("id"), error.kind, str(error))
        except ReproError as error:
            # Affinity routing parses schema/deps before a shard ever
            # sees the record, so unparsable tenant text surfaces here —
            # a client input problem, not a server bug.
            return error_envelope(record.get("id"), "parse", str(error))
        except Exception as error:
            return error_envelope(record.get("id"), "internal",
                                  f"{type(error).__name__}: {error}")
        finally:
            self._in_flight -= 1

    async def _service_stats(self, record: Dict[str, Any]) -> Dict[str, Any]:
        pool = self._pool
        futures = [shard.submit({"op": "stats"}) for shard in pool.shards]
        envelopes = [await asyncio.wrap_future(future) for future in futures]
        return {
            "id": record.get("id"),
            "ok": True,
            "op": "stats",
            "result": {
                "pool": pool.counters(),
                "shards": [pool.shard_snapshot(shard, envelope)
                           for shard, envelope in zip(pool.shards, envelopes)],
            },
        }

    # -- synchronous embedding ----------------------------------------------

    def run_in_thread(self) -> "ServiceThread":
        """Start the server on a daemon thread; returns a stoppable handle.

        For tests, examples, and embedding the service next to other
        work — the caller's thread stays free while the loop serves.
        """
        return ServiceThread(self)


def _peek_id(line: str) -> Optional[Any]:
    """Best-effort extraction of ``id`` from a line that failed validation."""
    try:
        record = json.loads(line)
        if isinstance(record, dict):
            return record.get("id")
    except (json.JSONDecodeError, ValueError):
        pass
    return None


class ServiceThread:
    """A :class:`SolverService` running on its own event-loop thread."""

    def __init__(self, service: SolverService):
        self._service = service
        self._loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self._thread = threading.Thread(target=self._main, name="repro-service",
                                        daemon=True)
        self._thread.start()
        self._started.wait(timeout=30)

    def _main(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_until_complete(self._service.start())
        self._started.set()
        self._loop.run_forever()
        self._loop.run_until_complete(self._service.stop())
        # Connection handlers blocked in readline() when the loop stopped
        # must be cancelled, or closing the loop destroys pending tasks.
        pending = asyncio.all_tasks(self._loop)
        for task in pending:
            task.cancel()
        if pending:
            self._loop.run_until_complete(
                asyncio.gather(*pending, return_exceptions=True))
        self._loop.close()

    @property
    def service(self) -> SolverService:
        return self._service

    @property
    def address(self) -> Tuple[str, Any]:
        return self._service.address

    def stop(self) -> None:
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=30)

    def __enter__(self) -> "ServiceThread":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
