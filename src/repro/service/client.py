"""A small synchronous client for the solver service.

Speaks the NDJSON protocol over TCP or a Unix socket; one request per
call, answered in order (the server processes a connection
sequentially).  The convenience methods mirror the protocol ops::

    with ServiceClient(port=7464) as client:
        client.ping()
        envelope = client.contain("Q2(e) :- EMP(e, s, d)",
                                  "Q1(e) :- EMP(e, s, d), DEP(d, l)",
                                  schema=schema_text, deps=deps_text)
        envelope["ok"] and envelope["result"]["holds"]

Raises :class:`ServiceClientError` on transport failures; protocol-level
failures come back as ordinary ``ok: false`` envelopes, which
:meth:`ServiceClient.check` converts to exceptions for callers that
prefer raising.

A dropped connection (server restart, idle timeout, a fleet node dying)
does not kill the client: for **idempotent** operations — every solver
op answers a pure question, so all of :data:`IDEMPOTENT_OPS` qualify —
:meth:`ServiceClient.request` reconnects and retries exactly once.
Non-idempotent records (fleet admin mutations) surface the transport
error instead, with the failing record's ``op`` and ``id`` named so the
caller knows precisely what may or may not have been applied.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, Optional

from repro.exceptions import ReproError
from repro.obs.tracing import new_trace_id

#: Operations safe to retry on a fresh connection after a transport
#: failure: each answers a pure question (no server-side state changes
#: beyond caches, which are idempotent by definition).  Fleet admin
#: mutations (``fleet.drain``, ``fleet.quota``, …) and ``obs.profile``
#: (it starts/stops the remote profiler) are deliberately absent — the
#: caller must decide whether they were applied.
IDEMPOTENT_OPS = frozenset(
    {"contain", "chase", "rewrite", "stats", "ping", "fleet.status",
     "catalog.list", "obs.metrics", "obs.trace", "obs.health"})

#: Data-plane ops the client stamps with a fresh ``trace_context``.
_TRACED_OPS = frozenset({"contain", "chase", "rewrite"})


class ServiceClientError(ReproError):
    """The connection failed or the server broke the line protocol."""


class ServiceTransportError(ServiceClientError):
    """The transport failed mid-request (socket error or truncated stream).

    Distinguished from :class:`ServiceClientError` because only
    transport failures are safely retriable: a malformed *response* on a
    live connection means the answer's fate is unknown.
    """


class ServiceClient:
    """A blocking NDJSON connection to a running solver service."""

    def __init__(self, host: str = "127.0.0.1", port: Optional[int] = None,
                 unix_path: Optional[str] = None, timeout: float = 60.0,
                 trace: bool = True):
        if (port is None) == (unix_path is None):
            raise ServiceClientError(
                "specify exactly one of port= (TCP) or unix_path=")
        self._host = host
        self._port = port
        self._unix_path = unix_path
        self._timeout = timeout
        self._trace = trace
        #: Trace id of the most recent data-plane request this client
        #: stamped (or adopted from a caller-supplied ``trace_context``)
        #: — the handle to pass to :meth:`obs_trace`.
        self.last_trace_id: Optional[str] = None
        self._socket: Optional[socket.socket] = None
        self._file = None

    # -- connection ----------------------------------------------------------

    def connect(self) -> "ServiceClient":
        if self._socket is not None:
            return self
        try:
            if self._unix_path is not None:
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                sock.settimeout(self._timeout)
                sock.connect(self._unix_path)
            else:
                sock = socket.create_connection((self._host, self._port),
                                                timeout=self._timeout)
        except OSError as error:
            raise ServiceClientError(f"cannot connect: {error}") from error
        self._socket = sock
        self._file = sock.makefile("rwb")
        return self

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:  # pragma: no cover
                pass
            self._file = None
        if self._socket is not None:
            try:
                self._socket.close()
            except OSError:  # pragma: no cover
                pass
            self._socket = None

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- the wire ------------------------------------------------------------

    def request(self, record: Dict[str, Any]) -> Dict[str, Any]:
        """Send one record, wait for its envelope.

        A transport failure on an idempotent op (see
        :data:`IDEMPOTENT_OPS`) reconnects and retries once — the common
        case being a server restart between requests on a long-lived
        client.  A second failure, or a failure on a non-idempotent op,
        raises :class:`ServiceTransportError` naming the record.

        Tracing clients (``trace=True``, the default) stamp data-plane
        records with a fresh ``trace_context`` — the minted id lands in
        :attr:`last_trace_id` so the caller can fetch the request's span
        tree back via :meth:`obs_trace`.  A caller-supplied context is
        respected (and its id adopted).
        """
        if record.get("op", "contain") in _TRACED_OPS:
            context = record.get("trace_context")
            if isinstance(context, dict) and isinstance(context.get("id"), str):
                self.last_trace_id = context["id"]
            elif self._trace and context is None:
                self.last_trace_id = new_trace_id()
                record = dict(record,
                              trace_context={"id": self.last_trace_id})
        self.connect()
        try:
            return self._exchange(record)
        except ServiceTransportError:
            self.close()
            if record.get("op", "contain") not in IDEMPOTENT_OPS:
                raise
            self.connect()
            return self._exchange(record)

    def _exchange(self, record: Dict[str, Any]) -> Dict[str, Any]:
        """One write/read round-trip on the current connection."""
        context = (f"op={record.get('op', 'contain')!r} "
                   f"request (id={record.get('id')!r})")
        try:
            self._file.write(json.dumps(record).encode("utf-8") + b"\n")
            self._file.flush()
            line = self._file.readline()
        except OSError as error:
            raise ServiceTransportError(
                f"transport error during {context}: {error}") from error
        if not line:
            raise ServiceTransportError(
                f"server closed the connection during {context}")
        try:
            envelope = json.loads(line)
        except json.JSONDecodeError as error:
            raise ServiceClientError(
                f"server sent a non-JSON line answering {context}: "
                f"{error}") from error
        if not isinstance(envelope, dict):
            raise ServiceClientError(
                f"server sent a non-object envelope answering {context}")
        return envelope

    @staticmethod
    def check(envelope: Dict[str, Any]) -> Dict[str, Any]:
        """The envelope's result, raising on ``ok: false``."""
        if not envelope.get("ok"):
            error = envelope.get("error") or {}
            raise ServiceClientError(
                f"{error.get('kind', 'unknown')}: {error.get('message', envelope)}")
        return envelope["result"]

    # -- convenience ops -----------------------------------------------------

    def ping(self) -> bool:
        return bool(self.check(self.request({"op": "ping"})).get("pong"))

    def stats(self) -> Dict[str, Any]:
        return self.check(self.request({"op": "stats"}))

    def contain(self, query: str, query_prime: str, *,
                schema: Optional[str] = None, deps: Optional[str] = None,
                identifier: Optional[str] = None,
                **budgets: Any) -> Dict[str, Any]:
        record = {"op": "contain", "query": query, "query_prime": query_prime,
                  "schema": schema, "deps": deps, "id": identifier, **budgets}
        return self.request(_drop_none(record))

    def chase(self, query: str, *, schema: Optional[str] = None,
              deps: Optional[str] = None, identifier: Optional[str] = None,
              **budgets: Any) -> Dict[str, Any]:
        record = {"op": "chase", "query": query, "schema": schema,
                  "deps": deps, "id": identifier, **budgets}
        return self.request(_drop_none(record))

    def rewrite(self, query: str, views: Optional[str] = None, *,
                catalog_fp: Optional[str] = None,
                strategy: Optional[str] = None,
                schema: Optional[str] = None,
                deps: Optional[str] = None, identifier: Optional[str] = None,
                **budgets: Any) -> Dict[str, Any]:
        """Rewrite against an inline views text or a registered catalog.

        Exactly one of ``views`` (the text) or ``catalog_fp`` (a
        fingerprint returned by :meth:`catalog_put`) identifies the
        catalog; ``strategy`` optionally picks a rewriter registered on
        the server (``"exhaustive"``/``"bucketed"``).
        """
        record = {"op": "rewrite", "query": query, "views": views,
                  "catalog_fp": catalog_fp, "strategy": strategy,
                  "schema": schema, "deps": deps, "id": identifier, **budgets}
        return self.request(_drop_none(record))

    # -- catalog registration ------------------------------------------------

    def catalog_put(self, views: str, *, schema: Optional[str] = None,
                    name: Optional[str] = None,
                    identifier: Optional[str] = None,
                    **extra: Any) -> Dict[str, Any]:
        """Register a view catalog; the result carries its fingerprint."""
        record = {"op": "catalog.put", "views": views, "schema": schema,
                  "name": name, "id": identifier, **extra}
        return self.request(_drop_none(record))

    def catalog_list(self, *, identifier: Optional[str] = None,
                     **extra: Any) -> Dict[str, Any]:
        """The registered catalogs (fingerprints and counts, not texts)."""
        record = {"op": "catalog.list", "id": identifier, **extra}
        return self.request(_drop_none(record))

    def catalog_drop(self, catalog_fp: str, *,
                     identifier: Optional[str] = None,
                     **extra: Any) -> Dict[str, Any]:
        """Unregister a catalog by fingerprint."""
        record = {"op": "catalog.drop", "catalog_fp": catalog_fp,
                  "id": identifier, **extra}
        return self.request(_drop_none(record))

    # -- observability ops ---------------------------------------------------

    def obs_metrics(self, *, format: str = "json",
                    identifier: Optional[str] = None,
                    **extra: Any) -> Dict[str, Any]:
        """The server's metrics — a JSON snapshot or Prometheus text."""
        record = {"op": "obs.metrics", "format": format, "id": identifier,
                  **extra}
        return self.check(self.request(_drop_none(record)))

    def obs_trace(self, trace_id: Optional[str] = None, *, slow: bool = False,
                  limit: Optional[int] = None,
                  identifier: Optional[str] = None,
                  **extra: Any) -> Dict[str, Any]:
        """One trace's spans, recent-trace summaries, or the slow-op log.

        ``trace_id=None`` lists recent traces (or, with ``slow=True``,
        the slow-op log); passing :attr:`last_trace_id` fetches the span
        tree of this client's previous request.
        """
        record = {"op": "obs.trace", "trace_id": trace_id,
                  "slow": slow or None, "limit": limit, "id": identifier,
                  **extra}
        return self.check(self.request(_drop_none(record)))

    def obs_health(self, *, identifier: Optional[str] = None,
                   **extra: Any) -> Dict[str, Any]:
        record = {"op": "obs.health", "id": identifier, **extra}
        return self.check(self.request(_drop_none(record)))

    def obs_profile(self, action: str = "status", *,
                    interval_s: Optional[float] = None,
                    limit: Optional[int] = None,
                    identifier: Optional[str] = None,
                    **extra: Any) -> Dict[str, Any]:
        """Control or query the server's sampling profiler."""
        record = {"op": "obs.profile", "action": action,
                  "interval_s": interval_s, "limit": limit, "id": identifier,
                  **extra}
        return self.check(self.request(_drop_none(record)))


def _drop_none(record: Dict[str, Any]) -> Dict[str, Any]:
    return {key: value for key, value in record.items() if value is not None}
