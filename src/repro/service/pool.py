"""The shard-affinity worker pool behind the solver service.

``N`` workers, each owning one :class:`~repro.api.solver.Solver`;
requests route by ``hash(schema_fingerprint, dependency_fingerprint)
% N`` (:func:`~repro.service.protocol.shard_for`), so every request of a
tenant lands on the same shard and that shard's chase/containment/
rewrite caches stay hot for exactly that tenant.  Random routing is
also available — not as a serving mode but as the experimental control
the E17 benchmark compares affinity against.

Three execution modes share one request path (``handle_record``):

* ``thread`` — one worker thread per shard (the default).  Shards share
  a single :class:`~repro.api.persistent.PersistentCache` connection
  when the config names one.
* ``process`` — one worker process per shard, for CPU parallelism
  beyond the GIL.  Each process opens its own connection to the shared
  persistent-cache file, which is how sibling workers warm each other.
* ``inline`` — shard solvers executed synchronously in the caller's
  thread.  No concurrency, identical routing and caching; used by
  deterministic tests and benchmarks.

Every shard queue is bounded: a full queue raises
:class:`~repro.service.protocol.ServiceOverloaded` at submission time
instead of buffering without limit, which is the pool's half of the
service's backpressure story (the asyncio front end adds global
admission control on top).
"""

from __future__ import annotations

import multiprocessing
import queue
import random
import threading
from concurrent.futures import Future
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.api.backend import CacheBackend
from repro.api.config import SolverConfig
from repro.api.persistent import PersistentCache
from repro.exceptions import ReproError
from repro.service.protocol import (
    CATALOG_OPERATIONS,
    CatalogStore,
    ProtocolError,
    ServiceDefaults,
    ServiceLimits,
    ServiceOverloaded,
    TenantParser,
    error_envelope,
    handle_catalog_record,
    handle_record,
    make_worker_solver,
    resolve_catalog_record,
    routing_fingerprints,
    shard_for,
)

POOL_MODES = ("thread", "process", "inline")

_STOP = None  # queue sentinel


def _process_shard_main(shard: int, config: SolverConfig,
                        defaults: ServiceDefaults, limits: ServiceLimits,
                        requests: multiprocessing.Queue,
                        responses: multiprocessing.Queue) -> None:
    """A process shard's main loop (module-level so it pickles)."""
    solver = make_worker_solver(config)
    parser = TenantParser()
    try:
        while True:
            record = requests.get()
            if record is _STOP:
                break
            responses.put(handle_record(record, solver, defaults, limits,
                                        parser, shard))
    finally:
        solver.close()


class _Shard:
    """One worker: a bounded inbox plus whatever executes it."""

    def __init__(self, index: int, pool: "ShardedSolverPool"):
        self.index = index
        self.submitted = 0
        self._pool = pool
        self._inbox: "queue.Queue" = queue.Queue(maxsize=pool.max_pending)
        mode = pool.mode
        if mode == "inline":
            self.solver = make_worker_solver(pool.config, pool.shared_persistent)
            self._thread = None
            self._process = None
        elif mode == "thread":
            self.solver = make_worker_solver(pool.config, pool.shared_persistent)
            self._thread = threading.Thread(
                target=self._thread_main, name=f"repro-shard-{index}", daemon=True)
            self._process = None
            self._thread.start()
        else:  # process
            self.solver = None
            context = multiprocessing.get_context()
            self._requests = context.Queue()
            self._responses = context.Queue()
            self._process = context.Process(
                target=_process_shard_main,
                args=(index, pool.config, pool.defaults, pool.limits,
                      self._requests, self._responses),
                name=f"repro-shard-{index}", daemon=True)
            self._process.start()
            # The dispatcher forwards one record at a time and matches the
            # single in-flight response, preserving FIFO order per shard —
            # exactly the semantics of a shard owning one solver.
            self._thread = threading.Thread(
                target=self._dispatch_main, name=f"repro-shard-{index}-dispatch",
                daemon=True)
            self._thread.start()

    # -- submission ----------------------------------------------------------

    def submit(self, record: Dict[str, Any]) -> "Future[Dict[str, Any]]":
        future: "Future[Dict[str, Any]]" = Future()
        if self._pool.mode == "inline":
            self.submitted += 1
            future.set_result(handle_record(
                record, self.solver, self._pool.defaults, self._pool.limits,
                self._pool.parser, self.index))
            return future
        try:
            self._inbox.put_nowait((record, future))
        except queue.Full:
            raise ServiceOverloaded(
                f"shard {self.index} has {self._inbox.maxsize} requests pending")
        self.submitted += 1
        return future

    # -- worker loops --------------------------------------------------------

    def _thread_main(self) -> None:
        parser = TenantParser()
        while True:
            item = self._inbox.get()
            if item is _STOP:
                break
            record, future = item
            response = handle_record(record, self.solver, self._pool.defaults,
                                     self._pool.limits, parser, self.index)
            if not future.cancelled():
                future.set_result(response)

    def _dispatch_main(self) -> None:
        while True:
            item = self._inbox.get()
            if item is _STOP:
                self._requests.put(_STOP)
                break
            record, future = item
            try:
                self._requests.put(record)
                response = self._responses.get()
            except Exception as error:  # pragma: no cover - child died mid-request
                if not future.cancelled():
                    future.set_exception(error)
                continue
            if not future.cancelled():
                future.set_result(response)

    # -- shutdown ------------------------------------------------------------

    def close(self) -> None:
        if self._thread is not None:
            self._inbox.put(_STOP)
            self._thread.join(timeout=30)
        if self._process is not None:
            self._process.join(timeout=30)
            if self._process.is_alive():  # pragma: no cover - defensive
                self._process.terminate()
        if self.solver is not None:
            self.solver.close()


class ShardedSolverPool:
    """``shard_count`` solvers with deterministic tenant→shard affinity."""

    def __init__(self, shard_count: int = 4,
                 config: Optional[SolverConfig] = None,
                 mode: str = "thread",
                 defaults: ServiceDefaults = ServiceDefaults(),
                 limits: ServiceLimits = ServiceLimits(),
                 max_pending: int = 1024,
                 routing_seed: int = 0,
                 cache_backend: Optional[CacheBackend] = None):
        if shard_count <= 0:
            raise ReproError("shard_count must be positive")
        if mode not in POOL_MODES:
            raise ReproError(
                f"unknown pool mode {mode!r}; expected one of {POOL_MODES}")
        if max_pending <= 0:
            raise ReproError("max_pending must be positive")
        if cache_backend is not None and mode == "process":
            # A Python object cannot cross the process boundary; process
            # shards share state through a path-addressed store instead
            # (SolverConfig.persistent_cache_path).
            raise ReproError(
                "cache_backend is only supported for thread/inline pools; "
                "process shards share through persistent_cache_path")
        self.config = config or SolverConfig()
        self.mode = mode
        self.defaults = defaults
        self.limits = limits
        self.max_pending = max_pending
        self.parser = TenantParser()
        # Registered view catalogs live front-side, never in a shard:
        # catalog.* ops are answered here, and rewrite-by-fingerprint
        # records are materialised back into plain rewrites *before*
        # routing — so process shards (another address space) need no
        # store of their own.
        self.catalogs = CatalogStore()
        self.rejected = 0
        self._random = random.Random(routing_seed)
        # In-process modes share one warm-tier backend — an injected
        # CacheBackend (several pools/fleet nodes may share it; its owner
        # closes it) or a pool-owned connection to the configured SQLite
        # store.  Process shards each open their own connection to the
        # store's path (SQLite WAL arbitrates).
        self.shared_persistent: Optional[CacheBackend] = cache_backend
        self._owns_persistent = False
        if (cache_backend is None and mode != "process"
                and self.config.persistent_cache_path is not None):
            self.shared_persistent = PersistentCache(
                self.config.persistent_cache_path)
            self._owns_persistent = True
        self.shards: List[_Shard] = [_Shard(index, self)
                                     for index in range(shard_count)]

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    # -- routing -------------------------------------------------------------

    def shard_for_record(self, record: Dict[str, Any]) -> int:
        """The shard a record's tenant is pinned to (parses schema/deps)."""
        schema_fp, deps_fp = routing_fingerprints(record, self.defaults,
                                                  self.parser)
        return shard_for(schema_fp, deps_fp, self.shard_count)

    def _route(self, record: Dict[str, Any],
               routing: Union[str, int]) -> int:
        if isinstance(routing, int):
            if not 0 <= routing < self.shard_count:
                raise ReproError(
                    f"shard {routing} out of range [0, {self.shard_count})")
            return routing
        if routing == "affinity":
            # Control ops carry no tenant; pin them to shard 0 so they
            # route deterministically without parsing anything.
            if record.get("op") in ("ping", "stats"):
                return 0
            return self.shard_for_record(record)
        if routing == "random":
            return self._random.randrange(self.shard_count)
        raise ReproError(
            f"unknown routing {routing!r}; expected 'affinity', 'random', "
            "or a shard index")

    # -- execution -----------------------------------------------------------

    def submit(self, record: Dict[str, Any],
               routing: Union[str, int] = "affinity") -> "Future[Dict[str, Any]]":
        """Route and enqueue one record; the future resolves to its envelope.

        Raises :class:`ServiceOverloaded` (and counts the rejection)
        when the target shard's inbox is full — backpressure is the
        caller's problem by design, because only the caller knows
        whether to shed, retry, or block.

        ``catalog.*`` records are answered front-side from the pool's
        :class:`CatalogStore` (an already-completed future), and a
        ``rewrite`` carrying a registered ``catalog_fp`` is resolved to
        its views text here, before routing ever parses the record.
        """
        record, completed = self._front_side(record)
        if completed is not None:
            return completed
        shard = self.shards[self._route(record, routing)]
        try:
            return shard.submit(record)
        except ServiceOverloaded:
            self.rejected += 1
            raise

    def _front_side(self, record: Dict[str, Any]):
        """Front-end catalog handling: (possibly-resolved record, done future).

        The future is non-``None`` exactly when the record was fully
        answered here (a ``catalog.*`` op, or a resolution failure that
        became an error envelope) and must not be routed.
        """
        op = record.get("op")
        if op in CATALOG_OPERATIONS:
            future: "Future[Dict[str, Any]]" = Future()
            future.set_result(handle_catalog_record(
                record, self.catalogs, self.defaults, self.parser))
            return record, future
        try:
            return resolve_catalog_record(record, self.catalogs), None
        except ProtocolError as error:
            future = Future()
            future.set_result(error_envelope(
                record.get("id"), error.kind, str(error)))
            return record, future

    def execute(self, record: Dict[str, Any],
                routing: Union[str, int] = "affinity") -> Dict[str, Any]:
        """Route, run, and wait for one record."""
        return self.submit(record, routing).result()

    def execute_all(self, records: Sequence[Dict[str, Any]],
                    routing: Union[str, int] = "affinity") -> List[Dict[str, Any]]:
        """Run many records, shard-parallel, preserving input order.

        Submission blocks (rather than rejecting) when a shard inbox is
        full: a bulk caller wants throughput, not shed load.
        """
        futures = []
        for record in records:
            record, completed = self._front_side(record)
            if completed is not None:
                futures.append(completed)
                continue
            shard = self.shards[self._route(record, routing)]
            if self.mode == "inline":
                futures.append(shard.submit(record))
                continue
            future: "Future[Dict[str, Any]]" = Future()
            shard._inbox.put((record, future))
            shard.submitted += 1
            futures.append(future)
        return [future.result() for future in futures]

    # -- introspection -------------------------------------------------------

    def pending(self) -> int:
        """Requests enqueued but not yet completed (approximate)."""
        if self.mode == "inline":
            return 0
        return sum(shard._inbox.qsize() for shard in self.shards)

    def counters(self) -> Dict[str, Any]:
        """The pool-level routing/backpressure counters, JSON-ready."""
        return {
            "mode": self.mode,
            "shard_count": self.shard_count,
            "max_pending": self.max_pending,
            "rejected": self.rejected,
            "pending": self.pending(),
            "catalogs": len(self.catalogs),
        }

    @staticmethod
    def shard_snapshot(shard: "_Shard",
                       envelope: Dict[str, Any]) -> Dict[str, Any]:
        """One shard's stats row, given its answered ``stats`` envelope.

        Shared by :meth:`stats` and the service front end's ``stats``
        op, so the two views of a shard cannot drift apart.
        """
        return {
            "shard": shard.index,
            "submitted": shard.submitted,
            "cache_stats": envelope["result"]["cache_stats"],
            "requests": envelope["result"]["requests"],
        }

    def stats(self) -> Dict[str, Any]:
        """Routing-level counters plus each shard's own cache statistics.

        Shard statistics travel as ``stats`` ops through the normal
        request path, so they are exact in every mode — including
        process shards, whose solvers live in another address space.
        """
        per_shard = [
            self.shard_snapshot(shard, shard.submit({"op": "stats"}).result())
            for shard in self.shards
        ]
        return {**self.counters(), "shards": per_shard}

    # -- shutdown ------------------------------------------------------------

    def close(self) -> None:
        for shard in self.shards:
            shard.close()
        if self.shared_persistent is not None and self._owns_persistent:
            self.shared_persistent.close()

    def __enter__(self) -> "ShardedSolverPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
