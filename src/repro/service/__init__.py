"""repro.service — the sharded, persistent solver service.

The long-lived serving layer over :class:`~repro.api.solver.Solver`:

* :class:`ShardedSolverPool` — N workers (threads or processes), each
  owning one solver; requests route by
  ``hash(schema_fingerprint, dependency_fingerprint) % N`` so a
  tenant's caches stay hot on its shard;
* :class:`SolverService` — an asyncio front end speaking
  newline-delimited JSON (the ``repro batch`` question format plus
  chase/rewrite/stats/ping ops) over TCP or a Unix socket, with
  bounded queues and admission control;
* :class:`ServiceClient` — a blocking client for scripts and tests;
* the protocol helpers (:func:`parse_line`, :func:`handle_record`,
  :func:`shard_for`) shared by all of the above.

Pair the pool with ``SolverConfig(persistent_cache_path=...)`` and
restarts — and sibling worker processes — start warm from the shared
SQLite store.  ``repro serve`` is the CLI wrapper.
"""

from repro.service.client import (
    IDEMPOTENT_OPS,
    ServiceClient,
    ServiceClientError,
    ServiceTransportError,
)
from repro.service.pool import POOL_MODES, ShardedSolverPool
from repro.service.protocol import (
    ADMIN_OPERATIONS,
    CATALOG_OPERATIONS,
    ERROR_KINDS,
    OPERATIONS,
    PROTOCOL_VERSION,
    USER_OPERATIONS,
    CatalogStore,
    ProtocolError,
    ServiceDefaults,
    ServiceLimits,
    ServiceOverloaded,
    TenantParser,
    error_envelope,
    handle_catalog_record,
    handle_record,
    make_worker_solver,
    parse_line,
    resolve_catalog_record,
    routing_fingerprints,
    shard_for,
    validate_record,
)
from repro.service.server import ServiceThread, SolverService

__all__ = [
    "ADMIN_OPERATIONS",
    "CATALOG_OPERATIONS",
    "CatalogStore",
    "ERROR_KINDS",
    "IDEMPOTENT_OPS",
    "OPERATIONS",
    "POOL_MODES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ServiceClient",
    "ServiceClientError",
    "ServiceDefaults",
    "ServiceLimits",
    "ServiceOverloaded",
    "ServiceThread",
    "ServiceTransportError",
    "ShardedSolverPool",
    "SolverService",
    "TenantParser",
    "USER_OPERATIONS",
    "error_envelope",
    "handle_catalog_record",
    "handle_record",
    "make_worker_solver",
    "parse_line",
    "resolve_catalog_record",
    "routing_fingerprints",
    "shard_for",
    "validate_record",
]
