"""Deterministic trigger discovery for general TGDs and EGDs.

The chase policy for FDs and INDs is "lexicographically first": minimum
level, then lowest conjunct ids, then first dependency in insertion
order.  This module extends that policy to embedded dependencies, whose
triggers are *homomorphisms* of a multi-atom body into the live chase
rather than single conjuncts:

* a body match is a tuple of live nodes, one per body atom in order,
  together with the variable binding it induces; matches are enumerated
  depth-first with candidate nodes in node-id order, so they surface in
  lexicographic order of their node-id tuples;
* an **EGD trigger** is a match whose two equated variables are bound to
  different symbols; the one applied is the minimum by (node-id tuple,
  EGD insertion index) — the same shape as the FD rule's
  (conjunct pair, FD order) policy;
* a **TGD trigger** is a match that is *active*: in the R-chase, no
  extension of its frontier binding satisfies the head among the live
  nodes; in the O-chase, the (TGD, node-id tuple) pair has not been
  applied yet.  Its level is the maximum level of its image, and the one
  applied is the minimum by (level, node-id tuple, TGD insertion index)
  — the multi-node generalisation of the IND heap key.

Both chase engines call these functions, so trigger selection (and the
``triggers_examined`` accounting) cannot drift between them; the engines
still differ in how they maintain their indexes and apply the chosen
trigger, which is what the differential harness certifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.chase.chase_graph import ChaseNode
from repro.dependencies.embedded import EGD, TGD
from repro.queries.conjunct import Conjunct
from repro.terms.term import Constant, Term, Variable

#: Live nodes of one relation, in node-id order.  Duck-typed: the
#: matcher only reads ``.conjunct``, so any node-alike works — the
#: engines pass chase nodes, and the instance-level violation checks
#: (:mod:`repro.dependencies.violations`) pass Constant-wrapped rows.
NodesForRelation = Callable[[str], Sequence[ChaseNode]]

Binding = Dict[Variable, Term]


def _unify_atom(atom: Conjunct, node: ChaseNode,
                binding: Binding) -> Optional[Binding]:
    """Extend ``binding`` so the body atom maps onto the node, or None.

    Constants must match themselves; variables bind on first sight and
    must agree on later occurrences (the usual homomorphism conditions).
    """
    extended: Optional[Binding] = None
    for body_term, node_term in zip(atom.terms, node.conjunct.terms):
        if isinstance(body_term, Constant):
            if body_term != node_term:
                return None
            continue
        bound = (extended or binding).get(body_term)
        if bound is None:
            if extended is None:
                extended = dict(binding)
            extended[body_term] = node_term
        elif bound != node_term:
            return None
    return extended if extended is not None else binding


def iter_body_matches(atoms: Sequence[Conjunct],
                      nodes_for_relation: NodesForRelation,
                      binding: Optional[Binding] = None
                      ) -> Iterator[Tuple[Tuple[ChaseNode, ...], Binding]]:
    """All homomorphisms of the atoms into the live nodes, lexicographically.

    Yields ``(nodes, binding)`` pairs; ``nodes`` has one entry per atom in
    order, and successive yields are ascending in the node-id tuple, so
    the first yield of a filtered scan is the policy's canonical choice.
    A pre-seeded ``binding`` pins variables (used for R-chase head
    satisfaction checks).
    """
    atoms = list(atoms)
    # The node set is not mutated during one enumeration, so fetch each
    # atom's candidate list once instead of once per partial binding.
    candidates = [nodes_for_relation(atom.relation) for atom in atoms]

    def descend(index: int, chosen: List[ChaseNode],
                current: Binding) -> Iterator[Tuple[Tuple[ChaseNode, ...], Binding]]:
        if index == len(atoms):
            yield tuple(chosen), current
            return
        for node in candidates[index]:
            extended = _unify_atom(atoms[index], node, current)
            if extended is not None:
                chosen.append(node)
                yield from descend(index + 1, chosen, extended)
                chosen.pop()

    yield from descend(0, [], dict(binding or {}))


# ---------------------------------------------------------------------------
# EGD triggers
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EGDTrigger:
    """The chosen EGD application: its rule, image, and the two symbols."""

    index: int
    egd: EGD
    nodes: Tuple[ChaseNode, ...]
    first: Term
    second: Term

    @property
    def node_ids(self) -> Tuple[int, ...]:
        return tuple(node.node_id for node in self.nodes)


def find_egd_trigger(egds: Sequence[EGD],
                     nodes_for_relation: NodesForRelation,
                     statistics=None) -> Optional[EGDTrigger]:
    """The policy-first violated EGD trigger, or None at the fixpoint.

    Minimum by (node-id tuple, EGD insertion index); because matches
    enumerate in node-id order, the first violating match of each EGD is
    already that EGD's minimum.
    """
    best: Optional[EGDTrigger] = None
    for index, egd in enumerate(egds):
        for nodes, binding in iter_body_matches(egd.body, nodes_for_relation):
            if statistics is not None:
                statistics.triggers_examined += 1
            first = binding[egd.lhs]
            second = binding[egd.rhs]
            if first == second:
                continue
            candidate = EGDTrigger(index, egd, nodes, first, second)
            if best is None or (candidate.node_ids, index) < (best.node_ids, best.index):
                best = candidate
            break
    return best


# ---------------------------------------------------------------------------
# TGD triggers
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TGDTrigger:
    """An active TGD application: its rule, image, and frontier binding."""

    index: int
    tgd: TGD
    nodes: Tuple[ChaseNode, ...]
    binding: Tuple[Tuple[Variable, Term], ...]

    @property
    def node_ids(self) -> Tuple[int, ...]:
        return tuple(node.node_id for node in self.nodes)

    @property
    def level(self) -> int:
        """The trigger's level: the deepest node of its image."""
        return max(node.level for node in self.nodes)

    @property
    def applied_key(self) -> Tuple[int, Tuple[int, ...]]:
        """The O-chase once-per-trigger key (stable under term rewrites)."""
        return (self.index, self.node_ids)

    def priority(self) -> Tuple[int, Tuple[int, ...], int]:
        """The selection key: (level, node-id tuple, TGD order)."""
        return (self.level, self.node_ids, self.index)

    def binding_dict(self) -> Binding:
        return dict(self.binding)


def head_satisfied(tgd: TGD, binding: Binding,
                   nodes_for_relation: NodesForRelation) -> bool:
    """R-chase requirement check: does the head already match somewhere?

    The frontier variables are pinned to the body match's values; the
    existential variables range freely over the live nodes — the
    multi-atom generalisation of the IND "c'[Y] = c[X]" lookup.
    """
    frontier = {variable: binding[variable] for variable in tgd.frontier()}
    for _ in iter_body_matches(tgd.head, nodes_for_relation, frontier):
        return True
    return False


def find_tgd_trigger(tgds: Sequence[TGD],
                     nodes_for_relation: NodesForRelation,
                     oblivious: bool,
                     applied: Set[Tuple[int, Tuple[int, ...]]],
                     statistics=None) -> Optional[TGDTrigger]:
    """The minimum-priority *active* TGD trigger, or None if none is.

    Unlike the per-EGD shortcut, every match must be inspected: node ids
    do not order levels (FD merges can lower a survivor's level), so the
    minimum (level, ids, index) need not be the first match enumerated.
    """
    best: Optional[TGDTrigger] = None
    for index, tgd in enumerate(tgds):
        for nodes, binding in iter_body_matches(tgd.body, nodes_for_relation):
            if statistics is not None:
                statistics.triggers_examined += 1
            node_ids = tuple(node.node_id for node in nodes)
            if oblivious:
                if (index, node_ids) in applied:
                    continue
            elif head_satisfied(tgd, binding, nodes_for_relation):
                if statistics is not None:
                    statistics.index_hits += 1
                continue
            candidate = TGDTrigger(index, tgd, nodes, tuple(binding.items()))
            if best is None or candidate.priority() < best.priority():
                best = candidate
    return best
