"""Deterministic trigger discovery for general TGDs and EGDs.

The chase policy for FDs and INDs is "lexicographically first": minimum
level, then lowest conjunct ids, then first dependency in insertion
order.  This module extends that policy to embedded dependencies, whose
triggers are *homomorphisms* of a multi-atom body into the live chase
rather than single conjuncts:

* a body match is a tuple of live nodes, one per body atom in order,
  together with the variable binding it induces; matches are enumerated
  depth-first with candidate nodes in node-id order, so they surface in
  lexicographic order of their node-id tuples;
* an **EGD trigger** is a match whose two equated variables are bound to
  different symbols; the one applied is the minimum by (node-id tuple,
  EGD insertion index) — the same shape as the FD rule's
  (conjunct pair, FD order) policy;
* a **TGD trigger** is a match that is *active*: in the R-chase, no
  extension of its frontier binding satisfies the head among the live
  nodes; in the O-chase, the (TGD, node-id tuple) pair has not been
  applied yet.  Its level is the maximum level of its image, and the one
  applied is the minimum by (level, node-id tuple, TGD insertion index)
  — the multi-node generalisation of the IND heap key.

Both chase engines call these functions, so trigger selection (and the
``triggers_examined`` accounting) cannot drift between them; the engines
still differ in how they maintain their indexes and apply the chosen
trigger, which is what the differential harness certifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.chase.chase_graph import ChaseNode
from repro.dependencies.embedded import EGD, TGD
from repro.exceptions import DependencyError
from repro.queries.conjunct import Conjunct
from repro.terms.term import Constant, Term, Variable

#: Live nodes of one relation, in node-id order.  Duck-typed: the
#: matcher only reads ``.conjunct``, so any node-alike works — the
#: engines pass chase nodes, and the instance-level violation checks
#: (:mod:`repro.dependencies.violations`) pass Constant-wrapped rows.
NodesForRelation = Callable[[str], Sequence[ChaseNode]]

Binding = Dict[Variable, Term]


class TriggerStorage:
    """How the trigger machinery reads node terms and encodes rule constants.

    The matcher is generic over the *value domain* the chase stores its
    terms in: bindings map rule :class:`Variable` objects to storage
    values, and a rule constant only ever meets a node term after being
    pushed through :meth:`encode`.  The default (this class) is object
    storage — node terms are the :class:`~repro.terms.term.Term` objects
    on ``node.conjunct`` and constants encode to themselves — which is
    what the indexed and legacy engines use.  The columnar engine
    supplies a storage whose values are interned integer term ids, so
    the same semi-naive trigger index runs over flat int tuples without
    materialising any :class:`Term`.
    """

    __slots__ = ()

    @staticmethod
    def terms_of(node) -> Sequence:
        """The node's current terms, in the storage's value domain."""
        return node.conjunct.terms

    @staticmethod
    def encode(term: Term):
        """A rule constant's value in the storage's value domain."""
        return term


#: The default storage: Term objects straight off ``node.conjunct``.
OBJECT_STORAGE = TriggerStorage()


def _encode_atom_terms(atom: Conjunct, storage: TriggerStorage) -> Tuple:
    """The atom's terms with constants pushed into the storage domain.

    Variables stay as-is (they are binding keys, not values), so the
    unifier can discriminate with one ``isinstance`` check.
    """
    return tuple(term if isinstance(term, Variable) else storage.encode(term)
                 for term in atom.terms)


def _unify_encoded(atom: Conjunct, atom_sterms: Sequence,
                   node_terms: Sequence,
                   binding: Binding) -> Optional[Binding]:
    """Extend ``binding`` so the body atom maps onto the node's terms.

    ``atom_sterms`` are the atom's terms with constants already encoded
    into the storage domain of ``node_terms``; variables bind on first
    sight and must agree on later occurrences (the usual homomorphism
    conditions).

    An arity mismatch between the rule atom and the fact is a malformed
    dependency, never a near-miss: ``zip`` would silently match a prefix
    and bind only the leading variables, so it is rejected loudly here
    (the last line of defence behind schema validation at admission).
    """
    if len(atom_sterms) != len(node_terms):
        raise DependencyError(
            f"dependency atom {atom} has arity {len(atom_sterms)}, but is "
            f"matched against a {atom.relation} fact of arity "
            f"{len(node_terms)}; the rule does not fit the schema")
    extended: Optional[Binding] = None
    for body_term, node_term in zip(atom_sterms, node_terms):
        if not isinstance(body_term, Variable):
            if body_term != node_term:
                return None
            continue
        bound = (extended or binding).get(body_term)
        if bound is None:
            if extended is None:
                extended = dict(binding)
            extended[body_term] = node_term
        elif bound != node_term:
            return None
    return extended if extended is not None else binding


def _unify_atom(atom: Conjunct, node: ChaseNode,
                binding: Binding) -> Optional[Binding]:
    """Object-storage unification against a node (the historical entry)."""
    return _unify_encoded(atom, atom.terms, node.conjunct.terms, binding)


def _iter_encoded_matches(atoms: Sequence[Conjunct],
                          sterms: Sequence[Tuple],
                          nodes_for_relation: NodesForRelation,
                          terms_of: Callable,
                          binding: Optional[Binding] = None
                          ) -> Iterator[Tuple[Tuple[ChaseNode, ...], Binding]]:
    """Storage-generic body-match enumeration (see :func:`iter_body_matches`)."""
    # The node set is not mutated during one enumeration, so fetch each
    # atom's candidate list once instead of once per partial binding.
    candidates = [nodes_for_relation(atom.relation) for atom in atoms]

    def descend(index: int, chosen: List[ChaseNode],
                current: Binding) -> Iterator[Tuple[Tuple[ChaseNode, ...], Binding]]:
        if index == len(atoms):
            yield tuple(chosen), current
            return
        for node in candidates[index]:
            extended = _unify_encoded(atoms[index], sterms[index],
                                      terms_of(node), current)
            if extended is not None:
                chosen.append(node)
                yield from descend(index + 1, chosen, extended)
                chosen.pop()

    yield from descend(0, [], dict(binding or {}))


def iter_body_matches(atoms: Sequence[Conjunct],
                      nodes_for_relation: NodesForRelation,
                      binding: Optional[Binding] = None
                      ) -> Iterator[Tuple[Tuple[ChaseNode, ...], Binding]]:
    """All homomorphisms of the atoms into the live nodes, lexicographically.

    Yields ``(nodes, binding)`` pairs; ``nodes`` has one entry per atom in
    order, and successive yields are ascending in the node-id tuple, so
    the first yield of a filtered scan is the policy's canonical choice.
    A pre-seeded ``binding`` pins variables (used for R-chase head
    satisfaction checks).
    """
    atoms = list(atoms)
    yield from _iter_encoded_matches(
        atoms, [atom.terms for atom in atoms], nodes_for_relation,
        OBJECT_STORAGE.terms_of, binding)


# ---------------------------------------------------------------------------
# EGD triggers
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EGDTrigger:
    """The chosen EGD application: its rule, image, and the two symbols."""

    index: int
    egd: EGD
    nodes: Tuple[ChaseNode, ...]
    first: Term
    second: Term

    @property
    def node_ids(self) -> Tuple[int, ...]:
        return tuple(node.node_id for node in self.nodes)


def find_egd_trigger(egds: Sequence[EGD],
                     nodes_for_relation: NodesForRelation,
                     statistics=None) -> Optional[EGDTrigger]:
    """The policy-first violated EGD trigger, or None at the fixpoint.

    Minimum by (node-id tuple, EGD insertion index); because matches
    enumerate in node-id order, the first violating match of each EGD is
    already that EGD's minimum.
    """
    best: Optional[EGDTrigger] = None
    for index, egd in enumerate(egds):
        for nodes, binding in iter_body_matches(egd.body, nodes_for_relation):
            if statistics is not None:
                statistics.triggers_examined += 1
            first = binding[egd.lhs]
            second = binding[egd.rhs]
            if first == second:
                continue
            candidate = EGDTrigger(index, egd, nodes, first, second)
            if best is None or (candidate.node_ids, index) < (best.node_ids, best.index):
                best = candidate
            break
    return best


# ---------------------------------------------------------------------------
# TGD triggers
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TGDTrigger:
    """An active TGD application: its rule, image, and frontier binding."""

    index: int
    tgd: TGD
    nodes: Tuple[ChaseNode, ...]
    binding: Tuple[Tuple[Variable, Term], ...]

    @property
    def node_ids(self) -> Tuple[int, ...]:
        cached = self.__dict__.get("_node_ids")
        if cached is None:
            cached = tuple(node.node_id for node in self.nodes)
            object.__setattr__(self, "_node_ids", cached)
        return cached

    @property
    def level(self) -> int:
        """The trigger's level: the deepest node of its image.

        Memoised: any later level change comes from a merge-driven
        rewrite, which also invalidates every cached trigger over the
        touched relation, so a live trigger object never sees one.
        """
        cached = self.__dict__.get("_level")
        if cached is None:
            cached = max(node.level for node in self.nodes)
            object.__setattr__(self, "_level", cached)
        return cached

    @property
    def applied_key(self) -> Tuple[int, Tuple[int, ...]]:
        """The O-chase once-per-trigger key (stable under term rewrites)."""
        return (self.index, self.node_ids)

    def priority(self) -> Tuple[int, Tuple[int, ...], int]:
        """The selection key: (level, node-id tuple, TGD order)."""
        cached = self.__dict__.get("_priority")
        if cached is None:
            cached = (self.level, self.node_ids, self.index)
            object.__setattr__(self, "_priority", cached)
        return cached

    def binding_dict(self) -> Binding:
        cached = self.__dict__.get("_binding_dict")
        if cached is None:
            cached = dict(self.binding)
            object.__setattr__(self, "_binding_dict", cached)
        return cached


def head_satisfied(tgd: TGD, binding: Binding,
                   nodes_for_relation: NodesForRelation) -> bool:
    """R-chase requirement check: does the head already match somewhere?

    The frontier variables are pinned to the body match's values; the
    existential variables range freely over the live nodes — the
    multi-atom generalisation of the IND "c'[Y] = c[X]" lookup.
    """
    frontier = {variable: binding[variable] for variable in tgd.frontier()}
    for _ in iter_body_matches(tgd.head, nodes_for_relation, frontier):
        return True
    return False


def find_tgd_trigger(tgds: Sequence[TGD],
                     nodes_for_relation: NodesForRelation,
                     oblivious: bool,
                     applied: Set[Tuple[int, Tuple[int, ...]]],
                     statistics=None) -> Optional[TGDTrigger]:
    """The minimum-priority *active* TGD trigger, or None if none is.

    Unlike the per-EGD shortcut, every match must be inspected: node ids
    do not order levels (FD merges can lower a survivor's level), so the
    minimum (level, ids, index) need not be the first match enumerated.
    """
    best: Optional[TGDTrigger] = None
    for index, tgd in enumerate(tgds):
        for nodes, binding in iter_body_matches(tgd.body, nodes_for_relation):
            if statistics is not None:
                statistics.triggers_examined += 1
            node_ids = tuple(node.node_id for node in nodes)
            if oblivious:
                if (index, node_ids) in applied:
                    continue
            elif head_satisfied(tgd, binding, nodes_for_relation):
                if statistics is not None:
                    statistics.index_hits += 1
                continue
            candidate = TGDTrigger(index, tgd, nodes, tuple(binding.items()))
            if best is None or candidate.priority() < best.priority():
                best = candidate
    return best


# ---------------------------------------------------------------------------
# Semi-naive trigger discovery (the indexed engine's delta discipline)
# ---------------------------------------------------------------------------


class SemiNaiveTriggerIndex:
    """Delta-driven TGD/EGD trigger discovery for the indexed engine.

    :func:`find_egd_trigger` / :func:`find_tgd_trigger` re-enumerate every
    body match from scratch each round.  This index extends the FD
    fixpoint's semi-naive discipline to embedded dependencies instead:

    * the engine reports every node *touched* (added or rewritten) via
      :meth:`touch`; each rule keeps a cursor into that append-only delta
      log and, when consulted, seeds body-match joins from a delta node
      pinned at one body position, completing the remaining atoms from
      the per-relation live-node index.  A match can only appear when one
      of its member nodes was touched (matching depends on member terms
      alone), so seeding from the delta finds every new match;
    * discovered matches live in per-rule **pools** keyed by their
      node-id tuple.  A match is permanent while its members are alive —
      merges only *equate* symbols, they never un-match a tuple — so the
      pools are maintained, never rebuilt;
    * facts that cannot change back are cached for good: an EGD match
      seen non-violating stays non-violating (equality survives every
      later merge), and an R-chase head seen satisfied stays satisfied
      (atoms are never destroyed, only merged into identical survivors).
      Unsatisfied heads are re-checked only when the head relations or
      the frontier values actually changed (a per-relation version gate).

    Selection re-reads levels and bindings from the live nodes, so the
    chosen trigger is identical — match for match — to the full rescan's
    choice; the differential harness certifies this against
    ``legacy_engine.py``, which keeps calling the full-scan functions.
    """

    def __init__(self, tgds: Sequence[TGD], egds: Sequence[EGD],
                 nodes_for_relation: NodesForRelation,
                 node_by_id: Callable[[int], ChaseNode],
                 statistics=None, oblivious: bool = False,
                 storage: Optional[TriggerStorage] = None):
        self._tgds = list(tgds)
        self._egds = list(egds)
        self._nodes_for_relation = nodes_for_relation
        self._node_by_id = node_by_id
        self._statistics = statistics
        self._oblivious = oblivious
        self._storage = storage if storage is not None else OBJECT_STORAGE
        self._terms_of = self._storage.terms_of
        # Rule atoms with constants pushed into the storage domain, one
        # tuple-of-tuples per rule in atom order.  For object storage
        # this is just the atoms' own term tuples.
        self._tgd_body_sterms = [
            tuple(_encode_atom_terms(atom, self._storage) for atom in tgd.body)
            for tgd in self._tgds]
        self._tgd_head_sterms = [
            tuple(_encode_atom_terms(atom, self._storage) for atom in tgd.head)
            for tgd in self._tgds]
        self._egd_body_sterms = [
            tuple(_encode_atom_terms(atom, self._storage) for atom in egd.body)
            for egd in self._egds]
        self._delta: List[int] = []
        self._tgd_cursors = [0] * len(self._tgds)
        self._egd_cursors = [0] * len(self._egds)
        self._tgd_pools: List[Set[Tuple[int, ...]]] = [set() for _ in self._tgds]
        self._egd_pools: List[Set[Tuple[int, ...]]] = [set() for _ in self._egds]
        #: Per-EGD matches proven non-violating — never re-derived.
        self._egd_settled: List[Set[Tuple[int, ...]]] = [set() for _ in self._egds]
        #: Per-TGD matches whose R-chase head is satisfied — never re-derived.
        self._tgd_satisfied: List[Set[Tuple[int, ...]]] = [set() for _ in self._tgds]
        #: Last unsatisfied head check per match.  Single-atom heads cache
        #: (delta cursor scanned, head-relation version, frontier values) —
        #: later rounds skip entirely while the head relation's version
        #: stands, and otherwise examine only the delta suffix.  Multi-atom
        #: heads cache (head-relation versions, frontier values) and redo
        #: the full join only when that gate moves.
        self._head_checked: List[Dict[Tuple[int, ...], tuple]] = [
            {} for _ in self._tgds]
        self._versions: Dict[str, int] = {}
        #: Per-node rewrite stamps; a pool entry's cached binding is valid
        #: exactly while every member keeps its stamp (rewrites bump it).
        self._node_stamps: Dict[int, int] = {}
        #: Per-rule resolved-entry caches: ids -> [member stamps, member
        #: nodes, binding, cached trigger object, cached frontier values
        #: (the trigger and frontier slots are TGD-only)].
        self._tgd_bindings: List[Dict[Tuple[int, ...], list]] = [
            {} for _ in self._tgds]
        self._egd_bindings: List[Dict[Tuple[int, ...], list]] = [
            {} for _ in self._egds]
        plans = [self._rule_plan(tgd) for tgd in self._tgds]
        self._tgd_seeds = [plan[0] for plan in plans]
        self._head_relations = [plan[1] for plan in plans]
        self._single_heads = [plan[2] for plan in plans]
        self._frontiers = [plan[3] for plan in plans]
        self._tgd_trivial = [plan[5] for plan in plans]
        # Head-check plans carry the head's constants; encode them into
        # the storage domain once so the per-candidate positional test
        # compares storage values directly.
        self._head_plans = [
            plan[6] if plan[6] is None else (
                plan[6][0],
                tuple((position, self._storage.encode(constant))
                      for position, constant in plan[6][1]),
                plan[6][2])
            for plan in plans]
        egd_plans = [self._egd_plan(egd) for egd in self._egds]
        self._egd_seeds = [plan[0] for plan in egd_plans]
        self._egd_trivial = [plan[1] for plan in egd_plans]
        #: Per-TGD cached active-trigger lists, invalidated eagerly by
        #: :meth:`touch` and :meth:`note_tgd_applied`.  A touch in a rule's
        #: *body* relation can add matches or rewrite member bindings, so
        #: the whole list is recomputed; a touch in a (non-body) *head*
        #: relation can only satisfy R-chase requirements, so the cached
        #: triggers are kept and merely re-checked (``_tgd_recheck``).  In
        #: the O-chase head touches are irrelevant and watch nothing.
        self._tgd_actives: List[Optional[List["TGDTrigger"]]] = [
            None for _ in self._tgds]
        self._tgd_recheck = [False] * len(self._tgds)
        body_watchers: Dict[str, List[int]] = {}
        head_watchers: Dict[str, List[int]] = {}
        for index, plan in enumerate(plans):
            body_relations = plan[4]
            for relation in body_relations:
                body_watchers.setdefault(relation, []).append(index)
            if not oblivious:
                for relation in plan[1]:
                    if relation not in body_relations:
                        head_watchers.setdefault(relation, []).append(index)
        self._body_watchers = {relation: tuple(indexes)
                               for relation, indexes in body_watchers.items()}
        self._head_watchers = {relation: tuple(indexes)
                               for relation, indexes in head_watchers.items()}

    @staticmethod
    def _seed_positions(atoms: Sequence[Conjunct]) -> Dict[str, List[int]]:
        positions: Dict[str, List[int]] = {}
        for index, atom in enumerate(atoms):
            positions.setdefault(atom.relation, []).append(index)
        return positions

    @staticmethod
    def _rule_plan(tgd: TGD) -> tuple:
        """Static per-TGD matching metadata, memoised on the frozen rule.

        (seed positions, sorted head relations, single head atom or None,
        name-sorted frontier, body relation set, trivial-body flag) — all
        derived purely from the rule, so repeated engine constructions
        over the same Σ reuse one computation.
        """
        plan = tgd.__dict__.get("_chase_plan")
        if plan is None:
            single_head = tgd.head[0] if len(tgd.head) == 1 else None
            frontier = tuple(sorted(tgd.frontier(), key=lambda v: v.name))
            plan = (
                SemiNaiveTriggerIndex._seed_positions(tgd.body),
                tuple(sorted({atom.relation for atom in tgd.head})),
                single_head,
                frontier,
                frozenset(atom.relation for atom in tgd.body),
                SemiNaiveTriggerIndex._trivial_body(tgd.body),
                SemiNaiveTriggerIndex._head_check_plan(single_head, frontier),
            )
            object.__setattr__(tgd, "_chase_plan", plan)
        return plan

    @staticmethod
    def _head_check_plan(single_head: Optional[Conjunct],
                         frontier: Tuple[Variable, ...]) -> Optional[tuple]:
        """Positional satisfaction test for a single-atom head, or None.

        A candidate fact satisfies the head under given frontier values
        iff its terms agree with the frontier values at the frontier
        positions, with the head's constants at constant positions, and
        with themselves across repeated existential positions.  Checking
        positions directly avoids building a pinned binding and running
        the general unifier once per candidate.
        """
        if single_head is None:
            return None
        frontier_index = {variable: i for i, variable in enumerate(frontier)}
        frontier_eqs: List[Tuple[int, int]] = []
        const_eqs: List[Tuple[int, Constant]] = []
        existential_positions: Dict[Variable, List[int]] = {}
        for position, term in enumerate(single_head.terms):
            if isinstance(term, Constant):
                const_eqs.append((position, term))
            elif term in frontier_index:
                frontier_eqs.append((position, frontier_index[term]))
            else:
                existential_positions.setdefault(term, []).append(position)
        exist_groups = tuple(tuple(positions) for positions
                             in existential_positions.values()
                             if len(positions) > 1)
        return (tuple(frontier_eqs), tuple(const_eqs), exist_groups)

    @staticmethod
    def _trivial_body(atoms: Sequence[Conjunct]) -> bool:
        """True when any node of the body relation is a match.

        A single body atom over pairwise-distinct variables (no constants,
        no repeats) unifies with *every* fact of its relation, so the
        delta scan can skip unification entirely and match on relation
        alone.  Every IND-expressible rule qualifies.
        """
        if len(atoms) != 1:
            return False
        terms = atoms[0].terms
        return (len(set(terms)) == len(terms)
                and not any(isinstance(term, Constant) for term in terms))

    @staticmethod
    def _egd_plan(egd: EGD) -> tuple:
        """(seed positions, trivial-body flag), memoised on the frozen rule."""
        plan = egd.__dict__.get("_chase_seeds")
        if plan is None:
            plan = (SemiNaiveTriggerIndex._seed_positions(egd.body),
                    SemiNaiveTriggerIndex._trivial_body(egd.body))
            object.__setattr__(egd, "_chase_seeds", plan)
        return plan

    # -- delta intake ---------------------------------------------------------

    def touch(self, node: ChaseNode) -> None:
        """Record a node as added or rewritten since the rules' last rounds."""
        node_id = node.node_id
        relation = node.relation
        self._delta.append(node_id)
        versions = self._versions
        versions[relation] = versions.get(relation, 0) + 1
        stamps = self._node_stamps
        stamps[node_id] = stamps.get(node_id, 0) + 1
        actives = self._tgd_actives
        for index in self._body_watchers.get(relation, ()):
            actives[index] = None
        recheck = self._tgd_recheck
        for index in self._head_watchers.get(relation, ()):
            recheck[index] = True

    # -- delta-seeded match discovery ----------------------------------------

    def _seeded_match_ids(self, atoms: Sequence[Conjunct],
                          sterms: Sequence[Tuple], pin: int,
                          pinned: ChaseNode,
                          candidates: Dict[str, Sequence[ChaseNode]]
                          ) -> Iterator[Tuple[int, ...]]:
        """All body matches with the delta node at one pinned position."""
        terms_of = self._terms_of
        seed = _unify_encoded(atoms[pin], sterms[pin], terms_of(pinned), {})
        if seed is None:
            return
        chosen: List[int] = [0] * len(atoms)
        chosen[pin] = pinned.node_id

        def descend(index: int, binding: Binding) -> Iterator[Tuple[int, ...]]:
            if index == len(atoms):
                yield tuple(chosen)
                return
            if index == pin:
                yield from descend(index + 1, binding)
                return
            relation = atoms[index].relation
            pool = candidates.get(relation)
            if pool is None:
                pool = candidates[relation] = self._nodes_for_relation(relation)
            for node in pool:
                extended = _unify_encoded(atoms[index], sterms[index],
                                          terms_of(node), binding)
                if extended is not None:
                    chosen[index] = node.node_id
                    yield from descend(index + 1, extended)

        yield from descend(0, seed)

    def _refresh_rule(self, atoms: Sequence[Conjunct],
                      sterms: Sequence[Tuple],
                      seeds: Dict[str, List[int]],
                      pool: Set[Tuple[int, ...]],
                      cursor: int,
                      retired: Set[Tuple[int, ...]],
                      trivial: bool = False) -> int:
        """Advance one rule's cursor over the delta log, growing its pool."""
        delta = self._delta
        end = len(delta)
        if cursor == end:
            return cursor
        statistics = self._statistics
        node_by_id = self._node_by_id
        if len(atoms) == 1:
            # Single-atom body (every IND-expressible rule): the match IS
            # the delta node, no join to complete — and a trivial body
            # (distinct variables) matches on relation alone.
            atom = atoms[0]
            relation = atom.relation
            for position in range(cursor, end):
                node = node_by_id(delta[position])
                if node.relation != relation or not node.alive:
                    continue
                if not trivial and _unify_encoded(
                        atom, sterms[0], self._terms_of(node), {}) is None:
                    continue
                ids = (node.node_id,)
                if ids in pool:
                    continue
                if ids in retired:
                    if statistics is not None:
                        statistics.trigger_cache_hits += 1
                    continue
                pool.add(ids)
                if statistics is not None:
                    statistics.delta_seeded_matches += 1
                    statistics.triggers_examined += 1
            return end
        candidates: Dict[str, Sequence[ChaseNode]] = {}
        for position in range(cursor, end):
            node = node_by_id(delta[position])
            if not node.alive:
                continue
            pins = seeds.get(node.relation)
            if not pins:
                continue
            for pin in pins:
                for ids in self._seeded_match_ids(atoms, sterms, pin, node,
                                                  candidates):
                    if ids in pool:
                        continue
                    if ids in retired:
                        if statistics is not None:
                            statistics.trigger_cache_hits += 1
                        continue
                    pool.add(ids)
                    if statistics is not None:
                        statistics.delta_seeded_matches += 1
                        statistics.triggers_examined += 1
        return end

    def _resolve(self, atoms: Sequence[Conjunct], sterms: Sequence[Tuple],
                 ids: Tuple[int, ...],
                 cache: Dict[Tuple[int, ...], list]) -> Optional[list]:
        """A pool entry's cache record (stamps, nodes, binding, trigger
        slot, frontier-values slot), or None if a member died.

        Liveness is always re-checked (a member may die without its own
        stamp moving), but the binding is only re-unified when a member
        was rewritten since the cached entry — node objects are stable,
        so an unchanged stamp tuple means an unchanged binding.
        """
        node_stamps = self._node_stamps
        if len(ids) == 1:
            # Single-member match (every IND-expressible rule): scalar
            # stamp, no join to re-walk.
            node_id = ids[0]
            node = self._node_by_id(node_id)
            if not node.alive:
                cache.pop(ids, None)
                return None
            stamp_key = node_stamps.get(node_id, 0)
            cached = cache.get(ids)
            if cached is not None and cached[0] == stamp_key:
                return cached
            binding = _unify_encoded(atoms[0], sterms[0],
                                     self._terms_of(node), {})
            if binding is None:
                cache.pop(ids, None)
                return None
            entry = [stamp_key, (node,), binding, None, None]
            cache[ids] = entry
            return entry
        stamps: List[int] = []
        nodes: List[ChaseNode] = []
        for node_id in ids:
            node = self._node_by_id(node_id)
            if not node.alive:
                cache.pop(ids, None)
                return None
            nodes.append(node)
            stamps.append(node_stamps.get(node_id, 0))
        stamp_key = tuple(stamps)
        cached = cache.get(ids)
        if cached is not None and cached[0] == stamp_key:
            return cached
        terms_of = self._terms_of
        binding: Binding = {}
        for atom, atom_sterms, node in zip(atoms, sterms, nodes):
            extended = _unify_encoded(atom, atom_sterms, terms_of(node), binding)
            if extended is None:
                # Unreachable while members live (merges preserve matches);
                # kept so a pool entry can only ever be dropped, not crash.
                cache.pop(ids, None)
                return None
            binding = extended
        entry = [stamp_key, tuple(nodes), binding, None, None]
        cache[ids] = entry
        return entry

    # -- selection ------------------------------------------------------------

    def next_egd_trigger(self) -> Optional[EGDTrigger]:
        """The policy-first violated EGD trigger over the maintained pools."""
        best: Optional[EGDTrigger] = None
        for index, egd in enumerate(self._egds):
            pool = self._egd_pools[index]
            bindings = self._egd_bindings[index]
            sterms = self._egd_body_sterms[index]
            self._egd_cursors[index] = self._refresh_rule(
                egd.body, sterms, self._egd_seeds[index], pool,
                self._egd_cursors[index], self._egd_settled[index],
                self._egd_trivial[index])
            drop: List[Tuple[int, ...]] = []
            found: Optional[EGDTrigger] = None
            for ids in sorted(pool):
                resolved = self._resolve(egd.body, sterms, ids, bindings)
                if resolved is None:
                    drop.append(ids)
                    continue
                nodes, binding = resolved[1], resolved[2]
                first = binding[egd.lhs]
                second = binding[egd.rhs]
                if first == second:
                    # Equality survives every later merge: settled for good.
                    self._egd_settled[index].add(ids)
                    drop.append(ids)
                    continue
                found = EGDTrigger(index, egd, nodes, first, second)
                break
            for ids in drop:
                pool.discard(ids)
                bindings.pop(ids, None)
            if found is not None and (
                    best is None
                    or (found.node_ids, index) < (best.node_ids, best.index)):
                best = found
        return best

    def _retire_satisfied(self, index: int, ids: Tuple[int, ...]) -> None:
        """Permanently cache a match whose R-chase head is now satisfied."""
        self._tgd_satisfied[index].add(ids)
        self._tgd_pools[index].discard(ids)
        self._head_checked[index].pop(ids, None)
        self._tgd_bindings[index].pop(ids, None)
        if self._statistics is not None:
            self._statistics.index_hits += 1

    def _head_unsatisfied(self, index: int, ids: Tuple[int, ...],
                          frontier_values: tuple) -> bool:
        """R-chase: is the head of match ``ids`` still unsatisfied?

        Single-atom heads are re-checked *incrementally*: atoms present at
        the last scan cannot start matching while the frontier values
        stand still, so only the delta suffix (new and rewritten nodes)
        is examined.  Multi-atom heads redo the pinned join, gated on the
        head relations' versions.  A satisfied match is retired for good.
        """
        statistics = self._statistics
        checked = self._head_checked[index]
        frontier = self._frontiers[index]
        single_head = self._single_heads[index]
        prior = checked.get(ids)
        if single_head is not None:
            relation = single_head.relation
            version = self._versions.get(relation, 0)
            if prior is not None and prior[2] == frontier_values:
                if prior[1] == version:
                    # No head-relation atom was added or rewritten since
                    # the last scan: nothing new can satisfy the head.
                    if statistics is not None:
                        statistics.trigger_cache_hits += 1
                    return True
                start = prior[0]
            else:
                start = 0
            delta = self._delta
            end = len(delta)
            node_by_id = self._node_by_id
            frontier_eqs, const_eqs, exist_groups = self._head_plans[index]
            for position in range(start, end):
                candidate = node_by_id(delta[position])
                if candidate.relation != relation or not candidate.alive:
                    continue
                terms = self._terms_of(candidate)
                match = True
                for term_position, frontier_position in frontier_eqs:
                    if terms[term_position] != frontier_values[frontier_position]:
                        match = False
                        break
                if match and const_eqs:
                    for term_position, constant in const_eqs:
                        if terms[term_position] != constant:
                            match = False
                            break
                if match and exist_groups:
                    for group in exist_groups:
                        first = terms[group[0]]
                        for term_position in group:
                            if terms[term_position] != first:
                                match = False
                                break
                        if not match:
                            break
                if match:
                    self._retire_satisfied(index, ids)
                    return False
            checked[ids] = (end, version, frontier_values)
            return True
        head_versions = tuple(self._versions.get(relation, 0)
                              for relation in self._head_relations[index])
        gate = (head_versions, frontier_values)
        if prior == gate:
            # Head relations and frontier values unchanged since the last
            # (unsatisfied) check: still unsatisfied.
            if statistics is not None:
                statistics.trigger_cache_hits += 1
            return True
        pinned = dict(zip(frontier, frontier_values))
        if any(True for _ in _iter_encoded_matches(
                self._tgds[index].head, self._tgd_head_sterms[index],
                self._nodes_for_relation, self._terms_of, pinned)):
            self._retire_satisfied(index, ids)
            return False
        checked[ids] = gate
        return True

    def _recheck_cached(self, index: int,
                        cached: List[TGDTrigger]) -> List[TGDTrigger]:
        """Re-filter a cached actives list after head-only touches.

        Body relations were not touched, so members, bindings, levels and
        order all stand; only R-chase satisfaction can have flipped.
        """
        checked = self._head_checked[index]
        single_head = self._single_heads[index]
        head_version = (self._versions.get(single_head.relation, 0)
                        if single_head is not None else None)
        kept: List[TGDTrigger] = []
        for trigger in cached:
            ids = trigger.node_ids
            prior = checked.get(ids)
            if prior is not None:
                if single_head is not None and prior[1] == head_version:
                    # The head relation has not moved since this match's
                    # last unsatisfied scan.
                    kept.append(trigger)
                    continue
                frontier_values = prior[-1]
            else:
                frontier_values = tuple(
                    trigger.binding_dict()[variable]
                    for variable in self._frontiers[index])
            if self._head_unsatisfied(index, ids, frontier_values):
                kept.append(trigger)
        return kept

    def active_tgd_triggers(self, oblivious: bool,
                            applied: Set[Tuple[int, Tuple[int, ...]]]
                            ) -> List[TGDTrigger]:
        """Every active TGD trigger, ascending by selection priority."""
        statistics = self._statistics
        tgd_actives = self._tgd_actives
        tgd_recheck = self._tgd_recheck
        triggers: List[TGDTrigger] = []
        for index, tgd in enumerate(self._tgds):
            cached = tgd_actives[index]
            if cached is not None:
                if tgd_recheck[index]:
                    # Only head relations moved: keep the cached triggers,
                    # re-checking satisfaction alone.
                    tgd_recheck[index] = False
                    if cached:
                        cached = self._recheck_cached(index, cached)
                        tgd_actives[index] = cached
                elif cached and statistics is not None:
                    # Nothing this rule watches moved: last round's
                    # actives stand verbatim.
                    statistics.trigger_cache_hits += 1
                triggers.extend(cached)
                continue
            pool = self._tgd_pools[index]
            satisfied = self._tgd_satisfied[index]
            checked = self._head_checked[index]
            bindings = self._tgd_bindings[index]
            rule_triggers: List[TGDTrigger] = []
            sterms = self._tgd_body_sterms[index]
            self._tgd_cursors[index] = self._refresh_rule(
                tgd.body, sterms, self._tgd_seeds[index], pool,
                self._tgd_cursors[index], satisfied,
                self._tgd_trivial[index])
            frontier = self._frontiers[index]
            single_head = self._single_heads[index]
            head_version = (self._versions.get(single_head.relation, 0)
                            if single_head is not None else None)
            drop: List[Tuple[int, ...]] = []
            for ids in sorted(pool):
                if oblivious:
                    if (index, ids) in applied:
                        drop.append(ids)
                        continue
                elif ids in satisfied:
                    drop.append(ids)
                    if statistics is not None:
                        statistics.trigger_cache_hits += 1
                    continue
                resolved = self._resolve(tgd.body, sterms, ids, bindings)
                if resolved is None:
                    drop.append(ids)
                    continue
                binding = resolved[2]
                if not oblivious:
                    frontier_values = resolved[4]
                    if frontier_values is None:
                        frontier_values = tuple(
                            binding[variable] for variable in frontier)
                        resolved[4] = frontier_values
                    prior = checked.get(ids)
                    if (single_head is not None and prior is not None
                            and prior[1] == head_version
                            and prior[2] == frontier_values):
                        # Head relation unmoved since the last unsatisfied
                        # scan of this match: skip the re-check entirely.
                        if statistics is not None:
                            statistics.trigger_cache_hits += 1
                    elif not self._head_unsatisfied(index, ids,
                                                    frontier_values):
                        continue
                trigger = resolved[3]
                if trigger is None:
                    trigger = TGDTrigger(index, tgd, resolved[1],
                                         tuple(binding.items()))
                    resolved[3] = trigger
                rule_triggers.append(trigger)
            for ids in drop:
                pool.discard(ids)
                checked.pop(ids, None)
                bindings.pop(ids, None)
            tgd_recheck[index] = False
            tgd_actives[index] = rule_triggers
            triggers.extend(rule_triggers)
        triggers.sort(key=TGDTrigger.priority)
        return triggers

    def note_tgd_applied(self, trigger: TGDTrigger, oblivious: bool) -> None:
        """Retire an applied trigger from its pool (and cache its head).

        In the R-chase an application materialises its own head, so the
        match joins the permanently-satisfied cache; in the O-chase the
        engine's applied-key set already blocks re-selection.

        Only the applied trigger leaves the rule's cached actives: the
        engine reports every node the application creates (and every
        node the ensuing equality fixpoint rewrites) through
        :meth:`touch` *after* this call, so any effect on the rule's
        other matches — new matches, rewritten bindings, freshly
        satisfied heads — still invalidates or re-checks the cache
        through the ordinary watcher paths.
        """
        index = trigger.index
        ids = trigger.node_ids
        self._tgd_pools[index].discard(ids)
        self._head_checked[index].pop(ids, None)
        self._tgd_bindings[index].pop(ids, None)
        cached = self._tgd_actives[index]
        if cached is not None:
            self._tgd_actives[index] = [
                active for active in cached if active is not trigger]
        if not oblivious:
            self._tgd_satisfied[index].add(ids)
