"""The chase engine: O-chase and R-chase with FDs and INDs (Section 3).

The engine follows the paper's construction procedure:

1. while there is an applicable FD, apply the lexicographically first
   applicable FD to the lexicographically first applicable pair of
   conjuncts (the FD chase rule);
2. if some conjuncts have applicable (O-chase) or required (R-chase)
   INDs, apply the lexicographically first such IND to the
   lexicographically first such conjunct of minimum level (the IND chase
   rule), creating a new conjunct at level + 1 whose non-copied columns
   hold fresh NDVs named by the paper's encoding scheme;
3. repeat until nothing is applicable (saturation) or a budget is hit.

Because IND chases can be infinite (Figure 1), the engine is always run
with a budget: a maximum level (Theorem 2's bound when deciding
containment), a maximum number of conjuncts, or a maximum step count.
The result records whether the chase *saturated* (it is the complete,
finite chase) or was *truncated* (it is a prefix of a larger, possibly
infinite, chase).

Two implementations share this module's configuration and result types:

* :class:`ChaseEngine` (the default, ``engine="indexed"``) maintains
  persistent per-relation indexes — FD determinant buckets, an exact-atom
  index, a term-occurrence index, and R-chase requirement buckets — all
  updated incrementally on node insert/rewrite/merge.  The FD fixpoint is
  delta-driven (semi-naive): only conjuncts touched since the last
  fixpoint are probed, and only against the nodes sharing their
  determinant values, so trigger discovery never rescans the whole chase.
* :class:`~repro.chase.legacy_engine.LegacyChaseEngine`
  (``engine="legacy"``) is the seed implementation: pairwise FD scans and
  full index rebuilds after every FD application.  It is kept as the
  semantic reference the differential test harness certifies the indexed
  engine against.

Both follow the identical deterministic policy — minimum level,
lexicographically first conjunct, lexicographically first dependency —
so their results agree node for node, not merely up to isomorphism.  The
pending IND applications are kept in a heap keyed by ``(level, conjunct
id, IND index)``, which realises the paper's selection rule.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from enum import Enum
from typing import Deque, Dict, List, Optional, Set, Tuple

from repro.chase.chase_graph import ChaseGraph, ChaseNode
from repro.chase.embedded_triggers import (
    EGDTrigger,
    SemiNaiveTriggerIndex,
    TGDTrigger,
)
from repro.chase.events import (
    ChaseTrace,
    EGDApplication,
    FDApplication,
    INDApplication,
    TGDApplication,
)
from repro.chase.fd_chase import ConstantClash, resolve_merge
from repro.dependencies.dependency_set import DependencySet
from repro.dependencies.functional import FunctionalDependency
from repro.dependencies.inclusion import InclusionDependency
from repro.exceptions import ChaseError
from repro.obs import probe as _probe
from repro.obs.clock import monotonic
from repro.obs.tracing import current_span, maybe_span
from repro.queries.conjunct import Conjunct
from repro.queries.conjunctive_query import ConjunctiveQuery
from repro.relational.schema import DatabaseSchema
from repro.terms.naming import FreshVariableFactory, NDVProvenance
from repro.terms.substitution import Substitution
from repro.terms.term import Term, Variable

# Engine selection lives in the registry; these re-exports keep the
# historical import path (``from repro.chase.engine import ...``) working.
# ``CHASE_ENGINES`` is a deprecated read-only view over the registry.
from repro.chase.registry import (  # noqa: E402  (re-export)
    CHASE_ENGINE_ENV_VAR,  # noqa: F401  (re-export)
    CHASE_ENGINES,  # noqa: F401  (re-export)
    ChaseEngineProtocol,  # noqa: F401  (re-export)
    available_engines,  # noqa: F401  (re-export)
    create_engine,
    register_engine,
    resolve_engine_name,
    validate_engine_name,
)


class ChaseVariant(Enum):
    """The two ways Section 3 applies the IND chase rule."""

    OBLIVIOUS = "O"
    RESTRICTED = "R"


@dataclass
class ChaseConfig:
    """Budgets and options for one chase run.

    ``max_level`` bounds the level of *created* conjuncts; ``None`` means
    unbounded (use together with ``max_conjuncts``).  ``max_conjuncts``
    bounds the total number of live conjuncts and always applies.
    ``record_trace`` can be switched off for large benchmark runs.
    ``engine`` selects the implementation by registry name (``"indexed"``,
    ``"legacy"``, ``"columnar"``, or anything registered through
    :func:`repro.chase.registry.register_engine`); ``None`` defers to
    ``$REPRO_CHASE_ENGINE`` / the indexed default.
    """

    variant: ChaseVariant = ChaseVariant.RESTRICTED
    max_level: Optional[int] = None
    max_conjuncts: int = 5_000
    max_steps: Optional[int] = None
    record_trace: bool = True
    engine: Optional[str] = None

    def __post_init__(self) -> None:
        if self.max_conjuncts <= 0:
            raise ChaseError("max_conjuncts must be positive")
        if self.max_level is not None and self.max_level < 0:
            raise ChaseError("max_level must be non-negative")
        if self.engine is not None:
            validate_engine_name(self.engine)


@dataclass
class ChaseStatistics:
    """Counters reported with every chase result.

    Rule applications:

    ``fd_steps``
        FD chase rule applications (including the halting constant-clash
        one); each may cascade into several ``merged_conjuncts``.
    ``egd_steps``
        General-EGD applications (the FD rule on arbitrary bodies),
        including a halting one.
    ``ind_steps``
        IND chase rule applications that created a new conjunct.
    ``tgd_steps``
        General-TGD applications that created at least one new conjunct.
    ``redundant_ind_applications`` / ``redundant_tgd_applications``
        IND (TGD) applications that found their conjunct(s) already
        present verbatim (possible in the O-chase) and created nothing.
    ``merged_conjuncts``
        Conjuncts retired because an FD/EGD merge made them identical to
        an earlier conjunct.

    Work accounting (the indexed-vs-legacy benchmark compares these):

    ``triggers_examined``
        Candidate (dependency, conjunct) triggers the engine inspected:
        FD pair comparisons during trigger discovery, per-IND scans when
        registering a conjunct, and pending-queue entries popped.
    ``index_hits``
        Lookups answered by a persistent index instead of a scan — a
        satisfied R-chase requirement, a verbatim duplicate detected on
        IND application, or an FD determinant bucket with candidates.

    Semi-naive TGD/EGD accounting (indexed engine only; the legacy
    engine re-enumerates every body match per round and leaves these
    at zero):

    ``delta_seeded_matches``
        Body matches discovered by seeding a join from a delta node
        (one added or rewritten since the rule's last round); the
        semi-naive analogue of ``triggers_examined`` for embedded rules.
    ``trigger_cache_hits``
        Trigger re-derivations avoided by the permanent caches — a
        non-violating EGD match never re-checked, a satisfied R-chase
        head never re-joined, or an unsatisfied head skipped because
        neither its head relations nor its frontier values changed.
    ``tgd_batches`` / ``batched_tgd_triggers``
        Selection rounds that queued extra *commuting* TGD triggers
        (disjoint body/head relation footprints, all ahead of every
        pending IND), and how many triggers were applied straight off
        that queue without a fresh selection scan.

    Columnar-core accounting (columnar engine only; the object-graph
    engines leave these at zero):

    ``interned_terms``
        Distinct terms interned into dense integer ids over the run —
        query symbols, rule constants, and chase-created NDVs (whose
        ``Term`` objects are only materialised at the result boundary).
    ``union_find_unions`` / ``union_find_finds``
        Merges recorded in, and canonical-id lookups served by, the
        union-find that replaces node-rewrite cascades for EGD/FD
        merges.
    ``column_probes``
        Per-column inverted-index (posting-list) lookups — the probes a
        merge uses to find exactly the rows holding the merged-away id.
    """

    fd_steps: int = 0
    ind_steps: int = 0
    redundant_ind_applications: int = 0
    merged_conjuncts: int = 0
    max_level_reached: int = 0
    triggers_examined: int = 0
    index_hits: int = 0
    egd_steps: int = 0
    tgd_steps: int = 0
    redundant_tgd_applications: int = 0
    delta_seeded_matches: int = 0
    trigger_cache_hits: int = 0
    tgd_batches: int = 0
    batched_tgd_triggers: int = 0
    interned_terms: int = 0
    union_find_unions: int = 0
    union_find_finds: int = 0
    column_probes: int = 0

    @property
    def total_steps(self) -> int:
        """Every chase rule application, productive or not.

        Counts FD/EGD applications and *all* IND/TGD applications —
        including the redundant ones the O-chase performs — so the
        ``max_steps`` budget and the trace agree: ``total_steps ==
        len(trace)`` whenever the trace was recorded.
        """
        return (self.fd_steps + self.egd_steps
                + self.ind_steps + self.redundant_ind_applications
                + self.tgd_steps + self.redundant_tgd_applications)

    @property
    def ind_applications(self) -> int:
        """IND rule applications, whether or not they created a conjunct."""
        return self.ind_steps + self.redundant_ind_applications

    @property
    def tgd_applications(self) -> int:
        """General-TGD applications, whether or not they created conjuncts."""
        return self.tgd_steps + self.redundant_tgd_applications

    @property
    def triggers_fired(self) -> int:
        """Examined triggers that led to an actual rule application."""
        return self.total_steps


@dataclass
class ChaseResult:
    """Outcome of a chase run.

    Results may be shared across calls by a solver's chase cache (the
    module-level :func:`chase` serves them), so treat a result — graph,
    statistics, and trace included — as immutable once returned;
    instantiate :class:`ChaseEngine` directly for a private, fresh run.

    ``failed`` means an FD application tried to merge two distinct
    constants; following the paper, the chased query is then the empty
    query (no conjuncts), which returns the empty answer on every database
    obeying Σ.  ``saturated`` means no dependency is applicable to the
    result — it *is* the complete chase.  ``truncated`` means some
    application was skipped because of the level/size budget — the result
    is a prefix of a larger (possibly infinite) chase.
    """

    query: ConjunctiveQuery
    variant: ChaseVariant
    graph: ChaseGraph
    summary_row: Tuple[Term, ...]
    failed: bool
    saturated: bool
    truncated: bool
    statistics: ChaseStatistics
    trace: ChaseTrace
    #: True when the run stopped because of the conjunct (size) budget, as
    #: opposed to the level budget; containment uses this to distinguish
    #: "exact up to the Theorem 2 level bound" from "ran out of memory".
    hit_conjunct_budget: bool = False
    #: Which implementation built this result ("indexed" or "legacy").
    engine: str = "indexed"
    #: On a failed chase: the FD or EGD whose application clashed two
    #: distinct constants (its ``str`` form), and how many conjuncts were
    #: live at that moment — the prefix the containment report surfaces.
    failure_dependency: Optional[str] = None
    failure_live_conjuncts: int = 0

    def conjuncts(self) -> List[Conjunct]:
        """The live conjuncts of the (partial) chase, in creation order."""
        if self.failed:
            return []
        return self.graph.conjuncts()

    def __len__(self) -> int:
        return 0 if self.failed else len(self.graph)

    def max_level(self) -> int:
        return self.graph.max_level() if not self.failed else 0

    def level_histogram(self) -> Dict[int, int]:
        return self.graph.level_histogram() if not self.failed else {}

    def conjuncts_up_to_level(self, level: int) -> List[Conjunct]:
        """Live conjuncts whose level does not exceed ``level``."""
        if self.failed:
            return []
        return [node.conjunct for node in self.graph if node.level <= level]

    def as_query(self, name: Optional[str] = None) -> ConjunctiveQuery:
        """The chase viewed as a conjunctive query (only if not failed)."""
        if self.failed:
            raise ChaseError(
                "the chase failed on a constant clash; the chased query is empty "
                "and cannot be represented as a ConjunctiveQuery"
            )
        return ConjunctiveQuery(
            input_schema=self.query.input_schema,
            conjuncts=self.conjuncts(),
            summary_row=self.summary_row,
            output_attributes=self.query.output_attributes,
            name=name or f"chase({self.query.name})",
        )

    def describe(self) -> str:
        """Readable report: status line plus the level-by-level graph."""
        status = "failed" if self.failed else (
            "saturated" if self.saturated else "truncated")
        stats = self.statistics
        counters = (
            f"{stats.fd_steps} FD steps, {stats.ind_steps} IND steps"
        )
        if stats.redundant_ind_applications:
            counters += f" (+{stats.redundant_ind_applications} redundant)"
        if stats.egd_steps or stats.tgd_steps or stats.redundant_tgd_applications:
            counters += f", {stats.egd_steps} EGD steps, {stats.tgd_steps} TGD steps"
            if stats.redundant_tgd_applications:
                counters += f" (+{stats.redundant_tgd_applications} redundant)"
        if stats.merged_conjuncts:
            counters += f", {stats.merged_conjuncts} merged conjuncts"
        header = (
            f"{self.variant.value}-chase of {self.query.name}: {status}, "
            f"{len(self)} conjuncts, max level {self.max_level()}, "
            f"{counters}"
        )
        if self.failed:
            return header
        return header + "\n" + self.graph.describe()


class _FdSpec:
    """One FD with resolved positions and its persistent determinant index.

    ``buckets`` maps a tuple of determinant values to the ids of the live
    nodes holding those values — the (relation, determinant-positions,
    determinant-values) → node-bucket index of the indexed engine.
    ``order`` is the FD's position among its relation's FDs, realising
    the "lexicographically first FD" tie-break.
    """

    __slots__ = ("fd", "order", "lhs_positions", "rhs_position", "buckets")

    def __init__(self, fd: FunctionalDependency, order: int,
                 lhs_positions: Tuple[int, ...], rhs_position: int):
        self.fd = fd
        self.order = order
        self.lhs_positions = lhs_positions
        self.rhs_position = rhs_position
        self.buckets: Dict[Tuple[Term, ...], Set[int]] = {}


class ChaseEngine:
    """Builds the chase of one query with incrementally maintained indexes.

    Persistent state (all updated on node insert, rewrite, and merge —
    never rebuilt from scratch):

    * per-FD determinant buckets (:class:`_FdSpec`), probed only for
      *dirty* conjuncts during the FD fixpoint (semi-naive evaluation);
    * an exact-atom index for duplicate detection and merge discovery;
    * a term-occurrence index so an FD merge rewrites only the conjuncts
      that actually contain the merged-away variable;
    * R-chase requirement buckets keyed by (IND, source values);
    * the pending IND heap keyed by ``(level, conjunct id, IND index)``.
    """

    engine_name = "indexed"

    def __init__(self, query: ConjunctiveQuery, dependencies: DependencySet,
                 config: Optional[ChaseConfig] = None):
        dependencies.validate(query.input_schema)
        self._query = query
        self._schema: DatabaseSchema = query.input_schema
        self._dependencies = dependencies
        self._fds = dependencies.functional_dependencies()
        self._inds = dependencies.inclusion_dependencies()
        self._tgds = dependencies.tgds()
        self._egds = dependencies.egds()
        self._config = config or ChaseConfig()
        self._graph = ChaseGraph()
        self._summary: Tuple[Term, ...] = query.summary_row
        self._fresh = FreshVariableFactory()
        self._trace = ChaseTrace()
        self._statistics = ChaseStatistics()
        self._failed = False
        self._truncated = False
        self._failure_dependency: Optional[str] = None
        self._failure_live_conjuncts = 0
        self._applied_tgds: Set[Tuple[int, Tuple[int, ...]]] = set()

        # Resolved column positions, one lookup per dependency.
        self._ind_positions: Dict[int, Tuple[Tuple[int, ...], Tuple[int, ...]]] = {}
        self._inds_by_source: Dict[str, List[int]] = {}
        self._inds_by_target: Dict[str, List[int]] = {}
        for index, ind in enumerate(self._inds):
            self._ind_positions[index] = (
                ind.lhs_positions(self._schema), ind.rhs_positions(self._schema))
            self._inds_by_source.setdefault(ind.lhs_relation, []).append(index)
            self._inds_by_target.setdefault(ind.rhs_relation, []).append(index)
        self._fd_specs_by_relation: Dict[str, List[_FdSpec]] = {}
        for fd in self._fds:
            relation = self._schema.relation(fd.relation)
            specs = self._fd_specs_by_relation.setdefault(fd.relation, [])
            specs.append(_FdSpec(fd, len(specs),
                                 fd.lhs_positions(relation), fd.rhs_position(relation)))

        # Persistent indexes and the work queues (see class docstring).
        self._pending: List[Tuple[int, int, int]] = []        # (level, node_id, ind index)
        self._applied: Set[Tuple[int, int]] = set()            # (node_id, ind index)
        self._satisfied: Dict[Tuple[int, Tuple[Term, ...]], Set[int]] = {}
        self._atom_nodes: Dict[Tuple[str, Tuple[Term, ...]], Set[int]] = {}
        self._duplicate_keys: Set[Tuple[str, Tuple[Term, ...]]] = set()
        self._term_nodes: Dict[Variable, Set[int]] = {}
        # Live node ids per relation — only the TGD/EGD trigger search
        # reads it, so it is maintained only when Σ has embedded rules
        # (no overhead on the classic FD/IND hot path).
        self._relation_nodes: Dict[str, Set[int]] = {}
        self._track_relations = bool(self._tgds or self._egds)
        self._dirty: Dict[int, None] = {}                      # ordered set of node ids
        # Semi-naive trigger discovery for embedded Σ, plus the queue of
        # commuting TGD triggers batched by one selection round.
        self._trigger_index: Optional[SemiNaiveTriggerIndex] = (
            SemiNaiveTriggerIndex(
                self._tgds, self._egds, self._live_nodes,
                self._graph.node, self._statistics,
                oblivious=self._config.variant is ChaseVariant.OBLIVIOUS)
            if self._track_relations else None)
        self._batched_triggers: Deque[TGDTrigger] = deque()
        # Relations whose new atoms could fire an equality rule; a batch
        # of TGD triggers is only formed when no member's head touches one
        # (so the FD/EGD fixpoint between batched applications is a no-op).
        self._equality_relations: Set[str] = (
            set(self._fd_specs_by_relation)
            | {atom.relation for egd in self._egds for atom in egd.body})
        # Per-TGD batching metadata, precomputed once per engine: the
        # body∪head relation footprint and whether the head stays clear
        # of every equality-watched relation.
        self._tgd_footprints: List[Set[str]] = [
            {atom.relation for atom in tgd.body}
            | {atom.relation for atom in tgd.head}
            for tgd in self._tgds]
        self._tgd_heads_quiet: List[bool] = [
            not any(atom.relation in self._equality_relations
                    for atom in tgd.head)
            for tgd in self._tgds]

    def _dependency_str(self, dependency) -> str:
        # Memoised on the (frozen, immutable) dependency itself so the
        # rendering survives engine rebuilds over the same Σ.
        rendered = dependency.__dict__.get("_rendered")
        if rendered is None:
            rendered = str(dependency)
            object.__setattr__(dependency, "_rendered", rendered)
        return rendered

    # -- public entry point ---------------------------------------------------

    @property
    def graph(self) -> ChaseGraph:
        """The chase graph built so far (the ``ChaseEngineProtocol`` surface)."""
        return self._graph

    @property
    def statistics(self) -> ChaseStatistics:
        """Work counters accumulated so far (the ``ChaseEngineProtocol`` surface)."""
        return self._statistics

    def run(self) -> ChaseResult:
        """Execute the chase until saturation, failure, or a budget limit."""
        return run_with_instrumentation(self)

    def _run(self) -> ChaseResult:
        for conjunct in self._query.conjuncts:
            node = self._graph.new_node(conjunct, level=0)
            self._register_node(node)

        steps_budget = self._config.max_steps
        hit_conjunct_budget = False
        while True:
            self._apply_equalities_to_fixpoint()
            if self._failed:
                break
            if steps_budget is not None and self._statistics.total_steps >= steps_budget:
                self._truncated = True
                break
            application = self._next_expansion()
            if application is None:
                break
            if len(self._graph) >= self._config.max_conjuncts:
                self._truncated = True
                hit_conjunct_budget = True
                break
            kind, payload = application
            if kind == "ind":
                self._apply_ind(*payload)
            else:
                self._apply_tgd(payload)

        if self._config.variant is ChaseVariant.RESTRICTED and not self._failed:
            self._record_cross_arcs()

        saturated = not self._failed and not self._truncated
        return ChaseResult(
            query=self._query,
            variant=self._config.variant,
            graph=self._graph,
            summary_row=self._summary,
            failed=self._failed,
            saturated=saturated,
            truncated=self._truncated,
            statistics=self._statistics,
            trace=self._trace,
            hit_conjunct_budget=hit_conjunct_budget,
            engine=self.engine_name,
            failure_dependency=self._failure_dependency,
            failure_live_conjuncts=self._failure_live_conjuncts,
        )

    # -- node registration and incremental index maintenance -------------------

    def _register_node(self, node: ChaseNode) -> None:
        """Enter a new node into every index and enqueue its IND applications."""
        self._index_node(node)
        for index in self._inds_by_source.get(node.relation, ()):
            heapq.heappush(self._pending, (node.level, node.node_id, index))
        self._dirty[node.node_id] = None
        if self._trigger_index is not None:
            self._trigger_index.touch(node)

    def _index_node(self, node: ChaseNode) -> None:
        """Insert a node's current terms into the persistent indexes."""
        node_id = node.node_id
        if self._track_relations:
            self._relation_nodes.setdefault(node.relation, set()).add(node_id)
        atoms = self._atom_nodes.setdefault((node.relation, node.conjunct.terms), set())
        atoms.add(node_id)
        if len(atoms) > 1:
            self._duplicate_keys.add((node.relation, node.conjunct.terms))
        for term in node.conjunct.terms:
            if isinstance(term, Variable):
                self._term_nodes.setdefault(term, set()).add(node_id)
        for spec in self._fd_specs_by_relation.get(node.relation, ()):
            spec.buckets.setdefault(
                node.conjunct.terms_at(spec.lhs_positions), set()).add(node_id)
        for index in self._inds_by_target.get(node.relation, ()):
            self._statistics.triggers_examined += 1
            _, rhs_positions = self._ind_positions[index]
            key = (index, node.conjunct.terms_at(rhs_positions))
            self._satisfied.setdefault(key, set()).add(node_id)

    def _unindex_node(self, node: ChaseNode) -> None:
        """Remove a node's current terms from the persistent indexes."""
        node_id = node.node_id
        if self._track_relations:
            holders = self._relation_nodes.get(node.relation)
            if holders is not None:
                holders.discard(node_id)
        key = (node.relation, node.conjunct.terms)
        atoms = self._atom_nodes.get(key)
        if atoms is not None:
            atoms.discard(node_id)
            if len(atoms) < 2:
                self._duplicate_keys.discard(key)
            if not atoms:
                del self._atom_nodes[key]
        for term in node.conjunct.terms:
            if isinstance(term, Variable):
                holders = self._term_nodes.get(term)
                if holders is not None:
                    holders.discard(node_id)
                    if not holders:
                        del self._term_nodes[term]
        for spec in self._fd_specs_by_relation.get(node.relation, ()):
            values = node.conjunct.terms_at(spec.lhs_positions)
            bucket = spec.buckets.get(values)
            if bucket is not None:
                bucket.discard(node_id)
                if not bucket:
                    del spec.buckets[values]
        for index in self._inds_by_target.get(node.relation, ()):
            _, rhs_positions = self._ind_positions[index]
            skey = (index, node.conjunct.terms_at(rhs_positions))
            bucket = self._satisfied.get(skey)
            if bucket is not None:
                bucket.discard(node_id)
                if not bucket:
                    del self._satisfied[skey]

    def _first_atom_node(self, relation: str, terms: Tuple[Term, ...]) -> Optional[int]:
        """The earliest-created live node holding exactly this atom."""
        bucket = self._atom_nodes.get((relation, terms))
        if not bucket:
            return None
        return min(bucket)

    # -- FD/EGD phase -------------------------------------------------------------

    def _live_nodes(self, relation: str) -> List[ChaseNode]:
        """Live nodes of one relation in id order (trigger-search backing).

        Served from the per-relation id index (maintained alongside the
        other persistent indexes), so a trigger search never re-scans the
        whole chase per candidate atom; sorting the per-relation subset
        restores the id order the deterministic policy requires.
        """
        holders = self._relation_nodes.get(relation)
        if not holders:
            return []
        return [self._graph.node(node_id) for node_id in sorted(holders)]

    def _apply_equalities_to_fixpoint(self) -> None:
        """Step 1 of the policy, generalised: FDs to fixpoint, then EGDs.

        FDs keep priority (their semi-naive discovery is cheap); whenever
        an EGD merge rewrites terms the FD fixpoint runs again, so the
        phase ends with no FD *and* no EGD applicable.  EGD triggers come
        from the semi-naive index: joins are seeded from nodes touched
        since each EGD's last round, and matches proven non-violating are
        never re-derived.
        """
        self._apply_fds_to_fixpoint()
        while self._egds and not self._failed:
            trigger = self._trigger_index.next_egd_trigger()
            if trigger is None:
                return
            self._apply_egd(trigger)
            if not self._failed:
                self._apply_fds_to_fixpoint()

    def _apply_fds_to_fixpoint(self) -> None:
        """Apply the FD chase rule until no FD is applicable (step 1 of the policy)."""
        if not self._fds:
            self._dirty.clear()
            return
        while not self._failed:
            found = self._find_applicable_fd()
            if found is None:
                self._dirty.clear()
                return
            spec, first, second = found
            self._apply_fd(spec, first, second)

    def _find_applicable_fd(self) -> Optional[Tuple[_FdSpec, ChaseNode, ChaseNode]]:
        """Lexicographically first applicable (FD, pair of conjuncts).

        Only pairs involving a *dirty* node (one added or rewritten since
        the last fixpoint) can be newly applicable.  Each dirty node is
        probed against its FD determinant buckets — the nodes already
        agreeing with it on the determinant — so discovery work is
        proportional to the actual candidates, not to the square of the
        chase.  The chosen pair is still the first in (node id, node id,
        FD order) among the applicable ones, exactly the legacy policy.
        """
        best: Optional[Tuple[int, int, int, _FdSpec]] = None
        for node_id in list(self._dirty):
            node = self._graph.node(node_id)
            if not node.alive:
                del self._dirty[node_id]
                continue
            specs = self._fd_specs_by_relation.get(node.relation)
            if not specs:
                continue
            for spec in specs:
                values = node.conjunct.terms_at(spec.lhs_positions)
                bucket = spec.buckets.get(values)
                if bucket is None or len(bucket) < 2:
                    continue
                self._statistics.index_hits += 1
                own_rhs = node.conjunct.term_at(spec.rhs_position)
                for other_id in bucket:
                    if other_id == node_id:
                        continue
                    self._statistics.triggers_examined += 1
                    other = self._graph.node(other_id)
                    if other.conjunct.term_at(spec.rhs_position) == own_rhs:
                        continue
                    first_id, second_id = ((node_id, other_id)
                                           if node_id < other_id else (other_id, node_id))
                    candidate = (first_id, second_id, spec.order, spec)
                    if best is None or candidate[:3] < best[:3]:
                        best = candidate
        if best is None:
            return None
        return best[3], self._graph.node(best[0]), self._graph.node(best[1])

    def _halt_on_clash(self, dependency: str) -> None:
        """The paper's constant-clash case: record the prefix, empty the query."""
        self._failed = True
        self._failure_dependency = dependency
        self._failure_live_conjuncts = len(self._graph)
        for node in self._graph.nodes():
            self._graph.retire_node(node.node_id)
        self._dirty.clear()

    def _merge_symbols(self, survivor: Term, loser: Term) -> None:
        """Rewrite ``loser`` to ``survivor`` everywhere (incremental reindex)."""
        if not isinstance(loser, Variable):
            return
        substitution = Substitution({loser: survivor})
        affected = sorted(self._term_nodes.get(loser, ()))
        for node_id in affected:
            node = self._graph.node(node_id)
            self._unindex_node(node)
            node.conjunct = node.conjunct.substitute(substitution)
            self._index_node(node)
            self._dirty[node_id] = None
            if self._trigger_index is not None:
                self._trigger_index.touch(node)
        self._summary = substitution.apply_tuple(self._summary)

    def _apply_fd(self, spec: _FdSpec, first: ChaseNode, second: ChaseNode) -> None:
        fd = spec.fd
        first_symbol = first.conjunct.term_at(spec.rhs_position)
        second_symbol = second.conjunct.term_at(spec.rhs_position)
        self._statistics.fd_steps += 1
        try:
            survivor, loser = resolve_merge(first_symbol, second_symbol)
        except ConstantClash:
            self._record(FDApplication(
                dependency=fd, first_conjunct=first.label, second_conjunct=second.label,
                merged_away=None, survivor=None, halted=True))
            self._halt_on_clash(str(fd))
            return
        self._record(FDApplication(
            dependency=fd, first_conjunct=first.label, second_conjunct=second.label,
            merged_away=loser, survivor=survivor))
        self._merge_symbols(survivor, loser)
        self._merge_identical_conjuncts()

    def _apply_egd(self, trigger: EGDTrigger) -> None:
        """The EGD chase rule: merge the two equated symbols (FD semantics)."""
        self._statistics.egd_steps += 1
        labels = tuple(node.label for node in trigger.nodes)
        try:
            survivor, loser = resolve_merge(trigger.first, trigger.second)
        except ConstantClash:
            self._record(EGDApplication(
                dependency=trigger.egd, conjuncts=labels,
                merged_away=None, survivor=None, halted=True))
            self._halt_on_clash(str(trigger.egd))
            return
        self._record(EGDApplication(
            dependency=trigger.egd, conjuncts=labels,
            merged_away=loser, survivor=survivor))
        self._merge_symbols(survivor, loser)
        self._merge_identical_conjuncts()

    def _merge_identical_conjuncts(self) -> None:
        """Coalesce nodes that became identical atoms after a merge.

        Duplicate groups are read straight off the exact-atom index (any
        atom key held by two or more live nodes), so only actual
        collisions are visited.  The surviving node keeps the minimum of
        the merged levels (the paper's levelling rule); ordinary-arc
        parents of children of the retired node are redirected to the
        survivor so ancestor chains stay meaningful.
        """
        while self._duplicate_keys:
            key = self._duplicate_keys.pop()
            bucket = self._atom_nodes.get(key)
            if bucket is None or len(bucket) < 2:
                continue
            self._statistics.index_hits += 1
            ids = sorted(bucket)
            survivor = self._graph.node(ids[0])
            for retired_id in ids[1:]:
                retired = self._graph.node(retired_id)
                if retired.level < survivor.level:
                    # The paper's levelling rule lowers the survivor, so
                    # its pending-heap entries (keyed at insert-time level)
                    # are now stale: re-key by pushing fresh entries at the
                    # live level; the stale ones are discarded on pop.
                    survivor.level = retired.level
                    for index in self._inds_by_source.get(survivor.relation, ()):
                        heapq.heappush(self._pending,
                                       (survivor.level, survivor.node_id, index))
                for child in self._graph.children(retired_id):
                    child.parent = survivor.node_id
                self._unindex_node(retired)
                self._graph.retire_node(retired_id)
                self._dirty.pop(retired_id, None)
                self._statistics.merged_conjuncts += 1

    # -- IND/TGD phase -----------------------------------------------------------------

    def _peek_next_ind_application(
            self) -> Optional[Tuple[int, ChaseNode, int, InclusionDependency]]:
        """The next needed (conjunct, IND) pair, popped but not level-checked.

        The pending heap is keyed by ``(level, node id, IND index)``, which
        is exactly "minimum level, lexicographically first conjunct,
        lexicographically first IND".  Entries whose application is no
        longer needed (already applied in the O-chase, requirement already
        satisfied in the R-chase, node retired by an FD merge) are
        discarded as they surface.  The caller pushes the returned entry
        back when it decides not to apply it.
        """
        oblivious = self._config.variant is ChaseVariant.OBLIVIOUS
        while self._pending:
            level, node_id, index = heapq.heappop(self._pending)
            self._statistics.triggers_examined += 1
            node = self._graph.node(node_id)
            if not node.alive:
                continue
            if level != node.level:
                # Stale key: an identical-conjunct merge lowered the node's
                # level after this entry was pushed, and pushed a fresh
                # entry at the live level.  Applying at the stale key would
                # deviate from the minimum-level policy.
                continue
            ind = self._inds[index]
            if oblivious:
                if (node_id, index) in self._applied:
                    continue
            else:
                if self._requirement_satisfied(node, index):
                    self._statistics.index_hits += 1
                    continue
            return level, node, index, ind
        return None

    def _pop_next_ind_application(self) -> Optional[Tuple[ChaseNode, int, InclusionDependency]]:
        """Step 2 of the policy (IND-only Σ): the next pair to apply.

        If the next needed application would exceed the level budget, so
        would every later one (the heap is level-ordered), so the chase
        stops as truncated.
        """
        entry = self._peek_next_ind_application()
        if entry is None:
            return None
        level, node, index, ind = entry
        if (self._config.max_level is not None
                and node.level + 1 > self._config.max_level):
            self._truncated = True
            heapq.heappush(self._pending, (level, node.node_id, index))
            return None
        return node, index, ind

    def _next_expansion(self):
        """Step 2 of the policy: the minimum-priority creation application.

        Without TGDs this is exactly the classical IND selection.  With
        TGDs, the pending IND application and the minimum active TGD
        trigger compete on ``(level, node-id tuple, kind, dependency
        index)`` — INDs before TGDs on full ties — and the loser stays
        pending.  If the chosen application would exceed the level
        budget, every other one would too (it is the minimum), so the
        chase stops as truncated.

        When the winning TGD trigger is followed (in priority order) by
        *commuting* triggers — see :meth:`_collect_commuting_batch` —
        those are queued and served by the next calls without a fresh
        selection scan; applying them in queue order is node-for-node
        identical to re-selecting each round.
        """
        if not self._tgds:
            application = self._pop_next_ind_application()
            return None if application is None else ("ind", application)
        if self._batched_triggers:
            return ("tgd", self._batched_triggers.popleft())
        entry = self._peek_next_ind_application()
        actives = self._trigger_index.active_tgd_triggers(
            self._config.variant is ChaseVariant.OBLIVIOUS, self._applied_tgds)
        trigger = actives[0] if actives else None
        if entry is None and trigger is None:
            return None
        ind_priority = (None if entry is None
                        else (entry[1].level, (entry[1].node_id,), 0, entry[2]))
        tgd_priority = (None if trigger is None
                        else (trigger.level, trigger.node_ids, 1, trigger.index))
        choose_ind = tgd_priority is None or (ind_priority is not None
                                              and ind_priority < tgd_priority)
        chosen_level = (ind_priority if choose_ind else tgd_priority)[0]
        if (self._config.max_level is not None
                and chosen_level + 1 > self._config.max_level):
            self._truncated = True
            if entry is not None:
                heapq.heappush(self._pending, (entry[0], entry[1].node_id, entry[2]))
            return None
        if choose_ind:
            return ("ind", (entry[1], entry[2], entry[3]))
        if entry is not None:
            heapq.heappush(self._pending, (entry[0], entry[1].node_id, entry[2]))
        self._collect_commuting_batch(trigger, actives, ind_priority)
        return ("tgd", trigger)

    def _collect_commuting_batch(self, first: TGDTrigger,
                                 actives: List[TGDTrigger],
                                 ind_priority) -> None:
        """Queue the triggers that provably follow ``first`` unchanged.

        A prefix of the remaining actives is batched while every member

        * sits at the chosen trigger's level (so the level-budget check
          already covers it) and still beats the best pending IND;
        * touches a body∪head relation footprint disjoint from every
          earlier member's, so no earlier application can create, satisfy,
          or re-rank a later member's match — and any match *created* by
          an earlier member lives at a deeper level, so it cannot outrank
          one;
        * creates atoms only in relations no FD or EGD watches, so the
          equality fixpoint between the batched applications is a no-op
          (no merge can rewrite a queued trigger out from under us).

        Under those conditions, applying the queue in order is exactly
        what per-round re-selection would have chosen; the differential
        harness certifies this against the unbatched legacy engine.
        """
        footprints = self._tgd_footprints
        heads_quiet = self._tgd_heads_quiet
        if not heads_quiet[first.index]:
            return
        claimed = set(footprints[first.index])
        for candidate in actives[1:]:
            if candidate.level != first.level:
                break
            if (ind_priority is not None
                    and not ((candidate.level, candidate.node_ids, 1,
                              candidate.index) < ind_priority)):
                break
            relations = footprints[candidate.index]
            if relations & claimed:
                break
            if not heads_quiet[candidate.index]:
                break
            self._batched_triggers.append(candidate)
            claimed |= relations
        if self._batched_triggers:
            self._statistics.tgd_batches += 1
            self._statistics.batched_tgd_triggers += len(self._batched_triggers)

    def _requirement_satisfied(self, node: ChaseNode, index: int) -> bool:
        """R-chase: is there already a conjunct c' with c'[Y] = c[X]?"""
        lhs_positions, _ = self._ind_positions[index]
        source_values = node.conjunct.terms_at(lhs_positions)
        return bool(self._satisfied.get((index, source_values)))

    def _apply_ind(self, node: ChaseNode, index: int, ind: InclusionDependency) -> None:
        """The IND chase rule: create the new conjunct with fresh NDVs."""
        lhs_positions, rhs_positions = self._ind_positions[index]
        target_schema = self._schema.relation(ind.rhs_relation)
        source_values = node.conjunct.terms_at(lhs_positions)
        new_level = node.level + 1
        self._applied.add((node.node_id, index))

        terms: List[Term] = []
        fresh_terms: List[Term] = []
        for position in range(target_schema.arity):
            if position in rhs_positions:
                terms.append(source_values[rhs_positions.index(position)])
            else:
                provenance = NDVProvenance(
                    attribute=target_schema.attribute_name_at(position),
                    source_conjunct=node.label,
                    dependency=self._dependency_str(ind),
                    level=new_level,
                )
                fresh = self._fresh.fresh(provenance)
                terms.append(fresh)
                fresh_terms.append(fresh)

        candidate = Conjunct(ind.rhs_relation, terms)
        duplicate_id = self._first_atom_node(candidate.relation, candidate.terms)
        if duplicate_id is not None:
            # The created conjunct already exists verbatim (only possible
            # when the IND copies every column of the target).  No new node
            # is needed; in the O-chase the application is simply marked
            # done, in the R-chase it would not have been selected.
            duplicate = self._graph.node(duplicate_id)
            self._statistics.redundant_ind_applications += 1
            self._statistics.index_hits += 1
            if self._config.record_trace:
                self._record(INDApplication(
                    dependency=ind, source_conjunct=node.label,
                    created_conjunct=None, existing_conjunct=duplicate.label,
                    level=duplicate.level))
            return

        created = self._graph.new_node(candidate, level=new_level,
                                       parent=node.node_id, via=ind)
        self._register_node(created)
        self._statistics.ind_steps += 1
        self._statistics.max_level_reached = max(self._statistics.max_level_reached, new_level)
        if self._config.record_trace:
            self._record(INDApplication(
                dependency=ind, source_conjunct=node.label,
                created_conjunct=created.label, existing_conjunct=None,
                level=new_level, fresh_variables=tuple(fresh_terms)))

    def _apply_tgd(self, trigger: TGDTrigger) -> None:
        """The TGD chase rule: create the head conjuncts with fresh NDVs.

        One fresh NDV per existential variable of the head (shared across
        its occurrences); head atoms already present verbatim create
        nothing.  The ordinary-arc parent is the first deepest node of
        the body image, so every arc still raises the level by one.
        """
        tgd = trigger.tgd
        binding = trigger.binding_dict()
        new_level = trigger.level + 1
        oblivious = self._config.variant is ChaseVariant.OBLIVIOUS
        if oblivious:
            # Only the O-chase consults the applied-key set; the R-chase
            # retires applied matches through the satisfied cache instead.
            self._applied_tgds.add(trigger.applied_key)
        if self._trigger_index is not None:
            self._trigger_index.note_tgd_applied(trigger, oblivious)
        nodes = trigger.nodes
        parent = nodes[0]
        if len(nodes) > 1:
            level = trigger.level
            for node in nodes:
                if node.level == level:
                    parent = node
                    break

        statistics = self._statistics
        fresh_by_variable: Dict[Variable, Term] = {}
        fresh_terms: List[Term] = []
        created_labels: List[str] = []
        for atom in tgd.head:
            target_schema = self._schema.relation(atom.relation)
            terms: List[Term] = []
            for position, term in enumerate(atom.terms):
                if not isinstance(term, Variable):
                    terms.append(term)
                elif term in binding:
                    terms.append(binding[term])
                else:
                    fresh = fresh_by_variable.get(term)
                    if fresh is None:
                        provenance = NDVProvenance(
                            attribute=target_schema.attribute_name_at(position),
                            source_conjunct=parent.label,
                            dependency=self._dependency_str(tgd),
                            level=new_level,
                        )
                        fresh = self._fresh.fresh(provenance)
                        fresh_by_variable[term] = fresh
                        fresh_terms.append(fresh)
                    terms.append(fresh)
            candidate = Conjunct(atom.relation, terms)
            if self._first_atom_node(candidate.relation, candidate.terms) is not None:
                statistics.index_hits += 1
                continue
            created = self._graph.new_node(candidate, level=new_level,
                                           parent=parent.node_id, via=tgd)
            self._register_node(created)
            created_labels.append(created.label)
        if created_labels:
            statistics.tgd_steps += 1
            if new_level > statistics.max_level_reached:
                statistics.max_level_reached = new_level
        else:
            statistics.redundant_tgd_applications += 1
        if self._config.record_trace:
            self._record(TGDApplication(
                dependency=tgd,
                source_conjuncts=tuple(node.label for node in trigger.nodes),
                created_conjuncts=tuple(created_labels),
                level=new_level, fresh_variables=tuple(fresh_terms)))

    def _record_cross_arcs(self) -> None:
        """R-chase post-pass: record cross arcs for satisfied requirements.

        For every conjunct c and IND ``R[X] ⊆ S[Y]`` applicable to c whose
        required conjunct already exists, add a cross arc from c to (the
        first) such conjunct, unless c itself has an ordinary arc for that
        IND.  These are the cross arcs Theorem 2's key-based certificate
        argument inspects.
        """
        if not self._inds:
            return
        ordinary = {(arc.source, self._dependency_str(arc.dependency))
                    for arc in self._graph.ordinary_arcs()}
        for node in self._graph.nodes():
            for index in self._inds_by_source.get(node.relation, ()):
                ind = self._inds[index]
                key = (node.node_id, self._dependency_str(ind))
                if key in ordinary:
                    continue
                lhs_positions, _ = self._ind_positions[index]
                source_values = node.conjunct.terms_at(lhs_positions)
                bucket = self._satisfied.get((index, source_values))
                target_id = min(bucket) if bucket else None
                if target_id is not None and target_id != node.node_id:
                    self._graph.add_cross_arc(node.node_id, target_id, ind)

    # -- bookkeeping -----------------------------------------------------------------------

    def _record(self, step) -> None:
        if self._config.record_trace:
            self._trace.record(step)


def run_with_instrumentation(engine) -> ChaseResult:
    """Run an engine's ``_run``, reporting to the probe and current trace.

    Shared by both implementations so their ``run()`` methods stay
    one-liners.  The disabled path is two attribute/contextvar reads and
    a direct call — no timing, no span allocation — which is what keeps
    uninstrumented benchmarks at parity (the E20 guard measures this).
    """
    probe = _probe.ACTIVE
    if probe is None and current_span() is None:
        return engine._run()
    started = monotonic()
    with maybe_span("chase.run", engine=engine.engine_name) as span:
        result = engine._run()
        elapsed = monotonic() - started
        conjuncts = len(result)
        if span is not None:
            stats = result.statistics
            span.tags.update(
                conjuncts=conjuncts,
                max_level=result.max_level(),
                total_steps=stats.total_steps,
                triggers_examined=stats.triggers_examined,
                outcome=("failed" if result.failed
                         else "saturated" if result.saturated else "truncated"),
            )
    if probe is not None:
        probe.chase(engine.engine_name, elapsed, result.statistics,
                    conjuncts, result.saturated, result.failed)
    return result


def build_engine(query: ConjunctiveQuery, dependencies: DependencySet,
                 config: Optional[ChaseConfig] = None):
    """Instantiate the engine a config selects (indexed by default)."""
    resolved_config = config or ChaseConfig()
    name = resolve_engine_name(resolved_config.engine)
    return create_engine(name, query, dependencies, resolved_config)


# -- built-in engine registration ---------------------------------------------------------------


def _indexed_factory(query: ConjunctiveQuery, dependencies: DependencySet,
                     config: ChaseConfig) -> "ChaseEngine":
    return ChaseEngine(query, dependencies, config)


def _legacy_factory(query: ConjunctiveQuery, dependencies: DependencySet,
                    config: ChaseConfig):
    from repro.chase.legacy_engine import LegacyChaseEngine
    return LegacyChaseEngine(query, dependencies, config)


def _columnar_factory(query: ConjunctiveQuery, dependencies: DependencySet,
                      config: ChaseConfig):
    from repro.chase.columnar import ColumnarChaseEngine
    return ColumnarChaseEngine(query, dependencies, config)


# replace=True keeps registration idempotent under module reloads.
register_engine("indexed", _indexed_factory, replace=True)
register_engine("legacy", _legacy_factory, replace=True)
register_engine("columnar", _columnar_factory, replace=True)


# -- module-level convenience functions ---------------------------------------------------------


def chase(query: ConjunctiveQuery, dependencies: DependencySet,
          config: Optional[ChaseConfig] = None) -> ChaseResult:
    """Chase ``query`` with respect to ``dependencies`` under ``config``.

    Thin wrapper over the process-wide default
    :class:`~repro.api.solver.Solver`: identical (query, Σ, config)
    requests are served from its chase cache.  Instantiate
    :class:`ChaseEngine` directly to force a fresh, uncached run.
    """
    from repro.api.solver import get_default_solver
    return get_default_solver().chase(query, dependencies, config)


def r_chase(query: ConjunctiveQuery, dependencies: DependencySet,
            max_level: Optional[int] = None, max_conjuncts: int = 5_000,
            record_trace: bool = True) -> ChaseResult:
    """The R-chase ("required" applications only), bounded by the given budgets."""
    config = ChaseConfig(variant=ChaseVariant.RESTRICTED, max_level=max_level,
                         max_conjuncts=max_conjuncts, record_trace=record_trace)
    return chase(query, dependencies, config)


def o_chase(query: ConjunctiveQuery, dependencies: DependencySet,
            max_level: Optional[int] = None, max_conjuncts: int = 5_000,
            record_trace: bool = True) -> ChaseResult:
    """The O-chase ("oblivious": one application per applicable conjunct/IND pair)."""
    config = ChaseConfig(variant=ChaseVariant.OBLIVIOUS, max_level=max_level,
                         max_conjuncts=max_conjuncts, record_trace=record_trace)
    return chase(query, dependencies, config)
