"""The classical FD-only chase on conjunctive queries.

This is the chase of Maier, Mendelzon, and Sagiv (reference [11] of the
paper): repeatedly find two conjuncts of the same relation that agree on
the left-hand side of an FD but differ on its right-hand side and merge
the two differing symbols.  It always terminates, and the result is unique
up to renaming; with the paper's deterministic policy (lexicographically
first applicable pair and FD, survivor = constant or lexicographically
first variable) it is unique outright.

The full chase engine reuses the primitives here for its FD phase; the
standalone functions are used directly for FD-only containment and as the
first phase of the key-based R-chase (Lemma 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from repro.chase.events import ChaseTrace, FDApplication
from repro.dependencies.dependency_set import DependencySet
from repro.dependencies.functional import FunctionalDependency
from repro.exceptions import ChaseError
from repro.queries.conjunct import Conjunct
from repro.queries.conjunctive_query import ConjunctiveQuery
from repro.relational.schema import DatabaseSchema
from repro.terms.substitution import Substitution
from repro.terms.term import Constant, Term, Variable
from repro.terms.term import lexicographic_min


class ConstantClash(Exception):
    """Internal signal: the FD rule tried to merge two distinct constants."""


def resolve_merge(first: Term, second: Term) -> Tuple[Term, Term]:
    """Survivor and loser of merging two symbols under the FD chase rule.

    Raises :class:`ConstantClash` when both are distinct constants (the
    paper's "delete all conjuncts and halt" case).
    """
    if first == second:
        return first, second
    first_const = isinstance(first, Constant)
    second_const = isinstance(second, Constant)
    if first_const and second_const:
        raise ConstantClash(f"cannot merge distinct constants {first} and {second}")
    if first_const:
        return first, second
    if second_const:
        return second, first
    survivor = lexicographic_min(first, second)
    loser = second if survivor == first else first
    return survivor, loser


def find_applicable_fd(conjuncts: Sequence[Conjunct],
                       fds: Sequence[FunctionalDependency],
                       schema: DatabaseSchema
                       ) -> Optional[Tuple[FunctionalDependency, int, int]]:
    """The lexicographically first applicable (FD, conjunct pair).

    Pairs are ordered by their positions in ``conjuncts`` and, within a
    pair, FDs by their position in ``fds`` — the deterministic policy of
    Section 3.  Returns ``(fd, i, j)`` with ``i < j`` or ``None``.
    """
    for i in range(len(conjuncts)):
        first = conjuncts[i]
        for j in range(i + 1, len(conjuncts)):
            second = conjuncts[j]
            if first.relation != second.relation:
                continue
            for fd in fds:
                if fd.relation != first.relation:
                    continue
                relation = schema.relation(fd.relation)
                lhs_positions = fd.lhs_positions(relation)
                rhs_position = fd.rhs_position(relation)
                if (first.terms_at(lhs_positions) == second.terms_at(lhs_positions)
                        and first.term_at(rhs_position) != second.term_at(rhs_position)):
                    return fd, i, j
    return None


@dataclass
class FDChaseResult:
    """Outcome of an FD-only chase.

    ``query`` is ``None`` exactly when the chase halted on a constant
    clash, in which case the chased query is the empty query (it returns
    the empty answer on every database obeying the FDs).
    """

    query: Optional[ConjunctiveQuery]
    failed: bool
    trace: ChaseTrace = field(default_factory=ChaseTrace)
    steps: int = 0

    @property
    def succeeded(self) -> bool:
        return not self.failed


def fd_only_chase(query: ConjunctiveQuery,
                  dependencies: Union[DependencySet, Sequence[FunctionalDependency]],
                  max_steps: int = 100_000) -> FDChaseResult:
    """Chase a query with FDs only, following the deterministic policy."""
    if isinstance(dependencies, DependencySet):
        fds = dependencies.functional_dependencies()
        if dependencies.inclusion_dependencies():
            raise ChaseError(
                "fd_only_chase received inclusion dependencies; use the chase engine instead"
            )
    else:
        fds = list(dependencies)
    schema = query.input_schema
    conjuncts = list(query.conjuncts)
    summary: Tuple[Term, ...] = query.summary_row
    trace = ChaseTrace()
    steps = 0

    while steps < max_steps:
        found = find_applicable_fd(conjuncts, fds, schema)
        if found is None:
            break
        fd, i, j = found
        relation = schema.relation(fd.relation)
        rhs_position = fd.rhs_position(relation)
        first_symbol = conjuncts[i].term_at(rhs_position)
        second_symbol = conjuncts[j].term_at(rhs_position)
        steps += 1
        try:
            survivor, loser = resolve_merge(first_symbol, second_symbol)
        except ConstantClash:
            trace.record(FDApplication(
                dependency=fd,
                first_conjunct=conjuncts[i].label,
                second_conjunct=conjuncts[j].label,
                merged_away=None,
                survivor=None,
                halted=True,
            ))
            return FDChaseResult(query=None, failed=True, trace=trace, steps=steps)
        trace.record(FDApplication(
            dependency=fd,
            first_conjunct=conjuncts[i].label,
            second_conjunct=conjuncts[j].label,
            merged_away=loser,
            survivor=survivor,
        ))
        substitution = Substitution({loser: survivor}) if isinstance(loser, Variable) else Substitution()
        conjuncts = [c.substitute(substitution) for c in conjuncts]
        summary = substitution.apply_tuple(summary)
        conjuncts = _dedupe(conjuncts)
    else:
        raise ChaseError(f"FD chase did not terminate within {max_steps} steps")

    chased = ConjunctiveQuery(
        input_schema=schema,
        conjuncts=conjuncts,
        summary_row=summary,
        output_attributes=query.output_attributes,
        name=f"chaseF({query.name})",
    )
    return FDChaseResult(query=chased, failed=False, trace=trace, steps=steps)


def fd_chase_query(query: ConjunctiveQuery,
                   dependencies: Union[DependencySet, Sequence[FunctionalDependency]]
                   ) -> Optional[ConjunctiveQuery]:
    """Convenience wrapper returning just the chased query (``None`` on failure)."""
    return fd_only_chase(query, dependencies).query


def _dedupe(conjuncts: Sequence[Conjunct]) -> List[Conjunct]:
    """Drop conjuncts that became identical atoms after a merge.

    The earlier occurrence (lexicographically first label order is the
    list order here) is kept, matching the paper's coalescing of identical
    conjuncts.
    """
    seen: set = set()
    result: List[Conjunct] = []
    for conjunct in conjuncts:
        key = (conjunct.relation, conjunct.terms)
        if key in seen:
            continue
        seen.add(key)
        result.append(conjunct)
    return result
