"""The columnar chase engine: an interned-term core (``engine="columnar"``).

The object-graph engines chase over :class:`~repro.terms.term.Term`
objects held on :class:`~repro.queries.conjunct.Conjunct` tuples; every
index key hashes term objects (and therefore strings), every FD/EGD merge
rewrites whole conjuncts, and every fresh NDV formats its provenance name
eagerly.  This engine keeps the *policy* — minimum level,
lexicographically first conjunct, lexicographically first dependency,
certified node for node against the indexed engine — but moves the hot
core onto dense integers:

* a process-local **term interner** maps constants, variables, and
  chase-created NDVs to dense int ids; NDVs are interned *lazily* (a
  serial plus its provenance), so their ``Term`` objects and name strings
  are only materialised at the result boundary or for the trace;
* relations are **flat columns** of term ids, append-only, with one
  inverted posting index per column mapping a canonical id to the live
  rows holding it — a merge probes exactly the rows containing the
  merged-away id instead of walking a term-occurrence map of objects;
* EGD/FD merges go through a **union-find** with path compression: the
  loser id is unioned into the survivor and affected atom keys are
  re-canonicalised from the raw (never rewritten) column cells, replacing
  the indexed engine's per-node conjunct-substitution cascade;
* the FD fixpoint's delta is **semi-naive over integer ranges**: a
  per-relation row watermark marks everything appended since the last
  fixpoint dirty, plus the ids re-canonicalised by merges — cursors over
  append-only column segments instead of an object dirty-set;
* IND applications and *fast* TGDs (single trivial body atom, single
  head atom — every IND-expressible rule qualifies) share one pending
  heap keyed ``(level, node id, kind, dependency index)``, realising the
  engines' combined IND-vs-TGD competition
  ``(level, node-id tuple, kind, index)`` without the general trigger
  machinery.  General TGDs and all EGDs run through the shared
  :class:`SemiNaiveTriggerIndex` over a columnar
  :class:`TriggerStorage` whose values are interned ids.

The engine materialises real :class:`~repro.chase.chase_graph.ChaseNode`
objects — identical ids, levels, labels, terms, arcs, and trace events —
only when building the :class:`ChaseResult`, so the differential harness
certifies it with the same node-for-node comparison it applies to the
other engines, and everything downstream (containment, solver, service,
fleet, observability) picks it up from the registry with no changes
beyond the engine name.  It does not batch commuting TGD triggers (heap
re-selection is cheap here), so like the legacy engine its batching
counters stay at zero.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.chase.chase_graph import ChaseGraph
from repro.chase.embedded_triggers import (
    EGDTrigger,
    SemiNaiveTriggerIndex,
    TGDTrigger,
    TriggerStorage,
)
from repro.chase.engine import (
    ChaseConfig,
    ChaseResult,
    ChaseStatistics,
    ChaseVariant,
    run_with_instrumentation,
)
from repro.chase.events import (
    ChaseTrace,
    EGDApplication,
    FDApplication,
    INDApplication,
    TGDApplication,
)
from repro.chase.fd_chase import ConstantClash
from repro.dependencies.dependency_set import DependencySet
from repro.dependencies.functional import FunctionalDependency
from repro.queries.conjunct import Conjunct
from repro.queries.conjunctive_query import ConjunctiveQuery
from repro.relational.schema import DatabaseSchema
from repro.terms.term import NonDistinguishedVariable, Term, Variable


class _ColNode:
    """A chase node as the columnar core sees it: scalars, no Conjunct.

    Duck-types the slice of :class:`ChaseNode` the shared trigger
    machinery reads (``node_id``, ``relation``, ``level``, ``alive``) —
    terms travel separately, through the columnar :class:`TriggerStorage`.
    ``row`` is the node's row in its relation's column store; ``parent``
    is the *current* ordinary parent (merges redirect it), while the
    creation-time arc stays in the engine's arc arrays.
    """

    __slots__ = ("node_id", "relation", "level", "alive", "parent", "row",
                 "label")

    def __init__(self, node_id: int, relation: str, level: int,
                 parent: Optional[int], row: int):
        self.node_id = node_id
        self.relation = relation
        self.level = level
        self.alive = True
        self.parent = parent
        self.row = row
        # ChaseGraph.new_node relabels every conjunct to "n<id>", so the
        # label is a pure function of the id; formatted once — it is read
        # on every application the node sources.
        self.label = f"n{node_id}"


class _RelationStore:
    """One relation's facts as flat columns of term ids.

    ``columns[i][row]`` is the *raw* id written at insert time and is
    never rewritten — readers re-canonicalise through the union-find.
    ``postings[i]`` maps a canonical id to the live rows whose column
    ``i`` currently canonicalises to it; ``row_nodes[row]`` is the owning
    node id (ascending — rows are appended in creation order).
    """

    __slots__ = ("relation", "arity", "columns", "row_nodes", "postings")

    def __init__(self, relation: str, arity: int):
        self.relation = relation
        self.arity = arity
        self.columns: List[List[int]] = [[] for _ in range(arity)]
        self.row_nodes: List[int] = []
        self.postings: List[Dict[int, Set[int]]] = [{} for _ in range(arity)]


class _ColFdSpec:
    """An FD with resolved positions and an id-keyed determinant index."""

    __slots__ = ("fd", "order", "lhs_positions", "rhs_position", "buckets")

    def __init__(self, fd: FunctionalDependency, order: int,
                 lhs_positions: Tuple[int, ...], rhs_position: int):
        self.fd = fd
        self.order = order
        self.lhs_positions = lhs_positions
        self.rhs_position = rhs_position
        self.buckets: Dict[Tuple[int, ...], Set[int]] = {}


class _FastTgd:
    """A TGD the pending heap can carry: one trivial body atom (distinct
    variables, no constants) and one head atom.  Every IND-expressible
    rule qualifies, so mixed FD/IND workloads never touch the general
    trigger machinery at all.

    The head-satisfaction index mirrors the R-chase IND buckets: facts of
    the head relation meeting the head's constant and repeated-existential
    constraints are bucketed by their values at the frontier positions; a
    body fact's requirement is satisfied iff the bucket at its projected
    frontier values is non-empty.
    """

    __slots__ = ("global_index", "tgd", "body_relation", "head_relation",
                 "frontier_eqs", "const_eqs", "exist_groups",
                 "body_projection", "n_frontier", "head_template", "buckets")

    def __init__(self, global_index, tgd, body_relation, head_relation,
                 frontier_eqs, const_eqs, exist_groups, body_projection,
                 head_template):
        self.global_index = global_index
        self.tgd = tgd
        self.body_relation = body_relation
        self.head_relation = head_relation
        self.frontier_eqs = frontier_eqs        # (head position, frontier slot)
        self.const_eqs = const_eqs              # (head position, interned id)
        self.exist_groups = exist_groups        # repeated-existential positions
        self.body_projection = body_projection  # body position per frontier slot
        self.n_frontier = len(body_projection)
        self.head_template = head_template      # per head position, see builder
        #: Node ids per frontier-value key; a bare min id (not a set) when
        #: the engine runs with the flat satisfaction index.
        self.buckets: Dict[Tuple[int, ...], "int | Set[int]"] = {}

    def head_key(self, key: Tuple[int, ...]) -> Optional[Tuple[int, ...]]:
        """The frontier-value bucket key of a head-relation fact, or None
        when the fact cannot satisfy the head under any frontier values."""
        for position, constant in self.const_eqs:
            if key[position] != constant:
                return None
        for group in self.exist_groups:
            first = key[group[0]]
            for position in group:
                if key[position] != first:
                    return None
        slots: List[Optional[int]] = [None] * self.n_frontier
        for position, slot in self.frontier_eqs:
            value = key[position]
            held = slots[slot]
            if held is None:
                slots[slot] = value
            elif held != value:
                return None
        return tuple(slots)


class _ColumnarStorage(TriggerStorage):
    """Trigger storage over interned ids: a node's terms are its atom key."""

    __slots__ = ("_atom_keys", "_intern_term")

    def __init__(self, atom_keys: List[Tuple[int, ...]], intern):
        self._atom_keys = atom_keys
        self._intern_term = intern

    def terms_of(self, node) -> Sequence[int]:  # type: ignore[override]
        return self._atom_keys[node.node_id]

    def encode(self, term: Term) -> int:  # type: ignore[override]
        return self._intern_term(term)


class ColumnarChaseEngine:
    """Chase one query over interned integer ids (see the module docstring).

    Implements the identical deterministic policy as the other engines —
    the differential harness certifies all three node for node — while
    keeping Terms, Conjuncts, and NDV name strings off the hot path.
    """

    engine_name = "columnar"

    def __init__(self, query: ConjunctiveQuery, dependencies: DependencySet,
                 config: Optional[ChaseConfig] = None):
        dependencies.validate(query.input_schema)
        self._query = query
        self._schema: DatabaseSchema = query.input_schema
        self._dependencies = dependencies
        self._fds = dependencies.functional_dependencies()
        self._inds = dependencies.inclusion_dependencies()
        self._tgds = dependencies.tgds()
        self._egds = dependencies.egds()
        self._config = config or ChaseConfig()
        self._trace = ChaseTrace()
        self._statistics = ChaseStatistics()
        self._failed = False
        self._truncated = False
        self._failure_dependency: Optional[str] = None
        self._failure_live_conjuncts = 0

        # -- term interner + union-find (parallel arrays indexed by id) --
        self._intern_ids: Dict[Term, int] = {}
        self._terms: List[Optional[Term]] = []    # None while an NDV is lazy
        self._is_const: List[bool] = []
        self._sort_keys: List[Optional[tuple]] = []  # merge order; None = constant
        self._lazy: Dict[int, tuple] = {}  # id -> (serial, source, attr, level)
        self._next_serial = 0
        self._uf_parent: List[int] = []

        # -- columnar node state -----------------------------------------
        self._stores: Dict[str, _RelationStore] = {}
        self._views: List[_ColNode] = []
        self._atom_keys: List[Tuple[int, ...]] = []  # current canonical keys
        self._arc_parent: List[Optional[int]] = []   # creation-time arcs
        self._arc_via: List[object] = []
        self._children: Dict[int, List[int]] = {}    # keyed by arc source
        self._live_count = 0
        self._summary_ids: List[int] = []
        self._cross_arcs: List[Tuple[int, int, object]] = []
        self._result_graph: Optional[ChaseGraph] = None

        # -- dependency metadata (mirrors the indexed engine's) ----------
        self._ind_positions: Dict[int, Tuple[Tuple[int, ...], Tuple[int, ...]]] = {}
        self._inds_by_source: Dict[str, List[int]] = {}
        self._inds_by_target: Dict[str, List[int]] = {}
        #: Per IND: (target relation, per-position source *key* position
        #: or None for a fresh NDV, per-position attribute name) — the
        #: new conjunct's recipe, resolved once.
        self._ind_templates: Dict[int, Tuple[str, Tuple[Optional[int], ...],
                                             Tuple[str, ...]]] = {}
        for index, ind in enumerate(self._inds):
            lhs = ind.lhs_positions(self._schema)
            rhs = ind.rhs_positions(self._schema)
            self._ind_positions[index] = (lhs, rhs)
            self._inds_by_source.setdefault(ind.lhs_relation, []).append(index)
            self._inds_by_target.setdefault(ind.rhs_relation, []).append(index)
            target = self._schema.relation(ind.rhs_relation)
            # Per target position: the *source key* position to copy from
            # (lhs and rhs positions pair up by list index), or None for
            # a fresh NDV.
            slots = tuple(lhs[rhs.index(position)] if position in rhs
                          else None
                          for position in range(target.arity))
            attrs = tuple(target.attribute_name_at(position)
                          for position in range(target.arity))
            self._ind_templates[index] = (ind.rhs_relation, slots, attrs)
        #: Per IND, its satisfaction index: rhs-value tuple → holder node
        #: ids (a set when merges can rewrite keys, the bare minimum id
        #: otherwise — see ``_flat_satisfied``).
        self._ind_satisfied: List[Dict[Tuple[int, ...], "int | Set[int]"]] = [
            {} for _ in self._inds]
        #: Per target relation, the (satisfaction dict, rhs positions)
        #: pairs its facts must be entered under — the per-fact indexing
        #: loop resolved once, dicts bound directly.
        self._ind_target_plans: Dict[
            str, Tuple[Tuple[Dict, Tuple[int, ...]], ...]] = {
            relation: tuple((self._ind_satisfied[index],
                             self._ind_positions[index][1])
                            for index in indexes)
            for relation, indexes in self._inds_by_target.items()}
        self._fd_specs_by_relation: Dict[str, List[_ColFdSpec]] = {}
        for fd in self._fds:
            relation = self._schema.relation(fd.relation)
            specs = self._fd_specs_by_relation.setdefault(fd.relation, [])
            specs.append(_ColFdSpec(fd, len(specs),
                                    fd.lhs_positions(relation),
                                    fd.rhs_position(relation)))

        # -- TGD split: heap-ridden fast rules vs trigger-index slow ones
        self._fast_by_global: Dict[int, _FastTgd] = {}
        self._fast_by_body_rel: Dict[str, List[int]] = {}
        self._fast_by_head_rel: Dict[str, List[_FastTgd]] = {}
        self._slow_tgds: List = []
        self._slow_global_index: List[int] = []
        for global_index, tgd in enumerate(self._tgds):
            plan = SemiNaiveTriggerIndex._rule_plan(tgd)
            if plan[5] and plan[2] is not None:
                fast = self._build_fast(global_index, tgd, plan)
                self._fast_by_global[global_index] = fast
                self._fast_by_body_rel.setdefault(
                    fast.body_relation, []).append(global_index)
                self._fast_by_head_rel.setdefault(
                    fast.head_relation, []).append(fast)
            else:
                self._slow_global_index.append(global_index)
                self._slow_tgds.append(tgd)

        #: Per source relation, the pending-heap (kind, dependency index)
        #: entries a new fact of that relation must enqueue — INDs first
        #: (kind 0), then fast TGDs (kind 1).
        self._pending_plans: Dict[str, Tuple[Tuple[int, int], ...]] = {}
        for relation in set(self._inds_by_source) | set(self._fast_by_body_rel):
            self._pending_plans[relation] = (
                tuple((0, index)
                      for index in self._inds_by_source.get(relation, ()))
                + tuple((1, global_index)
                        for global_index in
                        self._fast_by_body_rel.get(relation, ())))

        #: With no FDs and no EGDs, no symbol merge can ever fire, so the
        #: per-column postings (which exist purely to serve merges) and
        #: the FD delta bookkeeping are skipped entirely.
        self._can_merge = bool(self._fds or self._egds)
        #: Postings are built lazily at the *first* merge (when every cell
        #: is still canonical) and maintained incrementally afterwards, so
        #: runs whose FDs never fire pay nothing for the inverted index.
        self._postings_built = False
        #: The atom-key index only ever gets probed by duplicate checks
        #: (INDs/TGDs that mint no fresh NDV, slow multi-atom TGDs) and by
        #: the post-merge conjunct coalescing; when Σ admits none of
        #: those, skip maintaining it.
        self._needs_atom_index = (
            self._can_merge
            or bool(self._slow_tgds)
            or any(None not in slots
                   for _, slots, _ in self._ind_templates.values())
            or any(all(entry[0] != 2 for entry in fast.head_template)
                   for fast in self._fast_by_global.values()))

        # -- work queues and persistent indexes --------------------------
        #: (level, node id, kind, dependency index); kind 0 is an IND with
        #: its IND index, kind 1 a fast TGD with its *global* TGD index —
        #: heap order therefore IS the combined selection priority
        #: ``(level, (node id,), kind, index)``.
        self._pending: List[Tuple[int, int, int, int]] = []
        self._applied: Set[Tuple[int, int]] = set()       # O-chase (node, IND)
        self._applied_fast: Set[Tuple[int, int]] = set()  # O-chase (TGD, node)
        self._applied_tgds: Set[Tuple[int, Tuple[int, ...]]] = set()  # slow
        #: Satisfaction entries (``_ind_satisfied``, ``_FastTgd.buckets``)
        #: hold *sets* of node ids when merges can rewrite keys (removal
        #: needs the membership), but collapse to the single minimum id —
        #: first writer wins, ids are monotone — when Σ has no FDs/EGDs
        #: and keys are immortal.
        self._flat_satisfied = not self._can_merge
        self._atom_nodes: Dict[Tuple[str, Tuple[int, ...]], Set[int]] = {}
        self._duplicate_keys: Set[Tuple[str, Tuple[int, ...]]] = set()
        #: Semi-naive FD delta: per-FD-relation row watermark (rows at or
        #: past it were appended since the last fixpoint) plus the nodes
        #: re-canonicalised by merges — the indexed engine's dirty set, as
        #: integer cursors over the append-only column segments.
        self._fd_watermarks: Dict[str, int] = {
            relation: 0 for relation in self._fd_specs_by_relation}
        self._fd_rewritten: Dict[int, None] = {}
        #: True iff some watermark may trail its segment end — the O(1)
        #: "is the delta empty" test that lets the (very frequent)
        #: nothing-new fixpoint calls return without scanning cursors.
        self._fd_dirty = False
        self._trigger_index: Optional[SemiNaiveTriggerIndex] = (
            SemiNaiveTriggerIndex(
                self._slow_tgds, self._egds, self._live_views,
                self._views_getitem, self._statistics,
                oblivious=self._config.variant is ChaseVariant.OBLIVIOUS,
                storage=_ColumnarStorage(self._atom_keys, self._intern))
            if (self._slow_tgds or self._egds) else None)

    # -- construction helpers --------------------------------------------------

    def _build_fast(self, global_index: int, tgd, plan) -> _FastTgd:
        frontier = plan[3]
        head = plan[2]
        frontier_eqs, raw_const_eqs, exist_groups = plan[6]
        const_eqs = tuple((position, self._intern(constant))
                          for position, constant in raw_const_eqs)
        body_atom = tgd.body[0]
        body_pos = {variable: position
                    for position, variable in enumerate(body_atom.terms)}
        body_projection = tuple(body_pos[variable] for variable in frontier)
        target = self._schema.relation(head.relation)
        #: (0, id, -): interned constant; (1, body position, -): copy the
        #: bound value; (2, variable, attribute): fresh NDV shared across
        #: the variable's occurrences.
        template: List[tuple] = []
        for position, term in enumerate(head.terms):
            if not isinstance(term, Variable):
                template.append((0, self._intern(term), None))
            elif term in body_pos:
                template.append((1, body_pos[term], None))
            else:
                template.append((2, term, target.attribute_name_at(position)))
        return _FastTgd(global_index, tgd, body_atom.relation, head.relation,
                        frontier_eqs, const_eqs, exist_groups,
                        body_projection, tuple(template))

    def _views_getitem(self, node_id: int) -> _ColNode:
        return self._views[node_id]

    def _live_views(self, relation: str) -> List[_ColNode]:
        """Live nodes of one relation in id order (trigger-search backing)."""
        store = self._stores.get(relation)
        if store is None:
            return []
        views = self._views
        return [views[node_id] for node_id in store.row_nodes
                if views[node_id].alive]

    def _dependency_str(self, dependency) -> str:
        # Memoised on the (frozen, immutable) dependency itself so the
        # rendering survives engine rebuilds over the same Σ.
        rendered = dependency.__dict__.get("_rendered")
        if rendered is None:
            rendered = str(dependency)
            object.__setattr__(dependency, "_rendered", rendered)
        return rendered

    # -- interner and union-find -----------------------------------------------

    def _intern(self, term: Term) -> int:
        """The dense id of a pre-existing term (constant, DV, query NDV)."""
        tid = self._intern_ids.get(term)
        if tid is None:
            tid = len(self._terms)
            self._intern_ids[term] = tid
            self._terms.append(term)
            if isinstance(term, Variable):
                self._is_const.append(False)
                self._sort_keys.append(term.sort_key())
            else:
                self._is_const.append(True)
                self._sort_keys.append(None)
            self._uf_parent.append(tid)
        return tid

    def _fresh_id(self, source_label: str, attribute: str, level: int) -> int:
        """A lazily-named fresh NDV: consume a serial, defer the Term.

        Serials are consumed in exactly the order the object engines'
        fresh factory consumes them (including on applications that then
        turn out redundant), so materialised names agree character for
        character.
        """
        serial = self._next_serial
        self._next_serial += 1
        tid = len(self._terms)
        self._terms.append(None)
        self._is_const.append(False)
        # Chase-created NDVs order by (rank 2, serial) — Variable.sort_key.
        self._sort_keys.append((2, serial))
        self._uf_parent.append(tid)
        self._lazy[tid] = (serial, source_label, attribute, level)
        return tid

    def _term(self, tid: int) -> Term:
        """Materialise the Term behind an id (the result-boundary step)."""
        term = self._terms[tid]
        if term is None:
            serial, source, attribute, level = self._lazy.pop(tid)
            term = NonDistinguishedVariable(
                name=f"n{serial}@{source}.{attribute}#L{level}",
                serial=(serial,), created=True)
            self._terms[tid] = term
        return term

    def _find(self, tid: int) -> int:
        """Canonical id under the union-find, with path compression."""
        self._statistics.union_find_finds += 1
        parent = self._uf_parent
        root = tid
        while parent[root] != root:
            root = parent[root]
        while parent[tid] != root:
            parent[tid], tid = root, parent[tid]
        return root

    def _resolve_merge_ids(self, first: int, second: int) -> Tuple[int, int]:
        """(survivor, loser) under the FD chase rule's merge policy, on ids.

        Mirrors :func:`repro.chase.fd_chase.resolve_merge`: two distinct
        constants clash, a constant beats a variable, and two variables
        order by ``sort_key`` (DVs before query NDVs before created NDVs).
        """
        if first == second:
            return first, second
        is_const = self._is_const
        if is_const[first]:
            if is_const[second]:
                raise ConstantClash(
                    f"cannot merge distinct constants {self._term(first)} "
                    f"and {self._term(second)}")
            return first, second
        if is_const[second]:
            return second, first
        sort_keys = self._sort_keys
        if sort_keys[first] <= sort_keys[second]:
            return first, second
        return second, first

    # -- public entry point ----------------------------------------------------

    @property
    def graph(self) -> ChaseGraph:
        """The chase graph, materialised on demand (``ChaseEngineProtocol``)."""
        if self._result_graph is not None:
            return self._result_graph
        return self._materialize_graph()

    @property
    def statistics(self) -> ChaseStatistics:
        """Work counters accumulated so far (the ``ChaseEngineProtocol`` surface)."""
        return self._statistics

    def run(self) -> ChaseResult:
        """Execute the chase until saturation, failure, or a budget limit."""
        return run_with_instrumentation(self)

    def _run(self) -> ChaseResult:
        self._summary_ids = [self._intern(term)
                             for term in self._query.summary_row]
        for conjunct in self._query.conjuncts:
            key = tuple(self._intern(term) for term in conjunct.terms)
            self._new_fact(conjunct.relation, key, level=0, parent=None,
                           via=None)

        steps_budget = self._config.max_steps
        hit_conjunct_budget = False
        while True:
            self._apply_equalities_to_fixpoint()
            if self._failed:
                break
            if (steps_budget is not None
                    and self._statistics.total_steps >= steps_budget):
                self._truncated = True
                break
            application = self._next_expansion()
            if application is None:
                break
            if self._live_count >= self._config.max_conjuncts:
                self._truncated = True
                hit_conjunct_budget = True
                break
            kind, payload = application
            if kind == "ind":
                self._apply_ind(*payload)
            elif kind == "fast":
                self._apply_fast_tgd(*payload)
            else:
                self._apply_tgd(payload)

        if self._config.variant is ChaseVariant.RESTRICTED and not self._failed:
            self._record_cross_arcs()

        self._statistics.interned_terms = len(self._terms)
        self._result_graph = self._materialize_graph()
        summary = tuple(self._term(self._find(tid))
                        for tid in self._summary_ids)
        saturated = not self._failed and not self._truncated
        return ChaseResult(
            query=self._query,
            variant=self._config.variant,
            graph=self._result_graph,
            summary_row=summary,
            failed=self._failed,
            saturated=saturated,
            truncated=self._truncated,
            statistics=self._statistics,
            trace=self._trace,
            hit_conjunct_budget=hit_conjunct_budget,
            engine=self.engine_name,
            failure_dependency=self._failure_dependency,
            failure_live_conjuncts=self._failure_live_conjuncts,
        )

    # -- fact creation and index maintenance -----------------------------------

    def _new_fact(self, relation: str, key: Tuple[int, ...], level: int,
                  parent: Optional[int], via) -> _ColNode:
        """Append a fact to its column store and enter it everywhere."""
        node_id = len(self._views)
        store = self._stores.get(relation)
        if store is None:
            store = _RelationStore(relation,
                                   self._schema.relation(relation).arity)
            self._stores[relation] = store
        row = len(store.row_nodes)
        store.row_nodes.append(node_id)
        columns = store.columns
        if self._postings_built:
            # Postings exist to answer "which rows hold this id" during a
            # merge; until the first merge actually fires they are not
            # built at all (see _build_postings), then kept incremental.
            postings = store.postings
            for position, value in enumerate(key):
                columns[position].append(value)
                bucket = postings[position].get(value)
                if bucket is None:
                    postings[position][value] = {row}
                else:
                    bucket.add(row)
        else:
            for position, value in enumerate(key):
                columns[position].append(value)
        view = _ColNode(node_id, relation, level, parent, row)
        self._views.append(view)
        self._atom_keys.append(key)
        if relation in self._fd_watermarks:
            self._fd_dirty = True
        self._arc_parent.append(parent)
        self._arc_via.append(via)
        if parent is not None:
            self._children.setdefault(parent, []).append(node_id)
        self._live_count += 1
        self._index_key(view, key)
        pending = self._pending
        push = heapq.heappush
        for kind, dep_index in self._pending_plans.get(relation, ()):
            push(pending, (level, node_id, kind, dep_index))
        if self._trigger_index is not None:
            self._trigger_index.touch(view)
        return view

    def _index_key(self, view: _ColNode, key: Tuple[int, ...]) -> None:
        """Enter a node's current canonical key into the value indexes."""
        node_id = view.node_id
        relation = view.relation
        if self._needs_atom_index:
            atoms = self._atom_nodes.setdefault((relation, key), set())
            atoms.add(node_id)
            if len(atoms) > 1:
                self._duplicate_keys.add((relation, key))
        for spec in self._fd_specs_by_relation.get(relation, ()):
            spec.buckets.setdefault(
                tuple(key[position] for position in spec.lhs_positions),
                set()).add(node_id)
        targets = self._ind_target_plans.get(relation)
        flat = self._flat_satisfied
        if targets is not None:
            self._statistics.triggers_examined += len(targets)
            if flat:
                for satisfied, rhs_positions in targets:
                    satisfied.setdefault(
                        tuple([key[position] for position in rhs_positions]),
                        node_id)
            else:
                for satisfied, rhs_positions in targets:
                    vkey = tuple(
                        [key[position] for position in rhs_positions])
                    satisfied.setdefault(vkey, set()).add(node_id)
        for fast in self._fast_by_head_rel.get(relation, ()):
            hkey = fast.head_key(key)
            if hkey is not None:
                if flat:
                    fast.buckets.setdefault(hkey, node_id)
                else:
                    fast.buckets.setdefault(hkey, set()).add(node_id)

    def _unindex_key(self, view: _ColNode, key: Tuple[int, ...]) -> None:
        """Remove a node's current canonical key from the value indexes."""
        node_id = view.node_id
        relation = view.relation
        akey = (relation, key)
        atoms = self._atom_nodes.get(akey)
        if atoms is not None:
            atoms.discard(node_id)
            if len(atoms) < 2:
                self._duplicate_keys.discard(akey)
            if not atoms:
                del self._atom_nodes[akey]
        for spec in self._fd_specs_by_relation.get(relation, ()):
            values = tuple(key[position] for position in spec.lhs_positions)
            bucket = spec.buckets.get(values)
            if bucket is not None:
                bucket.discard(node_id)
                if not bucket:
                    del spec.buckets[values]
        for satisfied, rhs_positions in self._ind_target_plans.get(relation, ()):
            vkey = tuple(key[position] for position in rhs_positions)
            bucket = satisfied.get(vkey)
            if bucket is not None:
                bucket.discard(node_id)
                if not bucket:
                    del satisfied[vkey]
        for fast in self._fast_by_head_rel.get(relation, ()):
            hkey = fast.head_key(key)
            if hkey is not None:
                bucket = fast.buckets.get(hkey)
                if bucket is not None:
                    bucket.discard(node_id)
                    if not bucket:
                        del fast.buckets[hkey]

    def _first_atom_node(self, relation: str,
                         key: Tuple[int, ...]) -> Optional[int]:
        """The earliest-created live node holding exactly this atom."""
        bucket = self._atom_nodes.get((relation, key))
        if not bucket:
            return None
        return min(bucket)

    # -- FD/EGD phase ----------------------------------------------------------

    def _apply_equalities_to_fixpoint(self) -> None:
        """Step 1 of the policy, generalised: FDs to fixpoint, then EGDs."""
        self._apply_fds_to_fixpoint()
        while self._egds and not self._failed:
            trigger = self._trigger_index.next_egd_trigger()
            if trigger is None:
                return
            self._apply_egd(trigger)
            if not self._failed:
                self._apply_fds_to_fixpoint()

    def _apply_fds_to_fixpoint(self) -> None:
        """Apply the FD chase rule until no FD is applicable."""
        if not self._fds:
            return
        if not self._fd_dirty and not self._fd_rewritten:
            # Empty delta: no row appended past a watermark, no node
            # rewritten by a merge — nothing can have become applicable.
            return
        while not self._failed:
            found = self._find_applicable_fd()
            if found is None:
                self._clear_fd_delta()
                return
            spec, first_id, second_id = found
            self._apply_fd(spec, first_id, second_id)

    def _clear_fd_delta(self) -> None:
        """Advance every watermark to its segment end; forget the rewrites."""
        self._fd_dirty = False
        if self._fd_rewritten:
            self._fd_rewritten.clear()
        stores = self._stores
        watermarks = self._fd_watermarks
        for relation in watermarks:
            store = stores.get(relation)
            if store is not None:
                watermarks[relation] = len(store.row_nodes)

    def _iter_fd_dirty(self):
        """Node ids possibly newly FD-applicable: the delta row range of
        every FD-watched relation, then the merge-rewritten nodes."""
        for relation, watermark in self._fd_watermarks.items():
            store = self._stores.get(relation)
            if store is None:
                continue
            row_nodes = store.row_nodes
            for row in range(watermark, len(row_nodes)):
                yield row_nodes[row]
        yield from self._fd_rewritten

    def _find_applicable_fd(self):
        """Lexicographically first applicable (FD, pair of conjuncts).

        Probes only the delta — rows appended past the watermarks plus
        nodes rewritten by merges — against the determinant buckets: the
        indexed engine's semi-naive FD discovery over integer cursors.
        Taking the global minimum over all candidates makes probe order
        (and the occasional double probe of a node that is both new and
        rewritten) irrelevant to the choice.
        """
        best = None
        views = self._views
        atom_keys = self._atom_keys
        statistics = self._statistics
        specs_by_relation = self._fd_specs_by_relation
        for node_id in self._iter_fd_dirty():
            view = views[node_id]
            if not view.alive:
                continue
            specs = specs_by_relation.get(view.relation)
            if not specs:
                continue
            key = atom_keys[node_id]
            for spec in specs:
                values = tuple(key[position] for position in spec.lhs_positions)
                bucket = spec.buckets.get(values)
                if bucket is None or len(bucket) < 2:
                    continue
                statistics.index_hits += 1
                own_rhs = key[spec.rhs_position]
                for other_id in bucket:
                    if other_id == node_id:
                        continue
                    statistics.triggers_examined += 1
                    if atom_keys[other_id][spec.rhs_position] == own_rhs:
                        continue
                    first_id, second_id = ((node_id, other_id)
                                           if node_id < other_id
                                           else (other_id, node_id))
                    candidate = (first_id, second_id, spec.order, spec)
                    if best is None or candidate[:3] < best[:3]:
                        best = candidate
        if best is None:
            return None
        return best[3], best[0], best[1]

    def _apply_fd(self, spec: _ColFdSpec, first_id: int,
                  second_id: int) -> None:
        fd = spec.fd
        atom_keys = self._atom_keys
        first_rhs = atom_keys[first_id][spec.rhs_position]
        second_rhs = atom_keys[second_id][spec.rhs_position]
        self._statistics.fd_steps += 1
        record = self._config.record_trace
        views = self._views
        try:
            survivor, loser = self._resolve_merge_ids(first_rhs, second_rhs)
        except ConstantClash:
            if record:
                self._trace.record(FDApplication(
                    dependency=fd, first_conjunct=views[first_id].label,
                    second_conjunct=views[second_id].label,
                    merged_away=None, survivor=None, halted=True))
            self._halt_on_clash(str(fd))
            return
        if record:
            self._trace.record(FDApplication(
                dependency=fd, first_conjunct=views[first_id].label,
                second_conjunct=views[second_id].label,
                merged_away=self._term(loser), survivor=self._term(survivor)))
        self._merge_ids(survivor, loser)
        self._merge_identical_conjuncts()

    def _apply_egd(self, trigger: EGDTrigger) -> None:
        """The EGD chase rule: merge the two equated symbols (FD semantics)."""
        self._statistics.egd_steps += 1
        labels = tuple(node.label for node in trigger.nodes)
        record = self._config.record_trace
        try:
            survivor, loser = self._resolve_merge_ids(trigger.first,
                                                      trigger.second)
        except ConstantClash:
            if record:
                self._trace.record(EGDApplication(
                    dependency=trigger.egd, conjuncts=labels,
                    merged_away=None, survivor=None, halted=True))
            self._halt_on_clash(str(trigger.egd))
            return
        if record:
            self._trace.record(EGDApplication(
                dependency=trigger.egd, conjuncts=labels,
                merged_away=self._term(loser), survivor=self._term(survivor)))
        self._merge_ids(survivor, loser)
        self._merge_identical_conjuncts()

    def _build_postings(self) -> None:
        """Populate every store's inverted postings from its raw cells.

        Runs exactly once, at the first merge.  No union has happened yet
        (unions only occur inside :meth:`_merge_ids`, after this), so the
        raw cells *are* the canonical ids and a plain scan suffices; from
        here on :meth:`_new_fact` keeps the postings incremental.
        """
        self._postings_built = True
        statistics = self._statistics
        views = self._views
        for store in self._stores.values():
            postings = store.postings
            statistics.column_probes += len(postings)
            for row, node_id in enumerate(store.row_nodes):
                if not views[node_id].alive:
                    continue
                for position, column in enumerate(store.columns):
                    value = column[row]
                    bucket = postings[position].get(value)
                    if bucket is None:
                        postings[position][value] = {row}
                    else:
                        bucket.add(row)

    def _merge_ids(self, survivor: int, loser: int) -> None:
        """Union ``loser`` into ``survivor`` and re-canonicalise holders.

        The postings say exactly which live rows hold the loser in which
        column; their nodes get a recomputed atom key (raw cells pushed
        through the union-find, which path-compresses earlier merge
        chains as a side effect) and are re-entered into every value
        index.  The raw column cells themselves are never rewritten.
        """
        if loser == survivor or self._is_const[loser]:
            return
        if not self._postings_built:
            self._build_postings()
        statistics = self._statistics
        statistics.union_find_unions += 1
        self._uf_parent[loser] = survivor
        affected: Set[int] = set()
        for store in self._stores.values():
            row_nodes = store.row_nodes
            for col_postings in store.postings:
                statistics.column_probes += 1
                rows = col_postings.pop(loser, None)
                if not rows:
                    continue
                target = col_postings.get(survivor)
                if target is None:
                    col_postings[survivor] = rows
                else:
                    target |= rows
                for row in rows:
                    affected.add(row_nodes[row])
        views = self._views
        atom_keys = self._atom_keys
        track_fds = bool(self._fds)
        find = self._find
        trigger_index = self._trigger_index
        for node_id in sorted(affected):
            # Postings track live rows only, so every holder is alive.
            view = views[node_id]
            self._unindex_key(view, atom_keys[node_id])
            store = self._stores[view.relation]
            row = view.row
            new_key = tuple(find(column[row]) for column in store.columns)
            atom_keys[node_id] = new_key
            self._index_key(view, new_key)
            if track_fds:
                self._fd_rewritten[node_id] = None
            if trigger_index is not None:
                trigger_index.touch(view)

    def _merge_identical_conjuncts(self) -> None:
        """Coalesce nodes whose keys collided after a merge (levelling rule)."""
        statistics = self._statistics
        views = self._views
        while self._duplicate_keys:
            key = self._duplicate_keys.pop()
            bucket = self._atom_nodes.get(key)
            if bucket is None or len(bucket) < 2:
                continue
            statistics.index_hits += 1
            ids = sorted(bucket)
            survivor = views[ids[0]]
            for retired_id in ids[1:]:
                retired = views[retired_id]
                if retired.level < survivor.level:
                    # The levelling rule lowers the survivor; its pending
                    # entries are keyed at the stale level, so push fresh
                    # ones (the stale entries are discarded on pop).
                    survivor.level = retired.level
                    pending = self._pending
                    for kind, dep_index in self._pending_plans.get(
                            survivor.relation, ()):
                        heapq.heappush(
                            pending,
                            (survivor.level, survivor.node_id, kind,
                             dep_index))
                for child_id in self._children.get(retired_id, ()):
                    views[child_id].parent = survivor.node_id
                self._retire_node(retired)
                self._fd_rewritten.pop(retired_id, None)
                statistics.merged_conjuncts += 1

    def _retire_node(self, view: _ColNode) -> None:
        """Mark a node dead, freezing its key and vacating its postings."""
        key = self._atom_keys[view.node_id]
        self._unindex_key(view, key)
        if self._postings_built:
            store = self._stores[view.relation]
            row = view.row
            for position, value in enumerate(key):
                postings = store.postings[position]
                bucket = postings.get(value)
                if bucket is not None:
                    bucket.discard(row)
                    if not bucket:
                        del postings[value]
        view.alive = False
        self._live_count -= 1

    def _halt_on_clash(self, dependency: str) -> None:
        """The paper's constant-clash case: record the prefix, empty the query."""
        self._failed = True
        self._failure_dependency = dependency
        self._failure_live_conjuncts = self._live_count
        for view in self._views:
            view.alive = False
        self._live_count = 0
        self._fd_dirty = False
        self._fd_rewritten.clear()
        stores = self._stores
        for relation in self._fd_watermarks:
            store = stores.get(relation)
            if store is not None:
                self._fd_watermarks[relation] = len(store.row_nodes)

    # -- IND/TGD phase ---------------------------------------------------------

    def _ind_requirement_satisfied(self, node_id: int, index: int) -> bool:
        """R-chase: is there already a conjunct c' with c'[Y] = c[X]?"""
        lhs_positions, _ = self._ind_positions[index]
        key = self._atom_keys[node_id]
        # `is not None`, not truthiness: a flat entry may be node id 0,
        # and set entries are deleted (never left empty) on unindexing.
        return self._ind_satisfied[index].get(
            tuple([key[position] for position in lhs_positions])) is not None

    def _peek_pending(self) -> Optional[Tuple[int, int, int, int]]:
        """The next needed heap entry, popped; the caller pushes it back
        when it decides not to apply it.

        Discarded entries are dead, stale-level (a merge lowered the node
        and pushed a fresh entry), already applied (O-chase), or already
        satisfied (R-chase) — all permanent conditions, so dropping them
        for good cannot deviate from the policy.
        """
        oblivious = self._config.variant is ChaseVariant.OBLIVIOUS
        pending = self._pending
        views = self._views
        statistics = self._statistics
        while pending:
            entry = heapq.heappop(pending)
            level, node_id, kind, dep_index = entry
            statistics.triggers_examined += 1
            view = views[node_id]
            if not view.alive:
                continue
            if level != view.level:
                continue
            if kind == 0:
                if oblivious:
                    if (node_id, dep_index) in self._applied:
                        continue
                elif self._ind_requirement_satisfied(node_id, dep_index):
                    statistics.index_hits += 1
                    continue
            else:
                if oblivious:
                    if (dep_index, node_id) in self._applied_fast:
                        continue
                else:
                    fast = self._fast_by_global[dep_index]
                    key = self._atom_keys[node_id]
                    values = tuple(key[position]
                                   for position in fast.body_projection)
                    if fast.buckets.get(values) is not None:
                        statistics.index_hits += 1
                        continue
            return entry
        return None

    def _next_expansion(self):
        """Step 2 of the policy: the minimum-priority creation application.

        The pending heap already holds the INDs and fast TGDs in combined
        priority order; only the slow (trigger-index) TGDs still compete
        through an actives scan.  The overall minimum is the same one the
        indexed engine's one-pool competition selects, so the chosen
        application — and with it every node id — agrees across engines.
        """
        entry = self._peek_pending()
        trigger = None
        if self._slow_tgds:
            actives = self._trigger_index.active_tgd_triggers(
                self._config.variant is ChaseVariant.OBLIVIOUS,
                self._applied_tgds)
            trigger = actives[0] if actives else None
        if entry is None and trigger is None:
            return None
        entry_priority = (None if entry is None
                          else (entry[0], (entry[1],), entry[2], entry[3]))
        tgd_priority = (None if trigger is None
                        else (trigger.level, trigger.node_ids, 1,
                              self._slow_global_index[trigger.index]))
        choose_entry = tgd_priority is None or (
            entry_priority is not None and entry_priority < tgd_priority)
        chosen_level = (entry_priority if choose_entry else tgd_priority)[0]
        if (self._config.max_level is not None
                and chosen_level + 1 > self._config.max_level):
            self._truncated = True
            if entry is not None:
                heapq.heappush(self._pending, entry)
            return None
        if choose_entry:
            if entry[2] == 0:
                return ("ind", (entry[1], entry[3]))
            return ("fast", (entry[3], entry[1]))
        if entry is not None:
            heapq.heappush(self._pending, entry)
        return ("tgd", trigger)

    def _apply_ind(self, node_id: int, index: int) -> None:
        """The IND chase rule: one new fact with lazily-named fresh NDVs."""
        ind = self._inds[index]
        view = self._views[node_id]
        key = self._atom_keys[node_id]
        relation, slots, attrs = self._ind_templates[index]
        new_level = view.level + 1
        self._applied.add((node_id, index))
        statistics = self._statistics
        record = self._config.record_trace

        source_label = view.label
        terms: List[int] = []
        fresh_ids: List[int] = []
        for slot, attribute in zip(slots, attrs):
            if slot is not None:
                terms.append(key[slot])
            else:
                fresh = self._fresh_id(source_label, attribute, new_level)
                terms.append(fresh)
                fresh_ids.append(fresh)
        candidate = tuple(terms)
        # A never-seen fresh id in the candidate makes a verbatim
        # duplicate impossible, so the probe is only needed when the IND
        # copies every column of the target.
        duplicate_id = (None if fresh_ids
                        else self._first_atom_node(relation, candidate))
        if duplicate_id is not None:
            duplicate = self._views[duplicate_id]
            statistics.redundant_ind_applications += 1
            statistics.index_hits += 1
            if record:
                self._trace.record(INDApplication(
                    dependency=ind, source_conjunct=view.label,
                    created_conjunct=None, existing_conjunct=duplicate.label,
                    level=duplicate.level))
            return

        created = self._new_fact(relation, candidate, new_level,
                                 parent=node_id, via=ind)
        statistics.ind_steps += 1
        if new_level > statistics.max_level_reached:
            statistics.max_level_reached = new_level
        if record:
            self._trace.record(INDApplication(
                dependency=ind, source_conjunct=view.label,
                created_conjunct=created.label, existing_conjunct=None,
                level=new_level,
                fresh_variables=tuple(self._term(tid) for tid in fresh_ids)))

    def _apply_fast_tgd(self, global_index: int, node_id: int) -> None:
        """A heap-carried TGD application: the IND rule's recipe, with the
        head template standing in for the IND's column mapping."""
        fast = self._fast_by_global[global_index]
        tgd = fast.tgd
        view = self._views[node_id]
        key = self._atom_keys[node_id]
        new_level = view.level + 1
        if self._config.variant is ChaseVariant.OBLIVIOUS:
            self._applied_fast.add((global_index, node_id))
        statistics = self._statistics
        record = self._config.record_trace

        fresh_by_variable: Dict[Variable, int] = {}
        fresh_ids: List[int] = []
        terms: List[int] = []
        for tag, payload, attribute in fast.head_template:
            if tag == 0:
                terms.append(payload)
            elif tag == 1:
                terms.append(key[payload])
            else:
                fresh = fresh_by_variable.get(payload)
                if fresh is None:
                    fresh = self._fresh_id(view.label, attribute, new_level)
                    fresh_by_variable[payload] = fresh
                    fresh_ids.append(fresh)
                terms.append(fresh)
        candidate = tuple(terms)
        created_labels: List[str] = []
        # Like the IND rule: a fresh id in the (single) head atom rules
        # out a verbatim duplicate without probing.
        if fresh_ids or self._first_atom_node(
                fast.head_relation, candidate) is None:
            created = self._new_fact(fast.head_relation, candidate, new_level,
                                     parent=node_id, via=tgd)
            created_labels.append(created.label)
            statistics.tgd_steps += 1
            if new_level > statistics.max_level_reached:
                statistics.max_level_reached = new_level
        else:
            statistics.index_hits += 1
            statistics.redundant_tgd_applications += 1
        if record:
            self._trace.record(TGDApplication(
                dependency=tgd, source_conjuncts=(view.label,),
                created_conjuncts=tuple(created_labels), level=new_level,
                fresh_variables=tuple(self._term(tid) for tid in fresh_ids)))

    def _apply_tgd(self, trigger: TGDTrigger) -> None:
        """A trigger-index TGD application (multi-atom body or head)."""
        tgd = trigger.tgd
        binding = trigger.binding_dict()
        new_level = trigger.level + 1
        oblivious = self._config.variant is ChaseVariant.OBLIVIOUS
        if oblivious:
            self._applied_tgds.add(trigger.applied_key)
        self._trigger_index.note_tgd_applied(trigger, oblivious)
        nodes = trigger.nodes
        parent = nodes[0]
        if len(nodes) > 1:
            level = trigger.level
            for node in nodes:
                if node.level == level:
                    parent = node
                    break

        statistics = self._statistics
        fresh_by_variable: Dict[Variable, int] = {}
        fresh_ids: List[int] = []
        created_labels: List[str] = []
        for atom in tgd.head:
            target = self._schema.relation(atom.relation)
            terms: List[int] = []
            for position, term in enumerate(atom.terms):
                if not isinstance(term, Variable):
                    terms.append(self._intern(term))
                elif term in binding:
                    terms.append(binding[term])
                else:
                    fresh = fresh_by_variable.get(term)
                    if fresh is None:
                        fresh = self._fresh_id(
                            parent.label, target.attribute_name_at(position),
                            new_level)
                        fresh_by_variable[term] = fresh
                        fresh_ids.append(fresh)
                    terms.append(fresh)
            candidate = tuple(terms)
            if self._first_atom_node(atom.relation, candidate) is not None:
                statistics.index_hits += 1
                continue
            created = self._new_fact(atom.relation, candidate, new_level,
                                     parent=parent.node_id, via=tgd)
            created_labels.append(created.label)
        if created_labels:
            statistics.tgd_steps += 1
            if new_level > statistics.max_level_reached:
                statistics.max_level_reached = new_level
        else:
            statistics.redundant_tgd_applications += 1
        if self._config.record_trace:
            self._trace.record(TGDApplication(
                dependency=tgd,
                source_conjuncts=tuple(node.label for node in trigger.nodes),
                created_conjuncts=tuple(created_labels),
                level=new_level,
                fresh_variables=tuple(self._term(tid) for tid in fresh_ids)))

    def _record_cross_arcs(self) -> None:
        """R-chase post-pass: cross arcs for satisfied requirements.

        Same rule as the indexed engine: for every live conjunct c and
        IND applicable to c whose required conjunct exists, a cross arc
        from c to the first such conjunct — unless c itself has an
        ordinary arc for that IND.
        """
        if not self._inds:
            return
        ordinary = set()
        arc_via = self._arc_via
        for node_id, parent in enumerate(self._arc_parent):
            if parent is not None:
                ordinary.add((parent, self._dependency_str(arc_via[node_id])))
        atom_keys = self._atom_keys
        cross = self._cross_arcs
        flat = self._flat_satisfied
        #: (satisfaction dict, ind, rendering, lhs positions) per source
        #: relation, resolved once instead of per live node.
        plans = {
            relation: tuple(
                (self._ind_satisfied[index], self._inds[index],
                 self._dependency_str(self._inds[index]),
                 self._ind_positions[index][0])
                for index in indexes)
            for relation, indexes in self._inds_by_source.items()}
        for view in self._views:
            if not view.alive:
                continue
            plan = plans.get(view.relation)
            if plan is None:
                continue
            node_id = view.node_id
            key = atom_keys[node_id]
            for satisfied, ind, rendering, lhs_positions in plan:
                if (node_id, rendering) in ordinary:
                    continue
                bucket = satisfied.get(
                    tuple([key[position] for position in lhs_positions]))
                if bucket is None:
                    target_id = None
                elif flat:
                    target_id = bucket
                else:
                    target_id = min(bucket)
                if target_id is not None and target_id != node_id:
                    cross.append((node_id, target_id, ind))

    # -- boundary materialisation ----------------------------------------------

    def _materialize_graph(self) -> ChaseGraph:
        """Build real ChaseNode objects from the columnar state.

        Nodes are created in id order with their creation-time arcs, then
        current parents are restored (merges redirect the children of a
        retired node), dead nodes are retired, and cross arcs appended —
        the same mutation order the object engines perform incrementally,
        so levels, histograms, and arc lists come out identical.
        """
        graph = ChaseGraph()
        term = self._term
        atom_keys = self._atom_keys
        arc_parent = self._arc_parent
        arc_via = self._arc_via
        for view in self._views:
            node_id = view.node_id
            # Pre-labelled with the id new_node is about to assign, so
            # with_label returns it unchanged instead of copying.
            conjunct = Conjunct(
                view.relation,
                tuple(map(term, atom_keys[node_id])),
                label=view.label)
            node = graph.new_node(conjunct, level=view.level,
                                  parent=arc_parent[node_id],
                                  via=arc_via[node_id])
            if view.parent != arc_parent[node_id]:
                node.parent = view.parent
        for view in self._views:
            if not view.alive:
                graph.retire_node(view.node_id)
        for source, target, ind in self._cross_arcs:
            graph.add_cross_arc(source, target, ind)
        return graph
