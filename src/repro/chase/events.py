"""Chase traces: a record of every rule application.

Traces serve three purposes: they make chase runs debuggable (the
benchmarks print them for the Figure 1 example), they are the raw material
for containment *certificates* (the polynomial-size proofs of Theorem 2),
and they let property-based tests validate invariants step by step (levels
increase along ordinary arcs, created NDVs are fresh, and so on).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.dependencies.functional import FunctionalDependency
from repro.dependencies.inclusion import InclusionDependency
from repro.terms.term import Term


@dataclass(frozen=True)
class FDApplication:
    """One application of the FD chase rule.

    ``merged_away`` is the symbol that disappeared and ``survivor`` the
    symbol that replaced it everywhere (a constant or the lexicographically
    first variable).  ``halted`` is True in the "two distinct constants"
    case, in which the chase empties the query.
    """

    dependency: FunctionalDependency
    first_conjunct: str
    second_conjunct: str
    merged_away: Optional[Term]
    survivor: Optional[Term]
    halted: bool = False

    def describe(self) -> str:
        if self.halted:
            return (
                f"FD {self.dependency} applied to {self.first_conjunct}/"
                f"{self.second_conjunct}: constant clash, chase halts with the empty query"
            )
        return (
            f"FD {self.dependency} applied to {self.first_conjunct}/"
            f"{self.second_conjunct}: {self.merged_away} := {self.survivor}"
        )


@dataclass(frozen=True)
class INDApplication:
    """One application of the IND chase rule.

    ``created_conjunct`` is the label of the new conjunct when one was
    created (an ordinary arc); ``existing_conjunct`` is the label of the
    already-present conjunct when the application was redundant and the
    R-chase recorded a cross arc instead.
    """

    dependency: InclusionDependency
    source_conjunct: str
    created_conjunct: Optional[str]
    existing_conjunct: Optional[str]
    level: int
    fresh_variables: Tuple[Term, ...] = ()

    @property
    def created(self) -> bool:
        return self.created_conjunct is not None

    def describe(self) -> str:
        if self.created:
            return (
                f"IND {self.dependency} applied to {self.source_conjunct}: "
                f"created {self.created_conjunct} at level {self.level}"
            )
        return (
            f"IND {self.dependency} applied to {self.source_conjunct}: "
            f"already satisfied by {self.existing_conjunct} (cross arc)"
        )


@dataclass(frozen=True)
class EGDApplication:
    """One application of a general EGD (the FD chase rule generalised).

    ``conjuncts`` are the labels of the body image, in body-atom order.
    ``halted`` is True in the "two distinct constants" case, in which the
    chase empties the query.
    """

    dependency: "object"  # an EGD; typed loosely to avoid an import cycle
    conjuncts: Tuple[str, ...]
    merged_away: Optional[Term]
    survivor: Optional[Term]
    halted: bool = False

    def describe(self) -> str:
        where = "/".join(self.conjuncts)
        if self.halted:
            return (f"EGD {self.dependency} applied to {where}: "
                    "constant clash, chase halts with the empty query")
        return (f"EGD {self.dependency} applied to {where}: "
                f"{self.merged_away} := {self.survivor}")


@dataclass(frozen=True)
class TGDApplication:
    """One application of a general TGD (the IND chase rule generalised).

    ``source_conjuncts`` are the labels of the body image;
    ``created_conjuncts`` the labels of the head conjuncts actually
    created (head atoms already present verbatim create nothing, which in
    the O-chase may leave this empty — the redundant case).
    """

    dependency: "object"  # a TGD; typed loosely to avoid an import cycle
    source_conjuncts: Tuple[str, ...]
    created_conjuncts: Tuple[str, ...]
    level: int
    fresh_variables: Tuple[Term, ...] = ()

    @property
    def created(self) -> bool:
        return bool(self.created_conjuncts)

    def describe(self) -> str:
        sources = "/".join(self.source_conjuncts)
        if self.created:
            return (f"TGD {self.dependency} applied to {sources}: created "
                    f"{', '.join(self.created_conjuncts)} at level {self.level}")
        return (f"TGD {self.dependency} applied to {sources}: "
                "head already satisfied verbatim")


ChaseStep = object  # FDApplication | INDApplication | EGDApplication | TGDApplication


@dataclass
class ChaseTrace:
    """The ordered list of chase rule applications of one run."""

    steps: List[ChaseStep] = field(default_factory=list)

    def record(self, step: ChaseStep) -> None:
        self.steps.append(step)

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self):
        return iter(self.steps)

    def fd_applications(self) -> List[FDApplication]:
        return [s for s in self.steps if isinstance(s, FDApplication)]

    def ind_applications(self) -> List[INDApplication]:
        return [s for s in self.steps if isinstance(s, INDApplication)]

    def egd_applications(self) -> List[EGDApplication]:
        return [s for s in self.steps if isinstance(s, EGDApplication)]

    def tgd_applications(self) -> List[TGDApplication]:
        return [s for s in self.steps if isinstance(s, TGDApplication)]

    def describe(self, limit: Optional[int] = None) -> str:
        """Multi-line rendering of (up to ``limit``) steps."""
        chosen = self.steps if limit is None else self.steps[:limit]
        lines = [f"chase trace: {len(self.steps)} steps"]
        for index, step in enumerate(chosen, start=1):
            lines.append(f"  {index:4d}. {step.describe()}")
        if limit is not None and len(self.steps) > limit:
            lines.append(f"  ... {len(self.steps) - limit} more steps")
        return "\n".join(lines)
