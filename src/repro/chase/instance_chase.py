"""Chasing finite database instances (dependency repair).

The paper's chase acts on queries, but the same rules make sense on a
concrete database instance: an IND violation is repaired by inserting a
tuple with fresh *labelled nulls* in the unconstrained columns, and an FD
violation between two tuples is repaired by merging the two differing
values when at least one of them is a labelled null (two distinct domain
constants cannot be merged — that is a hard violation).

This instance-level chase is the substrate used by the finite-containment
tooling: it turns the canonical database of a query into a Σ-satisfying
finite database when the chase terminates, and otherwise documents why a
finite witness is hard to build (exactly the situation Section 4's
counterexample exploits).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.dependencies.dependency_set import DependencySet
from repro.dependencies.inclusion import InclusionDependency
from repro.dependencies.violations import database_satisfies
from repro.relational.database import Database


class LabelledNull:
    """A fresh, unnamed value introduced by the instance chase.

    Labelled nulls compare equal only to themselves, can be merged into
    domain constants (or other nulls) by FD repairs, and print as ``⊥n``.
    """

    _counter = itertools.count()

    __slots__ = ("ident",)

    def __init__(self):
        self.ident = next(LabelledNull._counter)

    def __repr__(self) -> str:
        return f"⊥{self.ident}"

    def __hash__(self) -> int:
        return hash(("LabelledNull", self.ident))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, LabelledNull) and other.ident == self.ident


@dataclass
class InstanceChaseResult:
    """Outcome of chasing a database instance.

    ``database`` is the repaired instance (shared schema with the input).
    ``satisfied`` reports whether it obeys every dependency; ``failed`` is
    True when an FD violation between two domain constants made repair
    impossible; ``exhausted`` is True when the step budget ran out before
    the instance stabilised (the IND chase on instances need not
    terminate, for the same reason the query chase need not).
    """

    database: Database
    satisfied: bool
    failed: bool
    exhausted: bool
    steps: int
    nulls_created: int

    @property
    def succeeded(self) -> bool:
        return self.satisfied and not self.failed


def chase_instance(database: Database,
                   dependencies: DependencySet,
                   max_steps: int = 10_000) -> InstanceChaseResult:
    """Repair a database instance to satisfy Σ, within a step budget.

    The input database is not modified; the returned result holds a copy.
    """
    working = database.copy()
    schema = working.schema
    dependencies.validate(schema)
    if dependencies.has_embedded():
        # The repair rules below only know FD merges and IND insertions;
        # silently ignoring general TGDs/EGDs would hand back an instance
        # that still violates Σ.  Reject loudly until instance-level
        # TGD/EGD repair is implemented (violation *checking* already
        # handles them — see repro.dependencies.violations).
        from repro.exceptions import ChaseError
        raise ChaseError(
            "chase_instance only repairs FDs and INDs; Σ contains general "
            "TGDs/EGDs — normalize them away or check with "
            "dependency_violations instead")
    fds = dependencies.functional_dependencies()
    inds = dependencies.inclusion_dependencies()
    steps = 0
    nulls_created = 0
    failed = False

    def apply_fd_repairs() -> bool:
        """Merge null values forced equal by FDs; returns False on hard violation."""
        nonlocal steps
        changed = True
        while changed:
            changed = False
            for fd in fds:
                relation = working.relation(fd.relation)
                lhs_positions = fd.lhs_positions(relation.schema)
                rhs_position = fd.rhs_position(relation.schema)
                groups: Dict[Tuple[Any, ...], Any] = {}
                replacement: Optional[Tuple[Any, Any]] = None
                for row in relation:
                    key = tuple(row[p] for p in lhs_positions)
                    value = row[rhs_position]
                    if key not in groups:
                        groups[key] = value
                        continue
                    other = groups[key]
                    if other == value:
                        continue
                    if isinstance(value, LabelledNull):
                        replacement = (value, other)
                    elif isinstance(other, LabelledNull):
                        replacement = (other, value)
                    else:
                        return False
                    break
                if replacement is not None:
                    steps += 1
                    _replace_value(working, replacement[0], replacement[1])
                    changed = True
        return True

    while steps < max_steps:
        if not apply_fd_repairs():
            failed = True
            break
        repair = _find_ind_repair(working, inds)
        if repair is None:
            break
        ind, subtuple = repair
        steps += 1
        nulls_created += _insert_ind_witness(working, ind, subtuple)
    exhausted = steps >= max_steps and not failed
    satisfied = not failed and database_satisfies(working, dependencies)
    return InstanceChaseResult(
        database=working,
        satisfied=satisfied,
        failed=failed,
        exhausted=exhausted,
        steps=steps,
        nulls_created=nulls_created,
    )


def _replace_value(database: Database, old: Any, new: Any) -> None:
    """Replace every occurrence of ``old`` by ``new`` across the database."""
    for relation in database:
        replaced = [
            tuple(new if value == old else value for value in row)
            for row in relation.rows()
        ]
        relation.clear()
        relation.add_all(replaced)


def _find_ind_repair(database: Database,
                     inds: Sequence[InclusionDependency]
                     ) -> Optional[Tuple[InclusionDependency, Tuple[Any, ...]]]:
    """The first unmatched (IND, source subtuple), or ``None``."""
    schema = database.schema
    for ind in inds:
        source = database.relation(ind.lhs_relation)
        target = database.relation(ind.rhs_relation)
        lhs_positions = ind.lhs_positions(schema)
        rhs_positions = ind.rhs_positions(schema)
        available = {tuple(row[p] for p in rhs_positions) for row in target}
        for row in sorted(source, key=repr):
            subtuple = tuple(row[p] for p in lhs_positions)
            if subtuple not in available:
                return ind, subtuple
    return None


def _insert_ind_witness(database: Database, ind: InclusionDependency,
                        subtuple: Tuple[Any, ...]) -> int:
    """Insert the tuple required by an IND, filling other columns with nulls."""
    schema = database.schema
    target_schema = schema.relation(ind.rhs_relation)
    rhs_positions = ind.rhs_positions(schema)
    row: List[Any] = []
    nulls = 0
    for position in range(target_schema.arity):
        if position in rhs_positions:
            row.append(subtuple[rhs_positions.index(position)])
        else:
            row.append(LabelledNull())
            nulls += 1
    database.add(ind.rhs_relation, row)
    return nulls
