"""Chase termination analysis: weak acyclicity of the dependency graph.

The paper observes that "even such simple Σ's as the single IND
R[2] ⊆ R[1] can give rise to infinite chases of both types".  Whether the
chase terminates for *every* query is exactly the classical
weak-acyclicity condition (Fagin, Kolaitis, Miller, Popa) on the set's
tuple-generating dependencies — INDs viewed as inclusion TGDs, and the
general :class:`~repro.dependencies.embedded.TGD` rules directly:

* build the *position graph* whose nodes are relation positions
  ``(relation, column)``;
* every IND ``R[X] ⊆ S[Y]`` adds a **copy edge** from ``(R, x_k)`` to
  ``(S, y_k)`` for each k (the value is copied), and an **existential
  edge** from every ``(R, x_k)`` to every position of S *not* in Y (a
  fresh NDV is created there, "fed" by the copied values);
* every general TGD adds, for each frontier variable x (occurring in
  body and head) and each body position p of x, a copy edge from p to
  every head position of x and an existential edge from p to every head
  position holding an existentially quantified variable;
* the set is *weakly acyclic* iff no cycle goes through an existential
  edge; in that case the R-chase of every query terminates.  (EGDs and
  FDs only merge symbols, so they never threaten termination.  The
  O-chase of general TGDs is *not* covered by the guarantee — two
  frontier-free TGDs feeding each other obliviously can run forever —
  which is why the containment dispatcher only upgrades R-chase runs.)

The engine itself never needs this analysis (it is budget-bounded anyway),
but callers can use it to decide whether to bother with a level bound, and
the containment procedure upgrades its semi-decision to an exact one for
certified-terminating Σ: the R-chase is deepened until it saturates, and
saturation-based answers are exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.dependencies.dependency_set import DependencySet
from repro.dependencies.embedded import TGD
from repro.dependencies.inclusion import InclusionDependency
from repro.relational.schema import DatabaseSchema
from repro.terms.term import Variable

Position = Tuple[str, int]          # (relation name, 0-based column)
Edge = Tuple[Position, Position, bool]   # (source, target, is_existential)


@dataclass
class PositionGraph:
    """The dependency position graph of an IND set."""

    positions: Set[Position] = field(default_factory=set)
    edges: List[Edge] = field(default_factory=list)

    def add_edge(self, source: Position, target: Position, existential: bool) -> None:
        self.positions.add(source)
        self.positions.add(target)
        self.edges.append((source, target, existential))

    def successors(self, position: Position) -> List[Tuple[Position, bool]]:
        return [(target, existential) for source, target, existential in self.edges
                if source == position]

    def copy_edges(self) -> List[Edge]:
        return [edge for edge in self.edges if not edge[2]]

    def existential_edges(self) -> List[Edge]:
        return [edge for edge in self.edges if edge[2]]


def ind_position_graph(inds: Sequence[InclusionDependency],
                       schema: DatabaseSchema) -> PositionGraph:
    """Build the position graph of an IND set (see the module docstring)."""
    graph = PositionGraph()
    for relation in schema:
        for column in range(relation.arity):
            graph.positions.add((relation.name, column))
    for ind in inds:
        ind.validate(schema)
        lhs_positions = ind.lhs_positions(schema)
        rhs_positions = ind.rhs_positions(schema)
        target_arity = schema.relation(ind.rhs_relation).arity
        fresh_columns = [column for column in range(target_arity)
                         if column not in rhs_positions]
        for source_column, target_column in zip(lhs_positions, rhs_positions):
            source = (ind.lhs_relation, source_column)
            graph.add_edge(source, (ind.rhs_relation, target_column), existential=False)
            for fresh_column in fresh_columns:
                graph.add_edge(source, (ind.rhs_relation, fresh_column), existential=True)
    return graph


def _variable_positions(atoms) -> Dict[Variable, List[Position]]:
    """Each variable's occurrences as (relation, column) positions."""
    positions: Dict[Variable, List[Position]] = {}
    for atom in atoms:
        for column, term in enumerate(atom.terms):
            if isinstance(term, Variable):
                positions.setdefault(term, []).append((atom.relation, column))
    return positions


def add_tgd_edges(graph: PositionGraph, tgds: Sequence[TGD],
                  schema: DatabaseSchema) -> PositionGraph:
    """Add the weak-acyclicity edges of general TGDs to a position graph.

    For every frontier variable x and every body position p of x: a copy
    edge from p to each head position of x, and an existential edge from
    p to each head position of an existentially quantified variable —
    the classical Fagin–Kolaitis–Miller–Popa construction, of which the
    IND edges above are the single-atom special case.
    """
    for tgd in tgds:
        tgd.validate(schema)
        body_positions = _variable_positions(tgd.body)
        head_positions = _variable_positions(tgd.head)
        existential = tgd.existential_variables()
        fresh_positions = [position for variable in sorted(existential, key=str)
                           for position in head_positions[variable]]
        for variable in tgd.frontier():
            for source in body_positions[variable]:
                for target in head_positions[variable]:
                    graph.add_edge(source, target, existential=False)
                for target in fresh_positions:
                    graph.add_edge(source, target, existential=True)
    return graph


def dependency_position_graph(dependencies: DependencySet,
                              schema: DatabaseSchema) -> PositionGraph:
    """The position graph of a full dependency set (INDs and general TGDs).

    FDs and EGDs contribute no edges: they only merge existing symbols.
    """
    graph = ind_position_graph(dependencies.inclusion_dependencies(), schema)
    return add_tgd_edges(graph, dependencies.tgds(), schema)


def _cycles_through_existential_edge(graph: PositionGraph) -> Optional[List[Position]]:
    """A cycle containing an existential edge, or ``None`` if none exists.

    Standard check: for every existential edge (u, v), the set is weakly
    acyclic iff u is not reachable from v.  The witness returned is the
    path v -> ... -> u plus the edge back, which the termination report
    prints.
    """
    adjacency: Dict[Position, List[Position]] = {}
    for source, target, _ in graph.edges:
        adjacency.setdefault(source, []).append(target)

    def reachable_path(start: Position, goal: Position) -> Optional[List[Position]]:
        stack = [(start, [start])]
        seen = {start}
        while stack:
            current, path = stack.pop()
            if current == goal:
                return path
            for successor in adjacency.get(current, ()):
                if successor not in seen:
                    seen.add(successor)
                    stack.append((successor, path + [successor]))
        return None

    for source, target, existential in graph.edges:
        if not existential:
            continue
        path = reachable_path(target, source)
        if path is not None:
            return path + [target]
    return None


@dataclass
class TerminationReport:
    """Outcome of the weak-acyclicity analysis of an IND set."""

    weakly_acyclic: bool
    witness_cycle: Optional[List[Position]]
    position_count: int
    copy_edge_count: int
    existential_edge_count: int

    @property
    def chase_terminates_for_all_queries(self) -> bool:
        """True when the analysis *guarantees* termination.

        ``False`` means "no guarantee": for IND sets this coincides with
        the existence of a query whose chase is infinite (the Figure 1 and
        Section 4 sets are examples), but the analysis itself is only used
        as a sufficient condition.
        """
        return self.weakly_acyclic

    def describe(self) -> str:
        verdict = ("weakly acyclic: the chase of every query terminates"
                   if self.weakly_acyclic
                   else "not weakly acyclic: some queries have infinite chases")
        lines = [
            f"IND termination analysis: {verdict}",
            f"  positions: {self.position_count}, copy edges: {self.copy_edge_count}, "
            f"existential edges: {self.existential_edge_count}",
        ]
        if self.witness_cycle is not None:
            rendered = " -> ".join(f"{relation}[{column + 1}]"
                                   for relation, column in self.witness_cycle)
            lines.append(f"  witness cycle through an existential edge: {rendered}")
        return "\n".join(lines)


def _report_for_graph(graph: PositionGraph) -> TerminationReport:
    witness = _cycles_through_existential_edge(graph)
    return TerminationReport(
        weakly_acyclic=witness is None,
        witness_cycle=witness,
        position_count=len(graph.positions),
        copy_edge_count=len(graph.copy_edges()),
        existential_edge_count=len(graph.existential_edges()),
    )


def _resolve_schema(dependencies: DependencySet,
                    schema: Optional[DatabaseSchema]) -> DatabaseSchema:
    target_schema = schema or dependencies.schema
    if target_schema is None:
        raise ValueError("a schema is required for the termination analysis")
    return target_schema


def analyse_ind_termination(dependencies: DependencySet,
                            schema: Optional[DatabaseSchema] = None) -> TerminationReport:
    """Weak-acyclicity analysis of the INDs of a dependency set.

    FDs never threaten termination (the FD chase only merges symbols), so
    only the IND part is inspected; use :func:`analyse_termination` for
    sets that also carry general TGDs.
    """
    target_schema = _resolve_schema(dependencies, schema)
    graph = ind_position_graph(dependencies.inclusion_dependencies(), target_schema)
    return _report_for_graph(graph)


def analyse_termination(dependencies: DependencySet,
                        schema: Optional[DatabaseSchema] = None) -> TerminationReport:
    """Weak-acyclicity analysis of a full dependency set (INDs and TGDs).

    The report certifies R-chase termination for *every* query when
    ``weakly_acyclic`` is True; FDs and EGDs are ignored (they only merge
    symbols).  For IND-only sets this coincides with
    :func:`analyse_ind_termination`.
    """
    target_schema = _resolve_schema(dependencies, schema)
    graph = dependency_position_graph(dependencies, target_schema)
    return _report_for_graph(graph)


def chase_guaranteed_finite(dependencies: DependencySet,
                            schema: Optional[DatabaseSchema] = None) -> bool:
    """Sufficient condition for "the R-chase of every query under Σ is finite"."""
    if not dependencies.inclusion_dependencies() and not dependencies.tgds():
        return True
    return analyse_termination(dependencies, schema).weakly_acyclic


# ---------------------------------------------------------------------------
# Chase-size estimation (admission control for certified-terminating Σ)
# ---------------------------------------------------------------------------

#: Estimates saturate here instead of overflowing into numbers no budget
#: comparison could use anyway.
ESTIMATE_CAP = 10**9


def position_ranks(graph: PositionGraph) -> Optional[Dict[Position, int]]:
    """Each position's *rank*: the most existential edges on any path into it.

    Fresh labelled nulls are created along existential edges, so a
    position's rank bounds how many "generations" of invented values can
    ever reach it; weak acyclicity is exactly the condition that every
    rank is finite.  Computed by relaxation (copy edges propagate a rank
    unchanged, existential edges increment it).  Copy-only cycles are
    harmless — they propagate a maximum without increasing it — so the
    relaxation converges within ``existential_edges + 1`` sweeps for any
    weakly acyclic graph; a sweep budget exceeded means some cycle goes
    through an existential edge, and ``None`` is returned (no finite
    ranks exist).
    """
    ranks: Dict[Position, int] = {position: 0 for position in graph.positions}
    existential_count = len(graph.existential_edges())
    # One extra sweep detects "still changing", i.e. unbounded ranks.
    for _ in range(existential_count + len(graph.positions) + 2):
        changed = False
        for source, target, existential in graph.edges:
            candidate = ranks[source] + (1 if existential else 0)
            if candidate > ranks[target]:
                if candidate > existential_count:
                    # A finite-rank position never exceeds the number of
                    # existential edges (a path revisiting one would be a
                    # cycle through it).
                    return None
                ranks[target] = candidate
                changed = True
        if not changed:
            return ranks
    return None  # pragma: no cover - guarded by the candidate > count check


@dataclass(frozen=True)
class ChaseSizeEstimate:
    """A per-query chase-node budget estimate for certified Σ.

    ``bounded`` mirrors weak acyclicity; when it is False no finite
    estimate exists and :meth:`nodes` refuses to produce one.  The
    estimate is the admission-control envelope behind ``repro.fleet``:
    a *heuristic upper envelope* in the spirit of the
    Fagin–Kolaitis–Miller–Popa polynomial bound (each rank stratum can
    enlarge the instance by at most one expansion per dependency edge),
    not a proven tight bound — it is monotone in rank and in edge count,
    which is what capacity accounting needs.
    """

    bounded: bool
    max_rank: int
    position_count: int
    copy_edge_count: int
    existential_edge_count: int

    def nodes(self, query_atoms: int) -> int:
        """Estimated chase-node budget for a query with ``query_atoms`` atoms."""
        if not self.bounded:
            raise ValueError(
                "no finite chase-size estimate exists for a set that is not "
                "weakly acyclic")
        if query_atoms <= 0:
            raise ValueError("query_atoms must be positive")
        branching = 1 + self.copy_edge_count + self.existential_edge_count
        estimate = query_atoms * branching ** (self.max_rank + 1)
        return min(estimate, ESTIMATE_CAP)

    def describe(self) -> str:
        if not self.bounded:
            return "chase-size estimate: unbounded (not weakly acyclic)"
        return (f"chase-size estimate: rank {self.max_rank} over "
                f"{self.position_count} positions "
                f"({self.copy_edge_count} copy / "
                f"{self.existential_edge_count} existential edges); "
                f"~{self.nodes(1)} nodes per query atom")


def estimate_chase_size(dependencies: DependencySet,
                        schema: Optional[DatabaseSchema] = None) -> ChaseSizeEstimate:
    """The chase-size estimate of a dependency set (INDs and general TGDs).

    Pairs with :func:`analyse_termination`: when the set is weakly
    acyclic the estimate is ``bounded`` and :meth:`ChaseSizeEstimate.nodes`
    converts it into a per-query chase-node budget; otherwise callers
    must fall back to clamped budgets (which is exactly what the fleet's
    admission control does).
    """
    target_schema = _resolve_schema(dependencies, schema)
    graph = dependency_position_graph(dependencies, target_schema)
    ranks = position_ranks(graph)
    return ChaseSizeEstimate(
        bounded=ranks is not None,
        max_rank=max(ranks.values(), default=0) if ranks is not None else 0,
        position_count=len(graph.positions),
        copy_edge_count=len(graph.copy_edges()),
        existential_edge_count=len(graph.existential_edges()),
    )
