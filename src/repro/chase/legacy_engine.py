"""The seed chase implementation, kept as the semantic reference.

This is the engine the repository shipped before the indexed rewrite:
trigger discovery scans pairs of conjuncts, and the term-keyed indexes
are rebuilt from scratch after every FD application.  It is retained —
selectable with ``ChaseConfig(engine="legacy")`` or
``SolverConfig(chase_engine="legacy")`` — so the differential test
harness can certify, case by case, that the indexed engine produces the
identical chase (same nodes, same levels, same arcs, same summary row)
and the identical containment verdicts.

Apart from the work-accounting counters (``triggers_examined``,
``index_hits``) and the general TGD/EGD support added to both engines at
the same time (trigger selection is shared via
``chase.embedded_triggers``; application and index upkeep are this
module's scan-and-rebuild style), the FD/IND algorithm is byte-for-byte
the seed behaviour.  Do not "optimise" this module; its value is being
the fixed point the fast engine is measured against.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Set, Tuple

from repro.chase.chase_graph import ChaseGraph, ChaseNode
from repro.chase.embedded_triggers import (
    EGDTrigger,
    TGDTrigger,
    find_egd_trigger,
    find_tgd_trigger,
)
from repro.chase.engine import (
    ChaseConfig,
    ChaseResult,
    ChaseStatistics,
    ChaseVariant,
    run_with_instrumentation,
)
from repro.chase.events import (
    ChaseTrace,
    EGDApplication,
    FDApplication,
    INDApplication,
    TGDApplication,
)
from repro.chase.fd_chase import ConstantClash, resolve_merge
from repro.dependencies.dependency_set import DependencySet
from repro.dependencies.functional import FunctionalDependency
from repro.dependencies.inclusion import InclusionDependency
from repro.queries.conjunct import Conjunct
from repro.queries.conjunctive_query import ConjunctiveQuery
from repro.relational.schema import DatabaseSchema
from repro.terms.naming import FreshVariableFactory, NDVProvenance
from repro.terms.substitution import Substitution
from repro.terms.term import Term, Variable


class LegacyChaseEngine:
    """Builds the chase with the seed's scan-and-rebuild strategy."""

    engine_name = "legacy"

    def __init__(self, query: ConjunctiveQuery, dependencies: DependencySet,
                 config: Optional[ChaseConfig] = None):
        dependencies.validate(query.input_schema)
        self._query = query
        self._schema: DatabaseSchema = query.input_schema
        self._dependencies = dependencies
        self._fds = dependencies.functional_dependencies()
        self._inds = dependencies.inclusion_dependencies()
        self._tgds = dependencies.tgds()
        self._egds = dependencies.egds()
        self._config = config or ChaseConfig()
        self._graph = ChaseGraph()
        self._summary: Tuple[Term, ...] = query.summary_row
        self._fresh = FreshVariableFactory()
        self._trace = ChaseTrace()
        self._statistics = ChaseStatistics()
        self._failed = False
        self._truncated = False
        self._failure_dependency: Optional[str] = None
        self._failure_live_conjuncts = 0
        self._applied_tgds: Set[Tuple[int, Tuple[int, ...]]] = set()

        # Resolved column positions, one lookup per dependency.
        self._ind_positions: Dict[int, Tuple[Tuple[int, ...], Tuple[int, ...]]] = {}
        self._inds_by_source: Dict[str, List[int]] = {}
        for index, ind in enumerate(self._inds):
            self._ind_positions[index] = (
                ind.lhs_positions(self._schema), ind.rhs_positions(self._schema))
            self._inds_by_source.setdefault(ind.lhs_relation, []).append(index)
        self._fd_positions: Dict[FunctionalDependency, Tuple[Tuple[int, ...], int]] = {}
        self._fds_by_relation: Dict[str, List[FunctionalDependency]] = {}
        for fd in self._fds:
            relation = self._schema.relation(fd.relation)
            self._fd_positions[fd] = (fd.lhs_positions(relation), fd.rhs_position(relation))
            self._fds_by_relation.setdefault(fd.relation, []).append(fd)

        # Work queue and indexes (rebuilt after every FD application).
        self._pending: List[Tuple[int, int, int]] = []        # (level, node_id, ind index)
        self._applied: Set[Tuple[int, int]] = set()            # (node_id, ind index)
        self._satisfied_by: Dict[Tuple[int, Tuple[Term, ...]], int] = {}  # (ind idx, Y-values) -> node id
        self._atom_index: Dict[Tuple[str, Tuple[Term, ...]], int] = {}    # (relation, terms) -> node id
        self._fd_dirty: List[int] = []                          # node ids needing an FD scan

    # -- public entry point ---------------------------------------------------

    @property
    def graph(self) -> ChaseGraph:
        """The chase graph built so far (the ``ChaseEngineProtocol`` surface)."""
        return self._graph

    @property
    def statistics(self) -> ChaseStatistics:
        """Work counters accumulated so far (the ``ChaseEngineProtocol`` surface)."""
        return self._statistics

    def run(self) -> ChaseResult:
        """Execute the chase until saturation, failure, or a budget limit."""
        return run_with_instrumentation(self)

    def _run(self) -> ChaseResult:
        for conjunct in self._query.conjuncts:
            node = self._graph.new_node(conjunct, level=0)
            self._register_node(node)

        steps_budget = self._config.max_steps
        hit_conjunct_budget = False
        while True:
            self._apply_equalities_to_fixpoint()
            if self._failed:
                break
            if steps_budget is not None and self._statistics.total_steps >= steps_budget:
                self._truncated = True
                break
            application = self._next_expansion()
            if application is None:
                break
            if len(self._graph) >= self._config.max_conjuncts:
                self._truncated = True
                hit_conjunct_budget = True
                break
            kind, payload = application
            if kind == "ind":
                self._apply_ind(*payload)
            else:
                self._apply_tgd(payload)

        if self._config.variant is ChaseVariant.RESTRICTED and not self._failed:
            self._record_cross_arcs()

        saturated = not self._failed and not self._truncated
        return ChaseResult(
            query=self._query,
            variant=self._config.variant,
            graph=self._graph,
            summary_row=self._summary,
            failed=self._failed,
            saturated=saturated,
            truncated=self._truncated,
            statistics=self._statistics,
            trace=self._trace,
            hit_conjunct_budget=hit_conjunct_budget,
            engine=self.engine_name,
            failure_dependency=self._failure_dependency,
            failure_live_conjuncts=self._failure_live_conjuncts,
        )

    # -- node registration and indexes ----------------------------------------

    def _register_node(self, node: ChaseNode) -> None:
        """Enter a new node into every index and enqueue its IND applications."""
        self._atom_index.setdefault((node.relation, node.conjunct.terms), node.node_id)
        for index, ind in enumerate(self._inds):
            self._statistics.triggers_examined += 1
            if ind.rhs_relation == node.relation:
                _, rhs_positions = self._ind_positions[index]
                key = (index, node.conjunct.terms_at(rhs_positions))
                self._satisfied_by.setdefault(key, node.node_id)
        for index in self._inds_by_source.get(node.relation, ()):
            heapq.heappush(self._pending, (node.level, node.node_id, index))
        self._fd_dirty.append(node.node_id)

    def _rebuild_indexes(self) -> None:
        """Recompute term-keyed indexes after an FD application rewrote terms."""
        self._atom_index.clear()
        self._satisfied_by.clear()
        for node in self._graph.nodes():
            self._atom_index.setdefault((node.relation, node.conjunct.terms), node.node_id)
            for index, ind in enumerate(self._inds):
                self._statistics.triggers_examined += 1
                if ind.rhs_relation == node.relation:
                    _, rhs_positions = self._ind_positions[index]
                    key = (index, node.conjunct.terms_at(rhs_positions))
                    self._satisfied_by.setdefault(key, node.node_id)

    # -- FD/EGD phase -------------------------------------------------------------

    def _live_nodes(self, relation: str) -> List[ChaseNode]:
        """Live nodes of one relation in id order (trigger-search backing)."""
        return self._graph.nodes_for_relation(relation)

    def _apply_equalities_to_fixpoint(self) -> None:
        """Step 1 of the policy, generalised: FDs to fixpoint, then EGDs.

        The same interleaving as the indexed engine — FDs first, one EGD,
        FDs again — so the two engines merge in the identical order.
        """
        self._apply_fds_to_fixpoint()
        while self._egds and not self._failed:
            trigger = find_egd_trigger(self._egds, self._live_nodes,
                                       self._statistics)
            if trigger is None:
                return
            self._apply_egd(trigger)
            if not self._failed:
                self._apply_fds_to_fixpoint()

    def _apply_fds_to_fixpoint(self) -> None:
        """Apply the FD chase rule until no FD is applicable (step 1 of the policy)."""
        if not self._fds:
            self._fd_dirty.clear()
            return
        while not self._failed:
            found = self._find_applicable_fd()
            if found is None:
                self._fd_dirty.clear()
                return
            fd, first, second = found
            self._apply_fd(fd, first, second)

    def _find_applicable_fd(self) -> Optional[Tuple[FunctionalDependency, ChaseNode, ChaseNode]]:
        """Lexicographically first applicable (FD, pair of conjuncts).

        Only pairs involving a *dirty* node (one added or rewritten since
        the last fixpoint) can be newly applicable, so the scan is
        restricted accordingly; the chosen pair is still the first in
        (node id, node id, FD order) among the applicable ones found.
        """
        dirty = {node_id for node_id in self._fd_dirty
                 if self._graph.node(node_id).alive}
        if not dirty:
            return None
        nodes = self._graph.nodes()
        best: Optional[Tuple[int, int, int, FunctionalDependency, ChaseNode, ChaseNode]] = None
        for i in range(len(nodes)):
            first = nodes[i]
            fds = self._fds_by_relation.get(first.relation)
            if not fds:
                continue
            for j in range(i + 1, len(nodes)):
                second = nodes[j]
                if second.relation != first.relation:
                    continue
                if first.node_id not in dirty and second.node_id not in dirty:
                    continue
                for fd_order, fd in enumerate(fds):
                    self._statistics.triggers_examined += 1
                    lhs_positions, rhs_position = self._fd_positions[fd]
                    if (first.conjunct.terms_at(lhs_positions)
                            == second.conjunct.terms_at(lhs_positions)
                            and first.conjunct.term_at(rhs_position)
                            != second.conjunct.term_at(rhs_position)):
                        key = (first.node_id, second.node_id, fd_order)
                        if best is None or key < best[:3]:
                            best = key + (fd, first, second)
                        break
        if best is None:
            return None
        return best[3], best[4], best[5]

    def _apply_fd(self, fd: FunctionalDependency, first: ChaseNode, second: ChaseNode) -> None:
        _, rhs_position = self._fd_positions[fd]
        first_symbol = first.conjunct.term_at(rhs_position)
        second_symbol = second.conjunct.term_at(rhs_position)
        self._statistics.fd_steps += 1
        try:
            survivor, loser = resolve_merge(first_symbol, second_symbol)
        except ConstantClash:
            self._record(FDApplication(
                dependency=fd, first_conjunct=first.label, second_conjunct=second.label,
                merged_away=None, survivor=None, halted=True))
            self._halt_on_clash(str(fd))
            return
        self._record(FDApplication(
            dependency=fd, first_conjunct=first.label, second_conjunct=second.label,
            merged_away=loser, survivor=survivor))
        self._merge_symbols(survivor, loser)
        self._merge_identical_conjuncts()
        self._rebuild_indexes()

    def _halt_on_clash(self, dependency: str) -> None:
        """The paper's constant-clash case: record the prefix, empty the query."""
        self._failed = True
        self._failure_dependency = dependency
        self._failure_live_conjuncts = len(self._graph)
        for node in self._graph.nodes():
            self._graph.retire_node(node.node_id)

    def _merge_symbols(self, survivor: Term, loser: Term) -> None:
        """Rewrite ``loser`` to ``survivor`` everywhere (full scan, seed style)."""
        if not isinstance(loser, Variable):
            return
        substitution = Substitution({loser: survivor})
        for node in self._graph.nodes():
            rewritten = node.conjunct.substitute(substitution)
            if rewritten.terms != node.conjunct.terms:
                node.conjunct = rewritten
                self._fd_dirty.append(node.node_id)
        self._summary = substitution.apply_tuple(self._summary)

    def _apply_egd(self, trigger: EGDTrigger) -> None:
        """The EGD chase rule: merge the two equated symbols (FD semantics)."""
        self._statistics.egd_steps += 1
        labels = tuple(node.label for node in trigger.nodes)
        try:
            survivor, loser = resolve_merge(trigger.first, trigger.second)
        except ConstantClash:
            self._record(EGDApplication(
                dependency=trigger.egd, conjuncts=labels,
                merged_away=None, survivor=None, halted=True))
            self._halt_on_clash(str(trigger.egd))
            return
        self._record(EGDApplication(
            dependency=trigger.egd, conjuncts=labels,
            merged_away=loser, survivor=survivor))
        self._merge_symbols(survivor, loser)
        self._merge_identical_conjuncts()
        self._rebuild_indexes()

    def _merge_identical_conjuncts(self) -> None:
        """Coalesce nodes that became identical atoms after a merge.

        The surviving node keeps the minimum of the merged levels (the
        paper's levelling rule); ordinary-arc parents of children of the
        retired node are redirected to the survivor so ancestor chains stay
        meaningful.
        """
        by_atom: Dict[Tuple[str, Tuple[Term, ...]], ChaseNode] = {}
        for node in self._graph.nodes():
            key = (node.relation, node.conjunct.terms)
            existing = by_atom.get(key)
            if existing is None:
                by_atom[key] = node
                continue
            survivor, retired = (
                (existing, node) if existing.node_id <= node.node_id else (node, existing)
            )
            if retired.level < survivor.level:
                # The levelling rule lowers the survivor, so its pending
                # entries (keyed at insert-time level) are stale: push
                # fresh entries at the live level; stale ones are
                # discarded when popped.
                survivor.level = retired.level
                for index in self._inds_by_source.get(survivor.relation, ()):
                    heapq.heappush(self._pending,
                                   (survivor.level, survivor.node_id, index))
            for child in self._graph.children(retired.node_id):
                child.parent = survivor.node_id
            self._graph.retire_node(retired.node_id)
            self._statistics.merged_conjuncts += 1
            by_atom[key] = survivor

    # -- IND/TGD phase -----------------------------------------------------------------

    def _peek_next_ind_application(
            self) -> Optional[Tuple[int, ChaseNode, int, InclusionDependency]]:
        """The next needed (conjunct, IND) pair, popped but not level-checked.

        The pending heap is keyed by ``(level, node id, IND index)``, which
        is exactly "minimum level, lexicographically first conjunct,
        lexicographically first IND".  Entries whose application is no
        longer needed (already applied in the O-chase, requirement already
        satisfied in the R-chase, node retired by an FD merge) are
        discarded as they surface.  The caller pushes the returned entry
        back when it decides not to apply it.
        """
        oblivious = self._config.variant is ChaseVariant.OBLIVIOUS
        while self._pending:
            level, node_id, index = heapq.heappop(self._pending)
            self._statistics.triggers_examined += 1
            node = self._graph.node(node_id)
            if not node.alive:
                continue
            if level != node.level:
                # Stale key: an identical-conjunct merge lowered the node's
                # level after this entry was pushed, and pushed a fresh
                # entry at the live level.  Applying at the stale key would
                # deviate from the minimum-level policy.
                continue
            ind = self._inds[index]
            if oblivious:
                if (node_id, index) in self._applied:
                    continue
            else:
                if self._requirement_satisfied(node, index):
                    self._statistics.index_hits += 1
                    continue
            return level, node, index, ind
        return None

    def _pop_next_ind_application(self) -> Optional[Tuple[ChaseNode, int, InclusionDependency]]:
        """Step 2 of the policy (IND-only Σ): the next pair to apply.

        If the next needed application would exceed the level budget, so
        would every later one (the heap is level-ordered), so the chase
        stops as truncated.
        """
        entry = self._peek_next_ind_application()
        if entry is None:
            return None
        level, node, index, ind = entry
        if (self._config.max_level is not None
                and node.level + 1 > self._config.max_level):
            self._truncated = True
            heapq.heappush(self._pending, (level, node.node_id, index))
            return None
        return node, index, ind

    def _next_expansion(self):
        """Step 2 of the policy: the minimum-priority creation application.

        Identical selection rule to the indexed engine (see its
        ``_next_expansion``): pending INDs and active TGD triggers compete
        on ``(level, node-id tuple, kind, dependency index)``.
        """
        if not self._tgds:
            application = self._pop_next_ind_application()
            return None if application is None else ("ind", application)
        entry = self._peek_next_ind_application()
        trigger = find_tgd_trigger(
            self._tgds, self._live_nodes,
            self._config.variant is ChaseVariant.OBLIVIOUS,
            self._applied_tgds, self._statistics)
        if entry is None and trigger is None:
            return None
        ind_priority = (None if entry is None
                        else (entry[1].level, (entry[1].node_id,), 0, entry[2]))
        tgd_priority = (None if trigger is None
                        else (trigger.level, trigger.node_ids, 1, trigger.index))
        choose_ind = tgd_priority is None or (ind_priority is not None
                                              and ind_priority < tgd_priority)
        chosen_level = (ind_priority if choose_ind else tgd_priority)[0]
        if (self._config.max_level is not None
                and chosen_level + 1 > self._config.max_level):
            self._truncated = True
            if entry is not None:
                heapq.heappush(self._pending, (entry[0], entry[1].node_id, entry[2]))
            return None
        if choose_ind:
            return ("ind", (entry[1], entry[2], entry[3]))
        if entry is not None:
            heapq.heappush(self._pending, (entry[0], entry[1].node_id, entry[2]))
        return ("tgd", trigger)

    def _requirement_satisfied(self, node: ChaseNode, index: int) -> bool:
        """R-chase: is there already a conjunct c' with c'[Y] = c[X]?"""
        lhs_positions, _ = self._ind_positions[index]
        source_values = node.conjunct.terms_at(lhs_positions)
        return (index, source_values) in self._satisfied_by

    def _apply_ind(self, node: ChaseNode, index: int, ind: InclusionDependency) -> None:
        """The IND chase rule: create the new conjunct with fresh NDVs."""
        lhs_positions, rhs_positions = self._ind_positions[index]
        target_schema = self._schema.relation(ind.rhs_relation)
        source_values = node.conjunct.terms_at(lhs_positions)
        new_level = node.level + 1
        self._applied.add((node.node_id, index))

        terms: List[Term] = []
        fresh_terms: List[Term] = []
        for position in range(target_schema.arity):
            if position in rhs_positions:
                terms.append(source_values[rhs_positions.index(position)])
            else:
                provenance = NDVProvenance(
                    attribute=target_schema.attribute_name_at(position),
                    source_conjunct=node.label,
                    dependency=str(ind),
                    level=new_level,
                )
                fresh = self._fresh.fresh(provenance)
                terms.append(fresh)
                fresh_terms.append(fresh)

        candidate = Conjunct(ind.rhs_relation, terms)
        duplicate_id = self._atom_index.get((candidate.relation, candidate.terms))
        if duplicate_id is not None:
            # The created conjunct already exists verbatim (only possible
            # when the IND copies every column of the target).  No new node
            # is needed; in the O-chase the application is simply marked
            # done, in the R-chase it would not have been selected.
            duplicate = self._graph.node(duplicate_id)
            self._statistics.redundant_ind_applications += 1
            self._statistics.index_hits += 1
            self._record(INDApplication(
                dependency=ind, source_conjunct=node.label,
                created_conjunct=None, existing_conjunct=duplicate.label,
                level=duplicate.level))
            return

        created = self._graph.new_node(candidate, level=new_level,
                                       parent=node.node_id, via=ind)
        self._register_node(created)
        self._statistics.ind_steps += 1
        self._statistics.max_level_reached = max(self._statistics.max_level_reached, new_level)
        self._record(INDApplication(
            dependency=ind, source_conjunct=node.label,
            created_conjunct=created.label, existing_conjunct=None,
            level=new_level, fresh_variables=tuple(fresh_terms)))

    def _apply_tgd(self, trigger: TGDTrigger) -> None:
        """The TGD chase rule: create the head conjuncts with fresh NDVs.

        Semantically identical to the indexed engine's ``_apply_tgd``
        (same fresh-NDV sharing, same parent choice, same verbatim-
        duplicate skip); only the duplicate lookup goes through this
        engine's rebuilt atom index.
        """
        tgd = trigger.tgd
        binding = trigger.binding_dict()
        new_level = trigger.level + 1
        self._applied_tgds.add(trigger.applied_key)
        parent = next(node for node in trigger.nodes
                      if node.level == trigger.level)

        fresh_by_variable: Dict[Variable, Term] = {}
        fresh_terms: List[Term] = []
        created_labels: List[str] = []
        for atom in tgd.head:
            target_schema = self._schema.relation(atom.relation)
            terms: List[Term] = []
            for position, term in enumerate(atom.terms):
                if not isinstance(term, Variable):
                    terms.append(term)
                elif term in binding:
                    terms.append(binding[term])
                else:
                    fresh = fresh_by_variable.get(term)
                    if fresh is None:
                        provenance = NDVProvenance(
                            attribute=target_schema.attribute_name_at(position),
                            source_conjunct=parent.label,
                            dependency=str(tgd),
                            level=new_level,
                        )
                        fresh = self._fresh.fresh(provenance)
                        fresh_by_variable[term] = fresh
                        fresh_terms.append(fresh)
                    terms.append(fresh)
            candidate = Conjunct(atom.relation, terms)
            if self._atom_index.get((candidate.relation, candidate.terms)) is not None:
                self._statistics.index_hits += 1
                continue
            created = self._graph.new_node(candidate, level=new_level,
                                           parent=parent.node_id, via=tgd)
            self._register_node(created)
            created_labels.append(created.label)
        if created_labels:
            self._statistics.tgd_steps += 1
            self._statistics.max_level_reached = max(
                self._statistics.max_level_reached, new_level)
        else:
            self._statistics.redundant_tgd_applications += 1
        self._record(TGDApplication(
            dependency=tgd,
            source_conjuncts=tuple(node.label for node in trigger.nodes),
            created_conjuncts=tuple(created_labels),
            level=new_level, fresh_variables=tuple(fresh_terms)))

    def _record_cross_arcs(self) -> None:
        """R-chase post-pass: record cross arcs for satisfied requirements.

        For every conjunct c and IND ``R[X] ⊆ S[Y]`` applicable to c whose
        required conjunct already exists, add a cross arc from c to (the
        first) such conjunct, unless c itself has an ordinary arc for that
        IND.  These are the cross arcs Theorem 2's key-based certificate
        argument inspects.
        """
        ordinary = {(arc.source, str(arc.dependency)) for arc in self._graph.ordinary_arcs()}
        for node in self._graph.nodes():
            for index in self._inds_by_source.get(node.relation, ()):
                ind = self._inds[index]
                key = (node.node_id, str(ind))
                if key in ordinary:
                    continue
                lhs_positions, _ = self._ind_positions[index]
                source_values = node.conjunct.terms_at(lhs_positions)
                target_id = self._satisfied_by.get((index, source_values))
                if target_id is not None and target_id != node.node_id:
                    self._graph.add_cross_arc(node.node_id, target_id, ind)

    # -- bookkeeping -----------------------------------------------------------------------

    def _record(self, step) -> None:
        if self._config.record_trace:
            self._trace.record(step)
