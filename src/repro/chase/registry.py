"""Pluggable chase-engine registry.

Engine selection used to be an ad-hoc string contract: a hard-coded
``CHASE_ENGINES`` tuple in :mod:`repro.chase.engine`, re-validated
separately by ``ChaseConfig`` and ``SolverConfig``, and baked into the
CLI's ``choices`` at import time.  This module replaces all of that with
one registry:

* :func:`register_engine` binds a name to a factory
  ``(query, dependencies, config) -> engine``;
* :func:`available_engines` lists the registered names in registration
  order (the built-ins register as ``indexed``, ``legacy``,
  ``columnar``);
* :func:`resolve_engine_name` is the single resolver every config layer
  goes through — ``None`` falls back to ``$REPRO_CHASE_ENGINE`` and then
  to the ``indexed`` default, and unknown names raise a
  :class:`~repro.exceptions.ChaseError` listing the registered names;
* :func:`create_engine` instantiates by name.

:class:`ChaseEngineProtocol` spells out the contract a registered engine
must satisfy — the seam new engines (like the columnar core) plug into.
``CHASE_ENGINES`` remains importable from :mod:`repro.chase.engine` as a
deprecated read-only view over this registry, so existing imports keep
working.

The registry itself imports nothing heavy; the built-in engines are
registered by :mod:`repro.chase.engine` when it is imported, and the
functions here trigger that import lazily so ``repro.chase.registry`` is
usable on its own without creating an import cycle.
"""

from __future__ import annotations

import os
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterator,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from repro.exceptions import ChaseError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.chase.chase_graph import ChaseGraph
    from repro.chase.engine import ChaseConfig, ChaseResult, ChaseStatistics
    from repro.dependencies.dependency_set import DependencySet
    from repro.queries.conjunctive_query import ConjunctiveQuery

#: Environment override for the process-wide default engine, read when a
#: config leaves ``engine=None``.  CI uses it to run the whole suite under
#: every implementation.
CHASE_ENGINE_ENV_VAR = "REPRO_CHASE_ENGINE"

#: The engine used when neither the config nor the environment picks one.
DEFAULT_CHASE_ENGINE = "indexed"

EngineFactory = Callable[
    ["ConjunctiveQuery", "DependencySet", "ChaseConfig"], "ChaseEngineProtocol"]

_REGISTRY: Dict[str, EngineFactory] = {}


@runtime_checkable
class ChaseEngineProtocol(Protocol):
    """The contract every registered chase engine satisfies.

    An engine is constructed per ``(query, dependencies, config)`` by its
    registered factory and exposes:

    ``engine_name``
        The registry name it was registered under (stamped into
        ``ChaseResult.engine``, metrics labels, and trace spans).
    ``run()``
        Executes the chase once and returns a
        :class:`~repro.chase.engine.ChaseResult`.
    ``graph`` / ``statistics``
        The level-ordered node snapshot and work counters backing the
        result — materialized :class:`~repro.chase.chase_graph.ChaseGraph`
        nodes regardless of the engine's internal representation.
    """

    engine_name: str

    def run(self) -> "ChaseResult": ...

    @property
    def graph(self) -> "ChaseGraph": ...

    @property
    def statistics(self) -> "ChaseStatistics": ...


def register_engine(name: str, factory: EngineFactory, *,
                    replace: bool = False) -> None:
    """Register ``factory`` under ``name``.

    Re-registering an existing name raises unless ``replace=True`` (the
    escape hatch for tests and experimental drop-in engines).
    """
    if not name or not isinstance(name, str):
        raise ChaseError(f"engine name must be a non-empty string, got {name!r}")
    if name in _REGISTRY and not replace:
        raise ChaseError(
            f"chase engine {name!r} is already registered; "
            f"pass replace=True to override")
    _REGISTRY[name] = factory


def available_engines() -> Tuple[str, ...]:
    """The registered engine names, in registration order."""
    _ensure_builtins()
    return tuple(_REGISTRY)


def validate_engine_name(name: str) -> str:
    """Check ``name`` against the registry; the one shared validator.

    ``ChaseConfig.__post_init__``, ``SolverConfig``, and the resolver all
    funnel through here, so the error message — which lists the
    registered names — cannot drift between layers.
    """
    _ensure_builtins()
    if name not in _REGISTRY:
        raise ChaseError(
            f"unknown chase engine {name!r}; "
            f"registered engines: {', '.join(repr(n) for n in _REGISTRY)}")
    return name


def resolve_engine_name(name: Optional[str] = None) -> str:
    """The concrete engine a config selects.

    ``None`` falls back to ``$REPRO_CHASE_ENGINE`` and then to
    :data:`DEFAULT_CHASE_ENGINE`; unregistered names raise.
    """
    resolved = name or os.environ.get(CHASE_ENGINE_ENV_VAR) or DEFAULT_CHASE_ENGINE
    return validate_engine_name(resolved)


def engine_factory(name: str) -> EngineFactory:
    """The factory registered under ``name`` (validating the name)."""
    return _REGISTRY[validate_engine_name(name)]


def create_engine(name: str, query: "ConjunctiveQuery",
                  dependencies: "DependencySet",
                  config: "ChaseConfig") -> "ChaseEngineProtocol":
    """Instantiate the engine registered under ``name``."""
    return engine_factory(name)(query, dependencies, config)


class _RegisteredEnginesView(Sequence):
    """Deprecated read-only live view of the registered engine names.

    Kept so ``from repro.chase.engine import CHASE_ENGINES`` continues to
    work; new code should call :func:`available_engines`.  Behaves like
    the tuple it replaced (iteration, membership, indexing, ``len``) but
    always reflects the current registry.
    """

    __slots__ = ()

    def __len__(self) -> int:
        return len(available_engines())

    def __getitem__(self, index):  # type: ignore[override]
        return available_engines()[index]

    def __iter__(self) -> Iterator[str]:
        return iter(available_engines())

    def __contains__(self, name: object) -> bool:
        return name in available_engines()

    def __repr__(self) -> str:
        return repr(available_engines())

    def __eq__(self, other: object) -> bool:
        return available_engines() == other

    def __hash__(self) -> int:
        return hash(available_engines())


#: Deprecated: read-only view kept for backward compatibility; use
#: :func:`available_engines` instead.
CHASE_ENGINES: Sequence[str] = _RegisteredEnginesView()


def _ensure_builtins() -> None:
    """Make sure the built-in engines have registered themselves.

    The built-ins live behind :mod:`repro.chase.engine`, which registers
    them at import time; importing it lazily here keeps this module
    dependency-free while guaranteeing ``available_engines()`` is never
    empty for callers that import only the registry.
    """
    if "indexed" not in _REGISTRY:
        import repro.chase.engine  # noqa: F401  (registration side effect)
