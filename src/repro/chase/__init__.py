"""The chase for functional and inclusion dependencies (Section 3).

The chase converts the conjuncts of a query into a database obeying a set
Σ of dependencies, by merging symbols (the FD chase rule) and adding new
conjuncts (the IND chase rule).  With INDs present the chase may be
infinite, so the engine builds it *lazily*, bounded by a level budget, a
conjunct budget, or saturation, following the paper's deterministic
application policy:

1. while an FD is applicable, apply the lexicographically first applicable
   FD to the lexicographically first applicable pair of conjuncts;
2. then apply the lexicographically first applicable (O-chase) or required
   (R-chase) IND to the lexicographically first conjunct of minimum level.

Two variants are provided: the **O-chase** ("oblivious" — each IND is
applied once to each conjunct it matches, even redundantly) and the
**R-chase** ("required" — an IND is applied only when the conjunct it
would create is not already present).  Theorem 1 holds for both, so the
containment procedures default to the smaller R-chase; the O-chase is what
Figure 1 draws and what Theorem 2's IND-only certificate argument uses.
"""

from repro.chase.events import (
    ChaseStep,
    ChaseTrace,
    EGDApplication,
    FDApplication,
    INDApplication,
    TGDApplication,
)
from repro.chase.chase_graph import ChaseArc, ChaseGraph, ChaseNode
from repro.chase.engine import (
    CHASE_ENGINES,
    ChaseConfig,
    ChaseEngine,
    ChaseResult,
    ChaseStatistics,
    ChaseVariant,
    build_engine,
    chase,
    o_chase,
    r_chase,
    resolve_engine_name,
)
from repro.chase.registry import (
    ChaseEngineProtocol,
    available_engines,
    create_engine,
    register_engine,
    validate_engine_name,
)
from repro.chase.columnar import ColumnarChaseEngine
from repro.chase.legacy_engine import LegacyChaseEngine
from repro.chase.fd_chase import fd_chase_query, fd_only_chase
from repro.chase.instance_chase import InstanceChaseResult, chase_instance
from repro.chase.termination import (
    ChaseSizeEstimate,
    TerminationReport,
    analyse_ind_termination,
    analyse_termination,
    chase_guaranteed_finite,
    dependency_position_graph,
    estimate_chase_size,
)

__all__ = [
    "CHASE_ENGINES",
    "ChaseArc",
    "ChaseConfig",
    "ChaseEngine",
    "ChaseEngineProtocol",
    "ChaseGraph",
    "ChaseNode",
    "ColumnarChaseEngine",
    "ChaseResult",
    "ChaseStatistics",
    "ChaseStep",
    "ChaseTrace",
    "ChaseVariant",
    "EGDApplication",
    "FDApplication",
    "INDApplication",
    "TGDApplication",
    "ChaseSizeEstimate",
    "InstanceChaseResult",
    "LegacyChaseEngine",
    "TerminationReport",
    "analyse_ind_termination",
    "analyse_termination",
    "available_engines",
    "build_engine",
    "chase",
    "create_engine",
    "register_engine",
    "resolve_engine_name",
    "validate_engine_name",
    "chase_guaranteed_finite",
    "dependency_position_graph",
    "estimate_chase_size",
    "chase_instance",
    "fd_chase_query",
    "fd_only_chase",
    "o_chase",
    "r_chase",
]
