"""The chase graph: conjunct nodes, ordinary and cross arcs, levels.

Theorem 2's proof views the chase as a directed graph with a vertex for
each conjunct: an *ordinary* arc from c to c' when applying an IND to c
created c', and (in the R-chase) a *cross* arc from c to an
already-present conjunct when the required application was redundant.
Every ordinary arc increases the level by exactly one; cross arcs may go
anywhere at level at most level(c) + 1.  The graph is the object the
containment certificates and the Figure 1 benchmark serialise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Set

from repro.exceptions import ChaseError
from repro.queries.conjunct import Conjunct

#: The dependency labelling an arc: an IND, or a general TGD.  Typed
#: loosely — the graph only renders it with ``str()``.
ArcDependency = Any


@dataclass
class ChaseNode:
    """One conjunct of the (partial) chase.

    The conjunct's *terms* may be rewritten by later FD applications, so
    the node is mutable; its identity is the integer ``node_id`` (creation
    order), which also realises the "lexicographically first conjunct"
    ordering of the chase policy.
    """

    node_id: int
    conjunct: Conjunct
    level: int
    parent: Optional[int] = None
    via: Optional[ArcDependency] = None
    alive: bool = True

    @property
    def relation(self) -> str:
        return self.conjunct.relation

    @property
    def label(self) -> str:
        return self.conjunct.label

    @property
    def is_root(self) -> bool:
        """Roots are the conjuncts present before any IND application."""
        return self.parent is None

    def describe(self) -> str:
        origin = "root" if self.is_root else f"from node {self.parent} via {self.via}"
        return f"#{self.node_id} L{self.level} {self.conjunct} ({origin})"


@dataclass(frozen=True)
class ChaseArc:
    """A labelled arc of the chase graph."""

    source: int
    target: int
    dependency: ArcDependency
    kind: str  # "ordinary" or "cross"

    @property
    def is_ordinary(self) -> bool:
        return self.kind == "ordinary"

    @property
    def is_cross(self) -> bool:
        return self.kind == "cross"


class ChaseGraph:
    """Mutable container for chase nodes and arcs.

    Provides the queries the engine and the certificate checker need:
    nodes by relation, ordinary-ancestor paths, level histograms, and a
    textual rendering of the graph by level (the form in which the
    Figure 1 benchmark prints the chase).
    """

    def __init__(self):
        self._nodes: Dict[int, ChaseNode] = {}
        self._arcs: List[ChaseArc] = []
        self._ordinary_targets: Dict[int, List[int]] = {}
        self._next_id = 0
        # Live count and live max level are maintained incrementally so
        # ``len(graph)`` and ``max_level()`` stay O(1) on the common
        # (retire-free) path — the obs layer reads both after every chase.
        self._live_count = 0
        self._max_level = 0
        self._max_level_dirty = False

    # -- construction -------------------------------------------------------

    def new_node(self, conjunct: Conjunct, level: int,
                 parent: Optional[int] = None,
                 via: Optional[ArcDependency] = None) -> ChaseNode:
        """Create and register a node; labels are rewritten to ``n<id>``."""
        node_id = self._next_id
        self._next_id += 1
        labelled = conjunct.with_label(f"n{node_id}")
        node = ChaseNode(node_id=node_id, conjunct=labelled, level=level,
                         parent=parent, via=via)
        self._nodes[node_id] = node
        self._live_count += 1
        if level > self._max_level:
            self._max_level = level
        if parent is not None:
            if parent not in self._nodes:
                raise ChaseError(f"unknown parent node {parent}")
            if via is None:
                raise ChaseError("an ordinary arc must be labelled by its IND")
            self._arcs.append(ChaseArc(source=parent, target=node_id,
                                       dependency=via, kind="ordinary"))
            self._ordinary_targets.setdefault(parent, []).append(node_id)
        return node

    def add_cross_arc(self, source: int, target: int,
                      dependency: ArcDependency) -> ChaseArc:
        """Record that a required application was satisfied by ``target``."""
        if source not in self._nodes or target not in self._nodes:
            raise ChaseError("cross arc endpoints must be existing nodes")
        arc = ChaseArc(source=source, target=target, dependency=dependency, kind="cross")
        self._arcs.append(arc)
        return arc

    def retire_node(self, node_id: int) -> None:
        """Mark a node dead (it was merged into another by an FD step)."""
        node = self.node(node_id)
        if node.alive:
            node.alive = False
            self._live_count -= 1
            if node.level == self._max_level:
                self._max_level_dirty = True

    # -- access ----------------------------------------------------------------

    def node(self, node_id: int) -> ChaseNode:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise ChaseError(f"chase graph has no node {node_id}") from None

    def nodes(self, include_dead: bool = False) -> List[ChaseNode]:
        """Nodes in creation order (ids are assigned in creation order)."""
        if include_dead:
            return list(self._nodes.values())
        return [node for node in self._nodes.values() if node.alive]

    def __len__(self) -> int:
        return self._live_count

    def __iter__(self) -> Iterator[ChaseNode]:
        return iter(self.nodes())

    def arcs(self, kind: Optional[str] = None) -> List[ChaseArc]:
        if kind is None:
            return list(self._arcs)
        return [arc for arc in self._arcs if arc.kind == kind]

    def ordinary_arcs(self) -> List[ChaseArc]:
        return self.arcs("ordinary")

    def cross_arcs(self) -> List[ChaseArc]:
        return self.arcs("cross")

    def nodes_for_relation(self, relation: str, include_dead: bool = False) -> List[ChaseNode]:
        return [node for node in self.nodes(include_dead) if node.relation == relation]

    def conjuncts(self) -> List[Conjunct]:
        """The live conjuncts, in creation order."""
        return [node.conjunct for node in self.nodes()]

    def max_level(self) -> int:
        if self._max_level_dirty:
            self._max_level = max(
                (node.level for node in self._nodes.values() if node.alive),
                default=0)
            self._max_level_dirty = False
        return self._max_level

    def nodes_at_level(self, level: int) -> List[ChaseNode]:
        return [node for node in self.nodes() if node.level == level]

    def level_histogram(self) -> Dict[int, int]:
        """Number of live conjuncts at each level."""
        histogram: Dict[int, int] = {}
        for node in self.nodes():
            histogram[node.level] = histogram.get(node.level, 0) + 1
        return dict(sorted(histogram.items()))

    # -- paths -------------------------------------------------------------------

    def ancestors(self, node_id: int) -> List[ChaseNode]:
        """The ordinary-arc ancestor chain of a node, nearest first.

        Every node has at most one ordinary arc entering it (it was created
        by exactly one IND application), so the chain is unique — the fact
        Theorem 2 uses to bound certificate size.
        """
        chain: List[ChaseNode] = []
        current = self.node(node_id)
        seen: Set[int] = {node_id}
        while current.parent is not None:
            parent = self.node(current.parent)
            if parent.node_id in seen:
                raise ChaseError("cycle detected in ordinary arcs; chase graph corrupt")
            chain.append(parent)
            seen.add(parent.node_id)
            current = parent
        return chain

    def children(self, node_id: int) -> List[ChaseNode]:
        """Nodes created from ``node_id`` by an IND application.

        Served from an adjacency list maintained at arc creation (keyed by
        the arc's original source, which never changes), so FD merges can
        redirect a retired node's children without scanning every arc.
        """
        return [self.node(target) for target in self._ordinary_targets.get(node_id, ())]

    # -- rendering ------------------------------------------------------------------

    def describe(self, max_level: Optional[int] = None) -> str:
        """Level-by-level rendering (the shape of Figure 1)."""
        top = self.max_level() if max_level is None else max_level
        lines = [f"chase graph: {len(self)} conjuncts, "
                 f"{len(self.ordinary_arcs())} ordinary arcs, "
                 f"{len(self.cross_arcs())} cross arcs"]
        for level in range(top + 1):
            nodes = self.nodes_at_level(level)
            if not nodes:
                continue
            lines.append(f"  level {level}:")
            for node in nodes:
                via = f"  <- #{node.parent} by {node.via}" if node.parent is not None else ""
                lines.append(f"    #{node.node_id} {node.conjunct}{via}")
        return "\n".join(lines)
