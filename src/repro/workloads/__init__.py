"""Workload generators and the paper's named examples.

The benchmarks sweep over query size, dependency-set size, and IND width;
this package provides deterministic (seeded) generators for

* schemas (uniform arity or mixed),
* conjunctive queries (chain joins, star joins, random shapes),
* dependency sets (IND-only with a width bound, key-based sets whose keys
  and foreign keys follow the paper's definition),
* embedded TGD/EGD sets that are weakly acyclic by layered construction
  (for the general-Σ containment path),
* finite database instances (random, optionally repaired to satisfy Σ),
* view catalogs (chain projections, star collapses, key-join collapses)
  for the :mod:`repro.views` rewriting workloads,
* multi-tenant service traffic (Zipf-distributed tenants over generated
  schemas/queries/catalogs) in the :mod:`repro.service` wire format,

plus :mod:`repro.workloads.paper_examples`, which packages the three
worked examples of the paper (the EMP/DEP intro example, the Figure 1
chase, and the Section 4 finite-vs-infinite counterexample) as ready-made
objects used by the examples, tests, and benchmarks.
"""

from repro.workloads.schema_generator import SchemaGenerator
from repro.workloads.query_generator import QueryGenerator
from repro.workloads.dependency_generator import DependencyGenerator
from repro.workloads.embedded_generator import EmbeddedDependencyGenerator
from repro.workloads.database_generator import DatabaseGenerator
from repro.workloads.view_generator import ViewCatalogGenerator
from repro.workloads.traffic_generator import Tenant, TrafficGenerator
from repro.workloads.paper_examples import (
    figure1_example,
    intro_example,
    section4_example,
)

__all__ = [
    "DatabaseGenerator",
    "DependencyGenerator",
    "EmbeddedDependencyGenerator",
    "QueryGenerator",
    "SchemaGenerator",
    "Tenant",
    "TrafficGenerator",
    "ViewCatalogGenerator",
    "figure1_example",
    "intro_example",
    "section4_example",
]
