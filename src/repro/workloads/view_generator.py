"""Random (seeded) view-catalog generation.

Given any generated schema, the generator derives the view shapes real
materialization advisors propose:

* **chain projections** — two-atom join segments over consecutive
  relations with the endpoints projected out (the views that collapse a
  chain query's middle joins);
* **star collapses** — the fact relation joined with one dimension, fact
  join columns plus the dimension payload in the head;
* **key-join collapses** — for each foreign key ``R[X] ⊆ S[key]`` in a
  dependency set, the join of R with its target S, exposing R's columns
  and S's non-key payload (the intro example's DEPT_EMP view is exactly
  this shape for ``EMP[dept] ⊆ DEP[dept]``).

All heads are pairwise distinct distinguished variables, so every
generated view passes :class:`~repro.views.view.View` validation; the
unit tests assert this for every shape.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.dependencies.dependency_set import DependencySet
from repro.queries.conjunct import Conjunct
from repro.queries.conjunctive_query import ConjunctiveQuery
from repro.relational.schema import DatabaseSchema
from repro.terms.term import (
    Constant,
    DistinguishedVariable,
    NonDistinguishedVariable,
    Term,
)
from repro.views.view import View, ViewCatalog
from repro.workloads.query_generator import QueryGenerator


class ViewCatalogGenerator:
    """Derives plausible view catalogs from a schema (and optionally Σ)."""

    def __init__(self, schema: DatabaseSchema, seed: int = 0):
        self._schema = schema
        self._rng = random.Random(seed)
        self._queries = QueryGenerator(schema, seed=seed)

    # -- chain projections -------------------------------------------------

    def chain_projections(self, segment_length: int = 2,
                          relation_names: Optional[Sequence[str]] = None,
                          prefix: str = "VC") -> List[View]:
        """One view per consecutive relation pair (round-robin windows).

        The i-th view joins ``segment_length`` relations starting at the
        i-th name and projects the chain endpoints — the shape that
        absorbs the middle joins of a chain query.
        """
        names = list(relation_names) if relation_names else self._schema.relation_names
        usable = [name for name in names if self._schema.relation(name).arity >= 2]
        views: List[View] = []
        if not usable:
            return views
        for index in range(len(usable)):
            window = [usable[(index + offset) % len(usable)]
                      for offset in range(segment_length)]
            definition = self._queries.chain(
                segment_length, relation_names=window,
                name=f"{prefix}{index + 1}")
            views.append(View(f"{prefix}{index + 1}", definition))
        return views

    # -- star collapses ----------------------------------------------------

    def star_collapses(self, fact_relation: str,
                       dimension_relations: Sequence[str],
                       prefix: str = "VS") -> List[View]:
        """One view per dimension: the fact joined with that dimension.

        The i-th dimension joins on the fact's i-th column (the
        :meth:`~repro.workloads.query_generator.QueryGenerator.star`
        convention); the head carries the fact's join columns plus the
        dimension's payload columns.
        """
        fact = self._schema.relation(fact_relation)
        views: List[View] = []
        for index, dimension_name in enumerate(dimension_relations):
            dimension = self._schema.relation(dimension_name)
            join_variables = [DistinguishedVariable(f"x{i + 1}")
                              for i in range(len(dimension_relations))]
            fact_terms: List[Term] = list(join_variables)
            for extra in range(len(join_variables), fact.arity):
                fact_terms.append(NonDistinguishedVariable(f"f{extra + 1}"))
            payload = [DistinguishedVariable(f"p{index + 1}_{i}")
                       for i in range(1, dimension.arity)]
            dimension_terms: List[Term] = [join_variables[index], *payload]
            definition = ConjunctiveQuery(
                input_schema=self._schema,
                conjuncts=[Conjunct(fact.name, fact_terms[:fact.arity]),
                           Conjunct(dimension.name, dimension_terms)],
                summary_row=tuple(join_variables) + tuple(payload),
                name=f"{prefix}{index + 1}",
            )
            views.append(View(f"{prefix}{index + 1}", definition))
        return views

    # -- key-join collapses ------------------------------------------------

    def key_join_collapses(self, dependencies: DependencySet,
                           prefix: str = "VK") -> List[View]:
        """One view per IND: the source joined with its target on the IND.

        For ``R[X] ⊆ S[Y]`` the view body is ``R(r1..rk), S(..)`` with
        S's Y-columns bound to R's X-columns; the head exposes all of R's
        columns plus S's remaining (payload) columns.  Under a key-based
        Σ this is the join the foreign key makes lossless — the paper's
        intro optimization packaged as a materialized view.
        """
        views: List[View] = []
        for position, ind in enumerate(dependencies.inclusion_dependencies()):
            source = self._schema.relation(ind.lhs_relation)
            target = self._schema.relation(ind.rhs_relation)
            if source.name == target.name:
                continue
            source_terms = [DistinguishedVariable(f"r{i + 1}")
                            for i in range(source.arity)]
            lhs = ind.lhs_positions(self._schema)
            rhs = ind.rhs_positions(self._schema)
            joined = {target_position: source_terms[source_position]
                      for source_position, target_position in zip(lhs, rhs)}
            payload: List[DistinguishedVariable] = []
            target_terms: List[Term] = []
            for column in range(target.arity):
                if column in joined:
                    target_terms.append(joined[column])
                else:
                    variable = DistinguishedVariable(f"s{position + 1}_{column + 1}")
                    target_terms.append(variable)
                    payload.append(variable)
            definition = ConjunctiveQuery(
                input_schema=self._schema,
                conjuncts=[Conjunct(source.name, source_terms),
                           Conjunct(target.name, target_terms)],
                summary_row=tuple(source_terms) + tuple(payload),
                name=f"{prefix}{position + 1}",
            )
            views.append(View(f"{prefix}{position + 1}", definition))
        return views

    # -- LAV catalog scale -------------------------------------------------

    def lav_catalog(self, size: int,
                    dependencies: Optional[DependencySet] = None,
                    prefix: str = "VL") -> ViewCatalog:
        """A LAV-style catalog of ``size`` distinct views (catalog scale).

        The local-as-view shape: every view is a small definition over
        one or two base relations — column projections, selections
        pinning a column to a constant, and binary joins — cycled
        deterministically over the schema's relations.  This is exactly
        the catalog a signature-indexed rewriter prunes well: a query
        touching a handful of relations can only be answered by the
        views whose bodies mention them, and in a wide schema that is a
        small fraction of the catalog.  Key-join collapses (when
        ``dependencies`` is given) seed the pool so the
        dependency-blessed views are always present.  Sizes from a few
        views to a few thousand are practical; names are
        ``{prefix}<serial>`` and therefore pairwise distinct.
        """
        if size <= 0:
            raise ValueError("size must be positive")
        relations = [self._schema.relation(name)
                     for name in self._schema.relation_names]
        if not relations:
            raise ValueError("lav_catalog needs a schema with relations")
        views: List[View] = []
        if dependencies is not None:
            views.extend(self.key_join_collapses(
                dependencies, prefix=f"{prefix}K")[:size])
        serial = 0
        while len(views) < size:
            serial += 1
            name = f"{prefix}{serial}"
            relation = relations[(serial // 3) % len(relations)]
            shape = serial % 3
            if shape == 1 and relation.arity >= 2:
                views.append(self._selection_view(name, relation, serial))
            elif shape == 2:
                other = relations[(serial // 3 + 1) % len(relations)]
                views.append(self._binary_join_view(name, relation, other,
                                                    serial))
            else:
                views.append(self._projection_view(name, relation, serial))
        catalog = ViewCatalog(schema=self._schema)
        for view in views[:size]:
            catalog.add(view)
        return catalog

    def _projection_view(self, name: str, relation, serial: int) -> View:
        """Keep a serial-dependent prefix of columns, hide the rest."""
        keep = 1 + (serial % relation.arity)
        terms: List[Term] = []
        head: List[DistinguishedVariable] = []
        for position in range(relation.arity):
            if position < keep:
                variable = DistinguishedVariable(f"h{position + 1}")
                head.append(variable)
                terms.append(variable)
            else:
                terms.append(NonDistinguishedVariable(f"n{position + 1}"))
        definition = ConjunctiveQuery(
            input_schema=self._schema,
            conjuncts=[Conjunct(relation.name, terms)],
            summary_row=tuple(head), name=name)
        return View(name, definition)

    def _selection_view(self, name: str, relation, serial: int) -> View:
        """Pin one column to a constant, expose the others."""
        pinned = serial % relation.arity
        terms: List[Term] = []
        head: List[DistinguishedVariable] = []
        for position in range(relation.arity):
            if position == pinned:
                terms.append(Constant(serial % 7))
            else:
                variable = DistinguishedVariable(f"h{position + 1}")
                head.append(variable)
                terms.append(variable)
        definition = ConjunctiveQuery(
            input_schema=self._schema,
            conjuncts=[Conjunct(relation.name, terms)],
            summary_row=tuple(head), name=name)
        return View(name, definition)

    def _binary_join_view(self, name: str, left, right,
                          serial: int) -> View:
        """Join two relations on one column; expose the left side."""
        join_left = serial % left.arity
        join_right = serial % right.arity
        shared = DistinguishedVariable("j1")
        head: List[DistinguishedVariable] = [shared]
        left_terms: List[Term] = []
        for position in range(left.arity):
            if position == join_left:
                left_terms.append(shared)
            else:
                variable = DistinguishedVariable(f"l{position + 1}")
                head.append(variable)
                left_terms.append(variable)
        right_terms: List[Term] = [
            shared if position == join_right
            else NonDistinguishedVariable(f"r{position + 1}")
            for position in range(right.arity)]
        definition = ConjunctiveQuery(
            input_schema=self._schema,
            conjuncts=[Conjunct(left.name, left_terms),
                       Conjunct(right.name, right_terms)],
            summary_row=tuple(head), name=name)
        return View(name, definition)

    # -- catalog assembly --------------------------------------------------

    def catalog(self, size: int,
                dependencies: Optional[DependencySet] = None) -> ViewCatalog:
        """A catalog of ``size`` views sampled from the schema-generic shapes.

        The pool holds key-join collapses (when ``dependencies`` is
        given) first — they are the views the dependencies make most
        useful — then chain projections; the sample is deterministic in
        the seed.  Star collapses need an explicit fact/dimension
        designation no bare schema carries, so they are not pooled here —
        call :meth:`star_collapses` directly and ``add`` the results.
        """
        pool: List[View] = []
        if dependencies is not None:
            pool.extend(self.key_join_collapses(dependencies))
        pool.extend(self.chain_projections())
        if len(pool) > size:
            indices = sorted(self._rng.sample(range(len(pool)), size))
            pool = [pool[i] for i in indices]
        catalog = ViewCatalog(schema=self._schema)
        for view in pool:
            catalog.add(view)
        return catalog
