"""Random (seeded) finite database generation.

Used by the finite-containment experiments (Section 4) and by the tests
that cross-validate the two evaluators.  Databases can be generated
free-form, forced to satisfy a dependency set by chase repair, or built to
satisfy a key-based set directly (keys unique by construction, foreign
keys resolved by construction).
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional

from repro.chase.instance_chase import chase_instance
from repro.dependencies.dependency_set import DependencySet
from repro.dependencies.violations import database_satisfies
from repro.relational.database import Database
from repro.relational.schema import DatabaseSchema


class DatabaseGenerator:
    """Generates finite database instances over a given schema."""

    def __init__(self, schema: DatabaseSchema, seed: int = 0):
        self._schema = schema
        self._rng = random.Random(seed)

    def random(self, tuples_per_relation: int = 5, domain_size: int = 6) -> Database:
        """A uniformly random database over an integer domain."""
        database = Database(self._schema)
        for relation in self._schema:
            for _ in range(tuples_per_relation):
                row = tuple(self._rng.randrange(domain_size) for _ in range(relation.arity))
                database.add(relation.name, row)
        return database

    def satisfying(self, dependencies: DependencySet,
                   tuples_per_relation: int = 4, domain_size: int = 6,
                   attempts: int = 25, repair_steps: int = 500) -> Optional[Database]:
        """A random database that satisfies Σ, or ``None`` after ``attempts`` tries.

        Each attempt draws a random database and, when it violates Σ, tries
        to repair it with the instance chase; attempts whose repair fails
        (hard FD violation) or does not terminate within ``repair_steps``
        are discarded.
        """
        for attempt in range(attempts):
            database = self.random(tuples_per_relation, domain_size)
            if database_satisfies(database, dependencies):
                return database
            if dependencies.has_embedded():
                # The instance chase only repairs FDs and INDs; for
                # embedded Σ, rejection sampling is all we can do.
                continue
            repaired = chase_instance(database, dependencies, max_steps=repair_steps)
            if repaired.succeeded:
                return repaired.database
        return None

    def key_based_instance(self, dependencies: DependencySet,
                           tuples_per_relation: int = 5, domain_size: int = 20) -> Database:
        """A database satisfying a *key-based* Σ by construction.

        Keys are made unique by numbering them; every foreign-key value is
        drawn from the referenced relation's existing key values, so all
        INDs hold, and key uniqueness makes all FDs hold.
        """
        if not dependencies.is_key_based(self._schema):
            raise ValueError("key_based_instance requires a key-based dependency set")
        database = Database(self._schema)
        keys: Dict[str, List[Any]] = {}

        # First pass: populate every relation with unique keys and random payloads.
        for relation in self._schema:
            key_attributes = dependencies.key_of(relation.name, self._schema) or set()
            key_positions = {relation.position_of(a) for a in key_attributes}
            keys[relation.name] = []
            for row_index in range(tuples_per_relation):
                row = []
                for position in range(relation.arity):
                    if position in key_positions:
                        row.append(f"{relation.name}:{row_index}")
                    else:
                        row.append(self._rng.randrange(domain_size))
                database.add(relation.name, row)

        # Second pass: rewrite foreign-key columns to reference existing keys.
        for ind in dependencies.inclusion_dependencies():
            source = database.relation(ind.lhs_relation)
            target = database.relation(ind.rhs_relation)
            lhs_positions = ind.lhs_positions(self._schema)
            rhs_positions = ind.rhs_positions(self._schema)
            target_values = [tuple(row[p] for p in rhs_positions) for row in target]
            if not target_values:
                continue
            rewritten = []
            for row in source.rows():
                chosen = self._rng.choice(target_values)
                new_row = list(row)
                for offset, position in enumerate(lhs_positions):
                    new_row[position] = chosen[offset]
                rewritten.append(tuple(new_row))
            source.clear()
            source.add_all(rewritten)
        return database
