"""Random (seeded) conjunctive-query generation.

Three shapes are provided because they stress the containment procedure
differently:

* **chain** queries ``R1(x0, x1), R2(x1, x2), ...`` — long joins with
  little branching; containment mappings are forced along the chain;
* **star** queries ``FACT(x1..xn), DIM1(x1, y1), ...`` — the natural
  key-based / foreign-key workload;
* **random** queries — atoms over random relations with variables drawn
  from a bounded pool, which produces repeated variables and higher
  homomorphism branching.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.queries.conjunct import Conjunct
from repro.queries.conjunctive_query import ConjunctiveQuery
from repro.relational.schema import DatabaseSchema
from repro.terms.term import DistinguishedVariable, NonDistinguishedVariable, Term, Variable


class QueryGenerator:
    """Generates conjunctive queries over a given schema."""

    def __init__(self, schema: DatabaseSchema, seed: int = 0):
        self._schema = schema
        self._rng = random.Random(seed)

    # -- helpers ----------------------------------------------------------------

    def _variable(self, name: str, distinguished: bool) -> Variable:
        if distinguished:
            return DistinguishedVariable(name)
        return NonDistinguishedVariable(name)

    # -- chain queries ------------------------------------------------------------

    def chain(self, length: int, relation_names: Optional[Sequence[str]] = None,
              name: str = "Qchain") -> ConjunctiveQuery:
        """A chain of binary joins over ``length`` atoms.

        Each atom R_i(x_{i-1}, x_i, fresh...) joins its first column to the
        previous atom's second column; the head returns the two endpoints
        of the chain.  Relations are taken round-robin from
        ``relation_names`` (default: all relations of the schema, in order)
        and must have arity at least 2.
        """
        if length < 1:
            raise ValueError("chain length must be at least 1")
        names = list(relation_names) if relation_names else self._schema.relation_names
        start = DistinguishedVariable("x0")
        end = DistinguishedVariable(f"x{length}")
        conjuncts: List[Conjunct] = []
        previous: Variable = start
        for index in range(1, length + 1):
            relation = self._schema.relation(names[(index - 1) % len(names)])
            current: Variable = end if index == length else NonDistinguishedVariable(f"x{index}")
            terms: List[Term] = [previous, current]
            for extra in range(2, relation.arity):
                terms.append(NonDistinguishedVariable(f"z{index}_{extra}"))
            conjuncts.append(Conjunct(relation.name, terms[:relation.arity]))
            previous = current
        return ConjunctiveQuery(
            input_schema=self._schema, conjuncts=conjuncts,
            summary_row=(start, end), name=name,
        )

    # -- star queries ----------------------------------------------------------------

    def star(self, fact_relation: str, dimension_relations: Sequence[str],
             name: str = "Qstar") -> ConjunctiveQuery:
        """A star join: the fact atom joined to each dimension on one column.

        The i-th dimension joins on the fact's i-th column; the head
        returns the fact's join columns.
        """
        fact = self._schema.relation(fact_relation)
        if len(dimension_relations) > fact.arity:
            raise ValueError("more dimensions than fact columns")
        join_variables = [DistinguishedVariable(f"x{i + 1}")
                          for i in range(len(dimension_relations))]
        fact_terms: List[Term] = list(join_variables)
        for extra in range(len(join_variables), fact.arity):
            fact_terms.append(NonDistinguishedVariable(f"f{extra + 1}"))
        conjuncts = [Conjunct(fact.name, fact_terms)]
        for index, dimension_name in enumerate(dimension_relations):
            dimension = self._schema.relation(dimension_name)
            terms: List[Term] = [join_variables[index]]
            for extra in range(1, dimension.arity):
                terms.append(NonDistinguishedVariable(f"d{index + 1}_{extra}"))
            conjuncts.append(Conjunct(dimension.name, terms))
        return ConjunctiveQuery(
            input_schema=self._schema, conjuncts=conjuncts,
            summary_row=tuple(join_variables), name=name,
        )

    # -- random queries -----------------------------------------------------------------

    def random(self, atom_count: int, variable_pool: int = 6,
               distinguished_count: int = 1, constant_probability: float = 0.0,
               name: str = "Qrand") -> ConjunctiveQuery:
        """A random query with ``atom_count`` atoms over a bounded variable pool.

        Variables are reused across atoms (that is what makes containment
        non-trivial); with ``constant_probability`` > 0, entries are
        occasionally replaced by small integer constants.  The head uses
        the first ``distinguished_count`` pool variables, and an atom
        containing each head variable is appended if needed so the query
        stays safe.
        """
        if atom_count < 1:
            raise ValueError("atom_count must be at least 1")
        distinguished = [DistinguishedVariable(f"x{i + 1}") for i in range(distinguished_count)]
        pool: List[Variable] = list(distinguished)
        pool.extend(NonDistinguishedVariable(f"y{i + 1}")
                    for i in range(max(variable_pool - distinguished_count, 1)))
        relation_names = self._schema.relation_names

        def random_term() -> Term:
            if self._rng.random() < constant_probability:
                from repro.terms.term import Constant
                return Constant(self._rng.randint(0, 2))
            return self._rng.choice(pool)

        conjuncts: List[Conjunct] = []
        for _ in range(atom_count):
            relation = self._schema.relation(self._rng.choice(relation_names))
            conjuncts.append(Conjunct(relation.name, [random_term() for _ in range(relation.arity)]))

        # Keep the query safe: every head variable must occur in the body.
        used = {term for conjunct in conjuncts for term in conjunct.terms}
        for variable in distinguished:
            if variable not in used:
                relation = self._schema.relation(self._rng.choice(relation_names))
                terms: List[Term] = [variable]
                terms.extend(self._rng.choice(pool) for _ in range(relation.arity - 1))
                conjuncts.append(Conjunct(relation.name, terms))
        return ConjunctiveQuery(
            input_schema=self._schema, conjuncts=conjuncts,
            summary_row=tuple(distinguished), name=name,
        )

    # -- derived queries ------------------------------------------------------------------

    def weakened(self, query: ConjunctiveQuery, drop_count: int = 1,
                 name: Optional[str] = None) -> ConjunctiveQuery:
        """Drop ``drop_count`` random conjuncts (producing a containing query).

        The result always contains the original (fewer conjuncts means a
        weaker query), so pairs ``(query, weakened(query))`` are known
        positive containment instances for the benchmarks.
        """
        if drop_count >= len(query):
            raise ValueError("cannot drop all conjuncts")
        labels = [conjunct.label for conjunct in query.conjuncts]
        to_drop = set(self._rng.sample(labels, drop_count))
        kept = [conjunct for conjunct in query.conjuncts if conjunct.label not in to_drop]
        # Dropping atoms can make the query unsafe; put back any atom whose
        # removal would orphan a head variable.
        used = {term for conjunct in kept for term in conjunct.terms}
        for conjunct in query.conjuncts:
            if conjunct.label in to_drop:
                if any(entry not in used and not entry.is_constant
                       for entry in query.summary_row):
                    kept.append(conjunct)
                    used |= conjunct.symbols()
        return ConjunctiveQuery(
            input_schema=query.input_schema, conjuncts=kept,
            summary_row=query.summary_row, name=name or f"{query.name}_weak",
        )
