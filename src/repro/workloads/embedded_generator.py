"""Random (seeded) embedded-dependency generation.

Two families matter for exercising the general-Σ containment path:

* **weakly-acyclic TGD/EGD sets** — acyclicity is guaranteed *by
  construction*: the schema's relations are ordered, every TGD's body
  uses only relations strictly below its head's relation, so every edge
  of the dependency position graph increases the relation index and no
  cycle (existential or otherwise) can form.  These sets chase to
  saturation and yield exact containment verdicts;
* **IND-expressible pairs** — a weakly-acyclic IND set together with its
  :meth:`~repro.dependencies.inclusion.InclusionDependency.as_tgd`
  normalization, used to certify that the general TGD machinery and the
  native IND fast path produce identical verdicts (and by the embedded-
  chase benchmark to price the generality).

Every generated set passes :func:`repro.chase.termination.analyse_termination`
with ``weakly_acyclic=True``, which the unit tests assert.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.dependencies.dependency_set import DependencySet
from repro.dependencies.embedded import EGD, TGD
from repro.dependencies.inclusion import InclusionDependency
from repro.queries.conjunct import Conjunct
from repro.relational.schema import DatabaseSchema
from repro.terms.term import Variable


class EmbeddedDependencyGenerator:
    """Generates weakly-acyclic TGD/EGD sets over a given schema."""

    def __init__(self, schema: DatabaseSchema, seed: int = 0):
        if len(list(schema)) < 2:
            raise ValueError(
                "embedded-dependency generation needs at least two relations")
        self._schema = schema
        self._rng = random.Random(seed)
        self._relations = list(schema)

    # -- single rules ------------------------------------------------------------

    def random_tgd(self, max_body_atoms: int = 2) -> TGD:
        """One layered TGD: body relations strictly below the head relation.

        Body variables are drawn from a shared pool so multi-atom bodies
        join; each head column holds a frontier variable or a fresh
        existential one (at least one of each where arities permit).
        """
        head_index = self._rng.randrange(1, len(self._relations))
        head_relation = self._relations[head_index]
        body_count = self._rng.randint(1, max(1, min(max_body_atoms, head_index)))
        body_relations = [self._relations[i] for i in
                          sorted(self._rng.sample(range(head_index), body_count))]

        pool_size = max(2, max(r.arity for r in body_relations))
        pool = [Variable(f"x{i + 1}") for i in range(pool_size)]
        body: List[Conjunct] = []
        used: List[Variable] = []
        for relation in body_relations:
            terms = [self._rng.choice(pool) for _ in range(relation.arity)]
            body.append(Conjunct(relation.name, terms))
            used.extend(term for term in terms if term not in used)

        head_terms: List[Variable] = []
        existential_count = 0
        for column in range(head_relation.arity):
            # Keep the last column existential so the TGD is never full
            # by accident (full TGDs are legal but exercise less).
            make_existential = (column == head_relation.arity - 1
                                or self._rng.random() < 0.4)
            if make_existential:
                existential_count += 1
                head_terms.append(Variable(f"z{existential_count}"))
            else:
                head_terms.append(self._rng.choice(used))
        return TGD(body, [Conjunct(head_relation.name, head_terms)])

    def random_egd(self) -> EGD:
        """One FD-shaped EGD on a random relation of arity at least two."""
        candidates = [r for r in self._relations if r.arity >= 2]
        if not candidates:
            raise ValueError("an EGD needs a relation of arity >= 2")
        relation = self._rng.choice(candidates)
        key_column = self._rng.randrange(relation.arity)
        value_column = self._rng.choice(
            [c for c in range(relation.arity) if c != key_column])
        first = [Variable(f"x{i + 1}") for i in range(relation.arity)]
        second = [first[i] if i == key_column else Variable(f"y{i + 1}")
                  for i in range(relation.arity)]
        return EGD([Conjunct(relation.name, first), Conjunct(relation.name, second)],
                   first[value_column], second[value_column])

    # -- sets --------------------------------------------------------------------

    def weakly_acyclic(self, tgd_count: int, egd_count: int = 0,
                       max_body_atoms: int = 2) -> DependencySet:
        """``tgd_count`` layered TGDs plus ``egd_count`` EGDs (one Σ).

        Weakly acyclic by construction; duplicates are skipped, so very
        small schemas may yield fewer rules than asked.
        """
        dependencies = DependencySet(schema=self._schema)
        attempts = 0
        while (len(dependencies.tgds()) < tgd_count
               and attempts < max(tgd_count, 1) * 50):
            attempts += 1
            dependencies.add(self.random_tgd(max_body_atoms=max_body_atoms))
        attempts = 0
        while (len(dependencies.egds()) < egd_count
               and attempts < max(egd_count, 1) * 50):
            attempts += 1
            dependencies.add(self.random_egd())
        return dependencies

    def ind_expressible(self, count: int,
                        max_width: int = 2) -> Tuple[DependencySet, DependencySet]:
        """A weakly-acyclic IND set and its TGD normalization, as a pair.

        INDs point from lower-indexed relations to strictly higher ones,
        so the position graph is layered exactly like
        :meth:`weakly_acyclic`; the second element is the same Σ with
        every IND rewritten by ``as_tgd``.  The two express identical
        constraints, which the equivalence tests and the embedded-chase
        benchmark rely on.
        """
        inds = DependencySet(schema=self._schema)
        attempts = 0
        while len(inds) < count and attempts < max(count, 1) * 50:
            attempts += 1
            source_index = self._rng.randrange(len(self._relations) - 1)
            target_index = self._rng.randrange(source_index + 1, len(self._relations))
            source = self._relations[source_index]
            target = self._relations[target_index]
            width = self._rng.randint(1, max(1, min(max_width, source.arity,
                                                    target.arity)))
            lhs = self._rng.sample(range(1, source.arity + 1), width)
            rhs = self._rng.sample(range(1, target.arity + 1), width)
            inds.add(InclusionDependency(source.name, lhs, target.name, rhs))
        return inds, inds.normalized_embedded(self._schema)
