"""The paper's worked examples as ready-made objects.

Three examples appear in the paper and recur throughout the library's
tests, examples, and benchmarks:

* the **intro example** (Section 1): EMP/DEP with the foreign key
  ``EMP[department] ⊆ DEP[department]`` making Q1 and Q2 equivalent;
* the **Figure 1 example** (Section 3): the single-atom query whose
  O-chase and R-chase are both infinite under the three INDs
  ``R[1] ⊆ T[1]``, ``R[1,3] ⊆ S[1,2]``, ``S[1,3] ⊆ R[1,2]``;
* the **Section 4 example**: Σ = {R: 2 → 1, R[2] ⊆ R[1]} with two queries
  equivalent over finite databases but not over all databases.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.containment.finite import Section4Example, section4_counterexample
from repro.dependencies.dependency_set import DependencySet
from repro.dependencies.functional import FunctionalDependency
from repro.dependencies.inclusion import InclusionDependency
from repro.queries.builder import QueryBuilder
from repro.queries.conjunctive_query import ConjunctiveQuery
from repro.relational.schema import DatabaseSchema


class IntroExample(NamedTuple):
    """Section 1's EMP/DEP example."""

    schema: DatabaseSchema
    dependencies: DependencySet
    q1: ConjunctiveQuery
    q2: ConjunctiveQuery


def intro_example() -> IntroExample:
    """EMP(emp, sal, dept), DEP(dept, loc) with EMP[dept] ⊆ DEP[dept].

    Q1 asks for employees that have a department *with a location*; Q2
    asks only for employees.  Under the IND they are equivalent; without
    it only ``Q1 ⊆ Q2`` holds.
    """
    schema = DatabaseSchema.from_dict({
        "EMP": ["emp", "sal", "dept"],
        "DEP": ["dept", "loc"],
    })
    dependencies = DependencySet(
        [InclusionDependency("EMP", ["dept"], "DEP", ["dept"])], schema=schema)
    q1 = (
        QueryBuilder(schema, "Q1")
        .head("e")
        .atom("EMP", "e", "s", "d")
        .atom("DEP", "d", "l")
        .build()
    )
    q2 = (
        QueryBuilder(schema, "Q2")
        .head("e")
        .atom("EMP", "e", "s", "d")
        .build()
    )
    return IntroExample(schema=schema, dependencies=dependencies, q1=q1, q2=q2)


def intro_example_key_based() -> IntroExample:
    """The intro example upgraded to a key-based set.

    DEP's key is ``dept`` (an FD ``DEP: dept → loc``), and the foreign key
    ``EMP[dept] ⊆ DEP[dept]`` targets that key while staying off EMP's key
    ``emp`` — the canonical key-based shape.  The same containment facts
    hold as in :func:`intro_example`.
    """
    base = intro_example()
    dependencies = DependencySet(
        [
            FunctionalDependency("DEP", ["dept"], "loc"),
            FunctionalDependency("EMP", ["emp"], "sal"),
            FunctionalDependency("EMP", ["emp"], "dept"),
            InclusionDependency("EMP", ["dept"], "DEP", ["dept"]),
        ],
        schema=base.schema,
    )
    return IntroExample(schema=base.schema, dependencies=dependencies,
                        q1=base.q1, q2=base.q2)


class Figure1Example(NamedTuple):
    """Section 3's Figure 1: a query with infinite O- and R-chases."""

    schema: DatabaseSchema
    dependencies: DependencySet
    query: ConjunctiveQuery


def figure1_example() -> Figure1Example:
    """{(c): ∃a, b R(a, b, c)} under R[1]⊆T[1], R[1,3]⊆S[1,2], S[1,3]⊆R[1,2]."""
    schema = DatabaseSchema.from_dict({
        "R": ["r1", "r2", "r3"],
        "S": ["s1", "s2", "s3"],
        "T": ["t1", "t2"],
    })
    dependencies = DependencySet(
        [
            InclusionDependency("R", [1], "T", [1]),
            InclusionDependency("R", [1, 3], "S", [1, 2]),
            InclusionDependency("S", [1, 3], "R", [1, 2]),
        ],
        schema=schema,
    )
    query = (
        QueryBuilder(schema, "Qfig1")
        .head("c")
        .atom("R", "a", "b", "c")
        .build()
    )
    return Figure1Example(schema=schema, dependencies=dependencies, query=query)


def section4_example() -> Section4Example:
    """Alias of :func:`repro.containment.finite.section4_counterexample`."""
    return section4_counterexample()
