"""Random (seeded) database schema generation."""

from __future__ import annotations

import random
from typing import Optional

from repro.relational.schema import DatabaseSchema, RelationSchema


class SchemaGenerator:
    """Generates database schemas with controllable size and arity."""

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)

    def relation(self, name: str, arity: int) -> RelationSchema:
        """One relation ``name(a1, ..., a<arity>)``."""
        return RelationSchema(name, [f"a{i}" for i in range(1, arity + 1)])

    def uniform(self, relation_count: int, arity: int, prefix: str = "R") -> DatabaseSchema:
        """``relation_count`` relations, all with the same arity."""
        schema = DatabaseSchema()
        for index in range(1, relation_count + 1):
            schema.add(self.relation(f"{prefix}{index}", arity))
        return schema

    def mixed(self, relation_count: int, min_arity: int = 2, max_arity: int = 4,
              prefix: str = "R") -> DatabaseSchema:
        """Relations with arities drawn uniformly from [min_arity, max_arity]."""
        schema = DatabaseSchema()
        for index in range(1, relation_count + 1):
            arity = self._rng.randint(min_arity, max_arity)
            schema.add(self.relation(f"{prefix}{index}", arity))
        return schema

    def star(self, satellite_count: int, fact_arity: Optional[int] = None) -> DatabaseSchema:
        """A star schema: one fact relation plus ``satellite_count`` dimensions.

        The fact relation's first ``satellite_count`` columns are foreign
        keys (one per dimension); each dimension has a 2-column schema
        (key, payload).  This is the natural key-based workload shape.
        """
        arity = fact_arity if fact_arity is not None else satellite_count + 1
        if arity < satellite_count:
            raise ValueError("fact arity must be at least the number of satellites")
        schema = DatabaseSchema()
        schema.add_relation("FACT", [f"f{i}" for i in range(1, arity + 1)])
        for index in range(1, satellite_count + 1):
            schema.add_relation(f"DIM{index}", [f"k{index}", f"p{index}"])
        return schema
