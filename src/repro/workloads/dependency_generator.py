"""Random (seeded) dependency-set generation.

Two families matter for the paper's experiments:

* **IND-only sets** with a controllable maximum width (Theorem 2(i));
* **key-based sets** built the way real schemas are: each relation gets a
  key (the first column by default) and foreign keys from non-key columns
  of one relation into the key of another (Theorem 2(ii)).

Both generators only produce dependency sets that pass the corresponding
classification test, which the unit tests assert.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.dependencies.dependency_set import DependencySet
from repro.dependencies.functional import FunctionalDependency
from repro.dependencies.inclusion import InclusionDependency
from repro.relational.schema import DatabaseSchema, RelationSchema


class DependencyGenerator:
    """Generates FD/IND sets over a given schema."""

    def __init__(self, schema: DatabaseSchema, seed: int = 0):
        self._schema = schema
        self._rng = random.Random(seed)

    # -- IND-only sets -----------------------------------------------------------

    def random_ind(self, max_width: int = 1) -> InclusionDependency:
        """One random IND between two relations of the schema.

        The width is drawn between 1 and ``max_width`` (capped by the two
        relations' arities); attribute positions on each side are distinct
        and randomly chosen.
        """
        relations = list(self._schema)
        source = self._rng.choice(relations)
        target = self._rng.choice(relations)
        width = self._rng.randint(1, max(1, min(max_width, source.arity, target.arity)))
        lhs = self._rng.sample(range(1, source.arity + 1), width)
        rhs = self._rng.sample(range(1, target.arity + 1), width)
        return InclusionDependency(source.name, lhs, target.name, rhs)

    def ind_only(self, count: int, max_width: int = 1,
                 avoid_trivial: bool = True) -> DependencySet:
        """``count`` random INDs (no FDs), optionally skipping trivial ones."""
        dependencies = DependencySet(schema=self._schema)
        attempts = 0
        while len(dependencies) < count and attempts < count * 50:
            attempts += 1
            ind = self.random_ind(max_width=max_width)
            if avoid_trivial and ind.is_trivial:
                continue
            dependencies.add(ind)
        return dependencies

    def cyclic_ind_chain(self, relation_names: Optional[Sequence[str]] = None,
                         width: int = 1) -> DependencySet:
        """A cycle ``R1[..] ⊆ R2[..] ⊆ ... ⊆ R1[..]`` — guaranteed infinite chases.

        Each IND copies the last ``width`` columns of its source into the
        first ``width`` columns of its target, which (with fresh NDVs in the
        other columns) never saturates: this is the Figure 1 pattern
        generalised, used by the chase-growth benchmarks.
        """
        names = list(relation_names) if relation_names else self._schema.relation_names
        dependencies = DependencySet(schema=self._schema)
        for index, name in enumerate(names):
            source = self._schema.relation(name)
            target = self._schema.relation(names[(index + 1) % len(names)])
            effective = max(1, min(width, source.arity, target.arity))
            lhs = list(range(source.arity - effective + 1, source.arity + 1))
            rhs = list(range(1, effective + 1))
            dependencies.add(InclusionDependency(source.name, lhs, target.name, rhs))
        return dependencies

    # -- key-based sets ----------------------------------------------------------------

    def key_fds(self, relation: RelationSchema, key_width: int = 1) -> List[FunctionalDependency]:
        """FDs declaring the first ``key_width`` columns the key of the relation."""
        key = [relation.attribute_name_at(i) for i in range(min(key_width, relation.arity - 1))]
        if not key:
            key = [relation.attribute_name_at(0)]
        return FunctionalDependency.key(relation, key)

    def key_based(self, foreign_key_count: int, key_width: int = 1) -> DependencySet:
        """A key-based set: keys for every relation plus random foreign keys.

        Foreign keys go from non-key columns of one relation into (a prefix
        of) the key of another, so conditions (a) and (b) of the paper's
        definition hold by construction; the unit tests assert
        ``is_key_based`` on every generated set.
        """
        dependencies = DependencySet(schema=self._schema)
        keys = {}
        for relation in self._schema:
            fds = self.key_fds(relation, key_width=key_width)
            keys[relation.name] = [relation.attribute_name_at(i)
                                   for i in range(min(key_width, relation.arity - 1)) ] or \
                                  [relation.attribute_name_at(0)]
            for fd in fds:
                dependencies.add(fd)

        relations = list(self._schema)
        attempts = 0
        added = 0
        while added < foreign_key_count and attempts < foreign_key_count * 50:
            attempts += 1
            source = self._rng.choice(relations)
            target = self._rng.choice(relations)
            source_key = set(keys[source.name])
            non_key_columns = [a for a in source.attribute_names if a not in source_key]
            if not non_key_columns:
                continue
            target_key = keys[target.name]
            width = self._rng.randint(1, min(len(non_key_columns), len(target_key)))
            lhs = self._rng.sample(non_key_columns, width)
            rhs = target_key[:width]
            ind = InclusionDependency(source.name, lhs, target.name, rhs)
            if ind not in dependencies:
                dependencies.add(ind)
                added += 1
        return dependencies

    def foreign_key(self, source: str, source_columns: Sequence[str],
                    target: str, key_width: Optional[int] = None) -> DependencySet:
        """Key FDs for ``target`` plus one IND from ``source_columns`` into its key."""
        target_schema = self._schema.relation(target)
        width = key_width if key_width is not None else len(source_columns)
        key = [target_schema.attribute_name_at(i) for i in range(width)]
        dependencies = DependencySet(schema=self._schema)
        for fd in FunctionalDependency.key(target_schema, key):
            dependencies.add(fd)
        dependencies.add(InclusionDependency(source, list(source_columns), target, key))
        return dependencies
