"""Seeded multi-tenant service traffic (Zipf-distributed tenants).

The service layer's performance story is cache affinity: the same
schema/Σ fingerprints recur across requests, and a shard that keeps
seeing one tenant answers from warm caches.  This generator produces
exactly that traffic shape, deterministically:

* ``tenant_count`` tenants, each a generated schema (distinct relation
  names per tenant, so tenants never share fingerprints), a key-based
  Σ, chain/star queries with known-positive containment pairs, and a
  view catalog;
* a request stream in the service's wire format (ready for
  :func:`repro.service.protocol.handle_record`, a
  :class:`~repro.service.pool.ShardedSolverPool`, a
  :class:`~repro.service.client.ServiceClient`, or ``repro batch``),
  with tenants drawn from a Zipf distribution — rank ``r`` gets weight
  ``1 / r**s`` — because service traffic is never uniform: a few hot
  tenants dominate, which is precisely what makes affinity routing and
  persistent caches pay.

Everything is reproducible from the seed; two generators with equal
parameters emit equal streams.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

from repro.workloads.dependency_generator import DependencyGenerator
from repro.workloads.query_generator import QueryGenerator
from repro.workloads.schema_generator import SchemaGenerator
from repro.workloads.view_generator import ViewCatalogGenerator

#: Default op mix; weights need not sum to 1 (they are relative).
DEFAULT_MIX: Mapping[str, float] = {"contain": 0.6, "chase": 0.2, "rewrite": 0.2}


@dataclass(frozen=True)
class Tenant:
    """One tenant's textual workload universe (all strings parse back)."""

    name: str
    schema_text: str
    deps_text: str
    views_text: str
    #: (query, query_prime) pairs with known-positive containment.
    contain_pairs: Tuple[Tuple[str, str], ...]
    chase_queries: Tuple[str, ...]
    rewrite_queries: Tuple[str, ...]

    def record_base(self) -> Dict[str, str]:
        """The tenant fields of a service request."""
        return {"schema": self.schema_text, "deps": self.deps_text}


@dataclass
class TrafficGenerator:
    """Deterministic Zipf-tenant request streams for the service layer."""

    tenant_count: int = 8
    seed: int = 0
    zipf_exponent: float = 1.2
    relation_count: int = 5
    arity: int = 3
    foreign_key_count: int = 3
    catalog_size: int = 3
    chain_lengths: Tuple[int, ...] = (2, 3, 4)
    tenants: Tuple[Tenant, ...] = field(init=False)

    def __post_init__(self) -> None:
        if self.tenant_count <= 0:
            raise ValueError("tenant_count must be positive")
        if self.zipf_exponent <= 0:
            raise ValueError("zipf_exponent must be positive")
        self.tenants = tuple(self._build_tenant(index)
                             for index in range(self.tenant_count))
        self._weights = [1.0 / (rank + 1) ** self.zipf_exponent
                         for rank in range(self.tenant_count)]

    # -- tenant construction -------------------------------------------------

    def _build_tenant(self, index: int) -> Tenant:
        # Distinct relation-name prefixes keep tenant fingerprints
        # distinct even when the shapes coincide.
        tenant_seed = self.seed * 1_000 + index
        schema = SchemaGenerator(seed=tenant_seed).uniform(
            self.relation_count, self.arity, prefix=f"T{index}R")
        sigma = DependencyGenerator(schema, seed=tenant_seed).key_based(
            self.foreign_key_count)
        queries = QueryGenerator(schema, seed=tenant_seed)
        catalog = ViewCatalogGenerator(schema, seed=tenant_seed).catalog(
            self.catalog_size, sigma)

        chains = [queries.chain(length, name=f"T{index}Q{length}")
                  for length in self.chain_lengths]
        pairs = tuple((str(chain), str(queries.weakened(chain)))
                      for chain in chains if len(chain) > 1)
        schema_text = "\n".join(
            f"{relation.name}({', '.join(relation.attribute_names)})"
            for relation in schema)
        return Tenant(
            name=f"tenant-{index}",
            schema_text=schema_text,
            deps_text="\n".join(str(dependency) for dependency in sigma),
            views_text="\n".join(str(view) for view in catalog),
            contain_pairs=pairs,
            chase_queries=tuple(str(chain) for chain in chains),
            rewrite_queries=tuple(str(chain) for chain in chains),
        )

    # -- sampling ------------------------------------------------------------

    def pick_tenant(self, rng: random.Random) -> Tenant:
        """One tenant, Zipf-weighted (rank 0 is the hottest)."""
        return rng.choices(self.tenants, weights=self._weights, k=1)[0]

    def requests(self, count: int,
                 mix: Mapping[str, float] = DEFAULT_MIX,
                 stream_seed: int = 0) -> List[Dict[str, Any]]:
        """``count`` wire-format records (materialized, for replaying)."""
        return list(self.iter_requests(count, mix=mix, stream_seed=stream_seed))

    def iter_requests(self, count: int,
                      mix: Mapping[str, float] = DEFAULT_MIX,
                      stream_seed: int = 0) -> Iterator[Dict[str, Any]]:
        """A deterministic stream of ``count`` service requests.

        ``stream_seed`` varies the arrival order and choices without
        rebuilding the tenants, so one workload universe can emit many
        distinct-but-replayable streams.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        operations = [op for op in mix if mix[op] > 0]
        unknown = set(operations) - {"contain", "chase", "rewrite"}
        if unknown:
            raise ValueError(f"unknown op(s) in mix: {sorted(unknown)}")
        weights = [mix[op] for op in operations]
        rng = random.Random(f"{self.seed}:{stream_seed}")
        for serial in range(count):
            tenant = self.pick_tenant(rng)
            op = rng.choices(operations, weights=weights, k=1)[0]
            record: Dict[str, Any] = {
                "id": f"{tenant.name}/{op}/{serial}",
                "op": op,
                **tenant.record_base(),
            }
            if op == "contain":
                query, query_prime = rng.choice(tenant.contain_pairs)
                record["query"] = query
                record["query_prime"] = query_prime
            elif op == "chase":
                record["query"] = rng.choice(tenant.chase_queries)
                record["max_level"] = 3
            else:  # rewrite
                record["query"] = rng.choice(tenant.rewrite_queries)
                record["views"] = tenant.views_text
            yield record

    # -- catalog-scale traffic (register once, rewrite by fingerprint) -------

    def tenant_catalog_fp(self, tenant: Tenant) -> str:
        """The fingerprint ``catalog.put`` will assign tenant's catalog.

        Computed exactly the way the service computes it (parse the
        texts, fingerprint the parsed catalog), so a generated stream
        can reference catalogs before any server has seen them.
        """
        if not hasattr(self, "_catalog_fps"):
            self._catalog_fps: Dict[str, str] = {}
        if tenant.name not in self._catalog_fps:
            from repro.api.fingerprints import catalog_fingerprint
            from repro.parser.schema_parser import parse_schema
            from repro.parser.view_parser import parse_views
            catalog = parse_views(tenant.views_text,
                                  parse_schema(tenant.schema_text))
            self._catalog_fps[tenant.name] = catalog_fingerprint(catalog)
        return self._catalog_fps[tenant.name]

    def catalog_registrations(self) -> List[Dict[str, Any]]:
        """One ``catalog.put`` record per tenant (replay these first)."""
        return [{"id": f"{tenant.name}/catalog.put", "op": "catalog.put",
                 "views": tenant.views_text, "schema": tenant.schema_text,
                 "name": tenant.name}
                for tenant in self.tenants]

    def catalog_requests(self, count: int, stream_seed: int = 0,
                         strategy: Optional[str] = None) -> List[Dict[str, Any]]:
        """``count`` rewrite-by-fingerprint records (Zipf tenants).

        The catalog-scale traffic shape: every record carries
        ``catalog_fp`` instead of the tenant's views text, so the
        server must have replayed :meth:`catalog_registrations` (or a
        coordinator must have broadcast them) first.  ``strategy``
        optionally pins the rewriter on every record — how a
        differential harness drives both strategies over one stream.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        rng = random.Random(f"{self.seed}:catalog:{stream_seed}")
        records: List[Dict[str, Any]] = []
        for serial in range(count):
            tenant = self.pick_tenant(rng)
            record: Dict[str, Any] = {
                "id": f"{tenant.name}/rewrite-fp/{serial}",
                "op": "rewrite",
                "query": rng.choice(tenant.rewrite_queries),
                "catalog_fp": self.tenant_catalog_fp(tenant),
                **tenant.record_base(),
            }
            if strategy is not None:
                record["strategy"] = strategy
            records.append(record)
        return records

    def streams(self, stream_count: int, count_per_stream: int,
                mix: Mapping[str, float] = DEFAULT_MIX,
                stream_seed: int = 0) -> List[List[Dict[str, Any]]]:
        """``stream_count`` independent request streams over one tenant universe.

        The multi-node shape: each stream models one client connection
        (or one traffic source aimed at a fleet), all drawing from the
        *same* tenants — so the fleet-level affinity question ("do a
        tenant's requests land on one node's warm caches regardless of
        which client sent them?") is actually posed.  Streams are
        deterministic (stream ``k`` derives its RNG from ``stream_seed +
        k``) and their ids are prefixed ``s{k}/`` so responses can be
        attributed to their stream even after fleet-level merging.
        """
        if stream_count <= 0:
            raise ValueError("stream_count must be positive")
        streams: List[List[Dict[str, Any]]] = []
        for index in range(stream_count):
            stream = self.requests(count_per_stream, mix=mix,
                                   stream_seed=stream_seed + index)
            for record in stream:
                record["id"] = f"s{index}/{record['id']}"
            streams.append(stream)
        return streams

    # -- introspection -------------------------------------------------------

    def tenant_shares(self, records: List[Dict[str, Any]]) -> Dict[str, float]:
        """Fraction of a stream belonging to each tenant (by request id)."""
        counts: Dict[str, int] = {tenant.name: 0 for tenant in self.tenants}
        for record in records:
            parts = record["id"].split("/")
            # Stream-prefixed ids (``s0/tenant-3/contain/5``) carry the
            # tenant in the second component.
            counts[parts[1] if parts[0] not in counts else parts[0]] += 1
        total = max(len(records), 1)
        return {name: count / total for name, count in counts.items()}
