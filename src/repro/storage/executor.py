"""Join-based evaluation of conjunctive queries over the storage engine.

This is a classical select-project-join pipeline: conjuncts are joined one
at a time in a greedy smallest-table-first order, using the tables' hash
indexes for the join lookups.  Its answers must coincide with the
homomorphism-based evaluator in :mod:`repro.queries.evaluation` — the test
suite asserts exactly that on random databases, which cross-validates both
the executor and the homomorphism engine.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Set, Tuple

from repro.exceptions import EvaluationError
from repro.queries.conjunct import Conjunct
from repro.queries.conjunctive_query import ConjunctiveQuery
from repro.relational.database import Database
from repro.storage.engine import StorageEngine
from repro.terms.term import Constant, Variable

Binding = Dict[Variable, Any]


class JoinExecutor:
    """Evaluates conjunctive queries against a :class:`StorageEngine`."""

    def __init__(self, engine: StorageEngine):
        self._engine = engine

    # -- planning --------------------------------------------------------------

    def _ordered_conjuncts(self, query: ConjunctiveQuery) -> List[Conjunct]:
        """Greedy join order: start from the smallest table, then prefer
        conjuncts sharing variables with what has been joined already."""
        remaining = list(query.conjuncts)
        if not remaining:
            return []
        remaining.sort(key=lambda c: len(self._engine.table(c.relation)))
        ordered = [remaining.pop(0)]
        bound: Set[Variable] = set(ordered[0].variables())
        while remaining:
            def connectivity(conjunct: Conjunct) -> Tuple[int, int]:
                shared = len(conjunct.variables() & bound)
                return (-shared, len(self._engine.table(conjunct.relation)))

            remaining.sort(key=connectivity)
            chosen = remaining.pop(0)
            ordered.append(chosen)
            bound |= chosen.variables()
        return ordered

    # -- execution ----------------------------------------------------------------

    def _extend(self, conjunct: Conjunct, binding: Binding) -> Iterator[Binding]:
        """All extensions of ``binding`` matching one conjunct against its table."""
        table = self._engine.table(conjunct.relation)
        fixed_positions: List[int] = []
        fixed_values: List[Any] = []
        for position, term in enumerate(conjunct.terms):
            if isinstance(term, Constant):
                fixed_positions.append(position)
                fixed_values.append(term.value)
            elif term in binding:
                fixed_positions.append(position)
                fixed_values.append(binding[term])
        if fixed_positions:
            attribute_refs = [position + 1 for position in fixed_positions]
            table.create_index(attribute_refs)
            candidates: Iterable[Tuple[Any, ...]] = table.lookup(attribute_refs, fixed_values)
        else:
            candidates = table.scan()
        for row in candidates:
            extension = dict(binding)
            consistent = True
            for position, term in enumerate(conjunct.terms):
                value = row[position]
                if isinstance(term, Constant):
                    if term.value != value:
                        consistent = False
                        break
                    continue
                if term in extension and extension[term] != value:
                    consistent = False
                    break
                extension[term] = value
            if consistent:
                yield extension

    def bindings(self, query: ConjunctiveQuery) -> Iterator[Binding]:
        """All variable bindings satisfying the query body."""
        self._validate(query)
        ordered = self._ordered_conjuncts(query)
        partial: List[Binding] = [{}]
        for conjunct in ordered:
            next_partial: List[Binding] = []
            for binding in partial:
                next_partial.extend(self._extend(conjunct, binding))
            if not next_partial:
                return
            partial = next_partial
        yield from partial

    def evaluate(self, query: ConjunctiveQuery) -> Set[Tuple[Any, ...]]:
        """The answer relation Q(B) as a set of value tuples."""
        answers: Set[Tuple[Any, ...]] = set()
        for binding in self.bindings(query):
            row = tuple(
                entry.value if isinstance(entry, Constant) else binding[entry]
                for entry in query.summary_row
            )
            answers.add(row)
        return answers

    def count(self, query: ConjunctiveQuery) -> int:
        """Number of distinct answers."""
        return len(self.evaluate(query))

    # -- validation -----------------------------------------------------------------

    def _validate(self, query: ConjunctiveQuery) -> None:
        for relation in query.relations_used():
            if relation not in self._engine:
                raise EvaluationError(
                    f"storage engine has no table {relation!r} used by query {query.name}"
                )


def evaluate_with_joins(query: ConjunctiveQuery, database: Database) -> Set[Tuple[Any, ...]]:
    """One-shot convenience: load ``database`` into an engine and evaluate."""
    engine = StorageEngine.from_database(database)
    return JoinExecutor(engine).evaluate(query)
