"""Hash-indexed tuple storage for one relation."""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.exceptions import SchemaError
from repro.relational.schema import AttributeRef, RelationSchema

Row = Tuple[Any, ...]


class Table:
    """A set of rows over one relation schema with secondary hash indexes.

    Indexes are declared per attribute set (by name or 1-based position)
    and maintained incrementally on insert and delete.  Lookups on indexed
    attribute sets are O(1) per matching row; lookups on other attribute
    sets fall back to a scan.  The conjunctive-query executor creates
    single-column indexes on demand for its join attributes.
    """

    def __init__(self, schema: RelationSchema,
                 indexes: Optional[Iterable[Sequence[AttributeRef]]] = None):
        self._schema = schema
        self._rows: Set[Row] = set()
        self._indexes: Dict[Tuple[int, ...], Dict[Tuple[Any, ...], Set[Row]]] = {}
        for index_spec in indexes or ():
            self.create_index(index_spec)

    # -- schema -----------------------------------------------------------------

    @property
    def schema(self) -> RelationSchema:
        return self._schema

    @property
    def name(self) -> str:
        return self._schema.name

    @property
    def arity(self) -> int:
        return self._schema.arity

    # -- indexes -----------------------------------------------------------------

    def create_index(self, attributes: Sequence[AttributeRef]) -> Tuple[int, ...]:
        """Create (or return) a hash index over the given attributes."""
        positions = self._schema.positions_of(attributes)
        if positions not in self._indexes:
            index: Dict[Tuple[Any, ...], Set[Row]] = {}
            for row in self._rows:
                index.setdefault(tuple(row[p] for p in positions), set()).add(row)
            self._indexes[positions] = index
        return positions

    def has_index(self, attributes: Sequence[AttributeRef]) -> bool:
        return self._schema.positions_of(attributes) in self._indexes

    def index_names(self) -> List[Tuple[str, ...]]:
        """The indexed attribute-name sets (for introspection and tests)."""
        return [
            tuple(self._schema.attribute_name_at(p) for p in positions)
            for positions in self._indexes
        ]

    # -- mutation -----------------------------------------------------------------

    def insert(self, row: Sequence[Any]) -> bool:
        """Insert one row; returns True if it was not already present."""
        values = self._schema.validate_row(row)
        if values in self._rows:
            return False
        self._rows.add(values)
        for positions, index in self._indexes.items():
            index.setdefault(tuple(values[p] for p in positions), set()).add(values)
        return True

    def insert_many(self, rows: Iterable[Sequence[Any]]) -> int:
        """Insert many rows; returns how many were new."""
        return sum(1 for row in rows if self.insert(row))

    def delete(self, row: Sequence[Any]) -> bool:
        """Delete one row; returns True if it was present."""
        values = tuple(row)
        if values not in self._rows:
            return False
        self._rows.remove(values)
        for positions, index in self._indexes.items():
            key = tuple(values[p] for p in positions)
            bucket = index.get(key)
            if bucket is not None:
                bucket.discard(values)
                if not bucket:
                    del index[key]
        return True

    def clear(self) -> None:
        self._rows.clear()
        for index in self._indexes.values():
            index.clear()

    # -- queries ---------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __contains__(self, row: Sequence[Any]) -> bool:
        return tuple(row) in self._rows

    def rows(self) -> FrozenSet[Row]:
        return frozenset(self._rows)

    def scan(self) -> Iterator[Row]:
        """Full scan, in arbitrary order."""
        return iter(self._rows)

    def lookup(self, attributes: Sequence[AttributeRef], values: Sequence[Any]) -> List[Row]:
        """Rows whose ``attributes`` equal ``values`` (index or scan).

        The attribute list and value list must have the same length.
        """
        positions = self._schema.positions_of(attributes)
        key = tuple(values)
        if len(positions) != len(key):
            raise SchemaError(
                f"lookup on {self.name}: {len(positions)} attributes but {len(key)} values"
            )
        index = self._indexes.get(positions)
        if index is not None:
            return list(index.get(key, ()))
        return [
            row for row in self._rows
            if tuple(row[p] for p in positions) == key
        ]

    def project(self, attributes: Sequence[AttributeRef]) -> Set[Tuple[Any, ...]]:
        positions = self._schema.positions_of(attributes)
        return {tuple(row[p] for p in positions) for row in self._rows}

    def distinct_values(self, attribute: AttributeRef) -> Set[Any]:
        position = self._schema.position_of(attribute)
        return {row[position] for row in self._rows}

    def statistics(self) -> Dict[str, Any]:
        """Cardinality and per-column distinct counts (used by the executor)."""
        return {
            "rows": len(self._rows),
            "distinct": {
                name: len(self.distinct_values(name))
                for name in self._schema.attribute_names
            },
            "indexes": self.index_names(),
        }
