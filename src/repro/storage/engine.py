"""The storage engine: named tables plus optional integrity enforcement."""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, Mapping, Optional, Sequence

from repro.dependencies.dependency_set import DependencySet
from repro.exceptions import SchemaError
from repro.relational.database import Database
from repro.relational.schema import DatabaseSchema
from repro.storage.integrity import IntegrityChecker, IntegrityReport
from repro.storage.table import Table


class StorageEngine:
    """A collection of :class:`Table` objects over one database schema.

    The engine can enforce a dependency set on every insert (``enforce``),
    check the whole state on demand, bulk-load rows, and convert to and
    from the plain :class:`~repro.relational.database.Database` value
    object used by the evaluator and the finite-model tooling.
    """

    def __init__(self, schema: DatabaseSchema,
                 dependencies: Optional[DependencySet] = None,
                 enforce: bool = False):
        self._schema = schema
        self._tables: Dict[str, Table] = {rel.name: Table(rel) for rel in schema}
        self._dependencies = dependencies or DependencySet(schema=schema)
        self._checker = IntegrityChecker(schema, self._dependencies) if len(self._dependencies) else None
        self._enforce = enforce and self._checker is not None
        if dependencies is not None:
            self._create_dependency_indexes()

    def _create_dependency_indexes(self) -> None:
        """Index FD keys and IND endpoints so enforcement lookups are O(1)."""
        for fd in self._dependencies.functional_dependencies():
            self._tables[fd.relation].create_index(fd.lhs)
        for ind in self._dependencies.inclusion_dependencies():
            self._tables[ind.lhs_relation].create_index(ind.lhs_attributes)
            self._tables[ind.rhs_relation].create_index(ind.rhs_attributes)

    # -- basic access -----------------------------------------------------------

    @property
    def schema(self) -> DatabaseSchema:
        return self._schema

    @property
    def dependencies(self) -> DependencySet:
        return self._dependencies

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise SchemaError(f"storage engine has no table {name!r}") from None

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def total_rows(self) -> int:
        return sum(len(table) for table in self)

    # -- mutation --------------------------------------------------------------------

    def insert(self, relation: str, row: Sequence[Any]) -> bool:
        """Insert one row, enforcing FDs (and raising on violation) if enabled."""
        table = self.table(relation)
        if self._enforce and self._checker is not None:
            report = self._checker.check_insert(self._tables, relation, row)
            report.raise_if_violated()
        return table.insert(row)

    def insert_many(self, relation: str, rows: Iterable[Sequence[Any]]) -> int:
        return sum(1 for row in rows if self.insert(relation, row))

    def load(self, data: Mapping[str, Iterable[Sequence[Any]]]) -> int:
        """Bulk-load ``{relation: rows}``; returns the number of new rows."""
        return sum(self.insert_many(relation, rows) for relation, rows in data.items())

    def delete(self, relation: str, row: Sequence[Any]) -> bool:
        return self.table(relation).delete(row)

    def clear(self) -> None:
        for table in self:
            table.clear()

    # -- integrity -------------------------------------------------------------------------

    def check_integrity(self) -> IntegrityReport:
        """Check the whole current state against the declared dependencies."""
        if self._checker is None:
            return IntegrityReport(ok=True)
        return self._checker.check_state(self._tables)

    def satisfies_dependencies(self) -> bool:
        return self.check_integrity().ok

    # -- conversion --------------------------------------------------------------------------

    def to_database(self) -> Database:
        """Snapshot the current state as a plain Database value."""
        database = Database(self._schema)
        for table in self:
            database.add_all(table.name, table.rows())
        return database

    @classmethod
    def from_database(cls, database: Database,
                      dependencies: Optional[DependencySet] = None,
                      enforce: bool = False) -> "StorageEngine":
        """Load a Database value into a fresh engine."""
        engine = cls(database.schema, dependencies=dependencies, enforce=enforce)
        for relation in database:
            engine.insert_many(relation.name, relation.rows())
        return engine

    # -- reporting ------------------------------------------------------------------------------

    def statistics(self) -> Dict[str, Any]:
        return {name: table.statistics() for name, table in self._tables.items()}

    def describe(self) -> str:
        lines = [f"storage engine over {len(self._tables)} tables, "
                 f"{self.total_rows()} rows, "
                 f"{len(self._dependencies)} dependencies"]
        for name, table in self._tables.items():
            lines.append(f"  {name}: {len(table)} rows, indexes {table.index_names()}")
        return "\n".join(lines)
