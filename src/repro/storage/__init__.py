"""An in-memory relational storage engine.

The paper's algorithms operate on queries, but the library also ships a
small but real storage engine so that the finite-database side of the
story (Section 4, and every "evaluate Q over B" step) runs against
something with indexes and integrity checking rather than ad-hoc loops:

* :class:`~repro.storage.table.Table` — hash-indexed tuple storage;
* :class:`~repro.storage.engine.StorageEngine` — a named collection of
  tables with optional FD/IND enforcement on insert, bulk loading, and
  conversion to/from :class:`~repro.relational.database.Database`;
* :class:`~repro.storage.executor.JoinExecutor` — a join-based evaluator
  for conjunctive queries, used by the test suite to cross-validate the
  homomorphism semantics of ``Q(B)``.
"""

from repro.storage.table import Table
from repro.storage.engine import StorageEngine
from repro.storage.executor import JoinExecutor, evaluate_with_joins
from repro.storage.integrity import IntegrityChecker, IntegrityReport

__all__ = [
    "IntegrityChecker",
    "IntegrityReport",
    "JoinExecutor",
    "StorageEngine",
    "Table",
    "evaluate_with_joins",
]
