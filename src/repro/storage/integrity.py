"""Integrity enforcement for the storage engine.

The checker answers, for a proposed insert, whether the dependency set
stays satisfied — FDs can be violated immediately by an insert, while INDs
can only *become* satisfied by inserts into the referenced relation, so an
IND violation is reported against the current state (deferred checking is
also supported, mirroring how real engines treat foreign keys).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple

from repro.dependencies.dependency_set import DependencySet
from repro.dependencies.functional import FunctionalDependency
from repro.dependencies.inclusion import InclusionDependency
from repro.exceptions import IntegrityError
from repro.relational.schema import DatabaseSchema


@dataclass
class IntegrityReport:
    """Outcome of checking one insert or one whole state."""

    ok: bool
    messages: List[str] = field(default_factory=list)

    def raise_if_violated(self) -> None:
        if not self.ok:
            raise IntegrityError("; ".join(self.messages))


class IntegrityChecker:
    """Checks FDs and INDs against the tables of a storage engine."""

    def __init__(self, schema: DatabaseSchema, dependencies: DependencySet):
        dependencies.validate(schema)
        self._schema = schema
        self._dependencies = dependencies

    @property
    def dependencies(self) -> DependencySet:
        return self._dependencies

    # -- insert-time checks -------------------------------------------------------

    def check_insert(self, tables: Dict[str, Any], relation: str,
                     row: Sequence[Any], enforce_inds: bool = False) -> IntegrityReport:
        """Would inserting ``row`` into ``relation`` violate any FD?

        With ``enforce_inds`` the row's IND obligations must already be met
        by the current state (immediate foreign-key checking); without it,
        IND checking is deferred to :meth:`check_state`.
        """
        messages: List[str] = []
        values = tuple(row)
        for fd in self._dependencies.functional_dependencies():
            if fd.relation != relation:
                continue
            table = tables[relation]
            lhs_positions = fd.lhs_positions(table.schema)
            rhs_position = fd.rhs_position(table.schema)
            key = tuple(values[p] for p in lhs_positions)
            for existing in table.lookup(fd.lhs, key):
                if existing[rhs_position] != values[rhs_position]:
                    messages.append(
                        f"FD {fd} violated by inserting {values}: conflicts with {existing}"
                    )
                    break
        if enforce_inds:
            for ind in self._dependencies.inclusion_dependencies():
                if ind.lhs_relation != relation:
                    continue
                lhs_positions = ind.lhs_positions(self._schema)
                subtuple = tuple(values[p] for p in lhs_positions)
                target = tables[ind.rhs_relation]
                if not target.lookup(ind.rhs_attributes, subtuple):
                    messages.append(
                        f"IND {ind} violated by inserting {values}: no matching tuple "
                        f"in {ind.rhs_relation}"
                    )
        return IntegrityReport(ok=not messages, messages=messages)

    # -- whole-state checks ---------------------------------------------------------

    def check_state(self, tables: Dict[str, Any]) -> IntegrityReport:
        """Check every dependency against the full current state."""
        messages: List[str] = []
        for fd in self._dependencies.functional_dependencies():
            messages.extend(self._check_fd_state(tables, fd))
        for ind in self._dependencies.inclusion_dependencies():
            messages.extend(self._check_ind_state(tables, ind))
        return IntegrityReport(ok=not messages, messages=messages)

    def _check_fd_state(self, tables: Dict[str, Any], fd: FunctionalDependency) -> List[str]:
        table = tables[fd.relation]
        lhs_positions = fd.lhs_positions(table.schema)
        rhs_position = fd.rhs_position(table.schema)
        seen: Dict[Tuple[Any, ...], Any] = {}
        messages: List[str] = []
        for row in table:
            key = tuple(row[p] for p in lhs_positions)
            value = row[rhs_position]
            if key in seen and seen[key] != value:
                messages.append(f"FD {fd} violated: key {key} maps to both "
                                f"{seen[key]!r} and {value!r}")
            seen.setdefault(key, value)
        return messages

    def _check_ind_state(self, tables: Dict[str, Any], ind: InclusionDependency) -> List[str]:
        source = tables[ind.lhs_relation]
        target = tables[ind.rhs_relation]
        lhs_positions = ind.lhs_positions(self._schema)
        rhs_positions = ind.rhs_positions(self._schema)
        available = {tuple(row[p] for p in rhs_positions) for row in target}
        messages: List[str] = []
        for row in source:
            subtuple = tuple(row[p] for p in lhs_positions)
            if subtuple not in available:
                messages.append(
                    f"IND {ind} violated: {subtuple} from {ind.lhs_relation} has no "
                    f"match in {ind.rhs_relation}"
                )
        return messages
