"""Materialized views: named conjunctive queries over a base schema.

A :class:`View` is a conjunctive query with a name; the name doubles as a
derived relation whose columns are the view's head variables.  A
:class:`ViewCatalog` is an ordered collection of views over one base
schema; it exposes the *extended schema* (base relations plus one relation
per view) that rewritings are written against, and a stable content
fingerprint used by the solver's rewrite cache.

Views are restricted to heads of pairwise distinct distinguished
variables.  This loses no generality for rewriting (a constant or repeated
column in a view head can always be pushed into the body of the queries
using the view) and keeps unfolding a pure substitution: expanding
``V(t1, ..., tk)`` maps the i-th head variable to ``t_i`` and freshens the
body's existential variables.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.exceptions import ViewError
from repro.queries.conjunctive_query import ConjunctiveQuery
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.terms.term import DistinguishedVariable, Variable


class View:
    """One named view ``V(x1, ..., xk) :- body`` over the base schema."""

    def __init__(self, name: str, definition: ConjunctiveQuery):
        if not name:
            raise ViewError("a view must have a name")
        self._name = name
        self._definition = definition
        self._validate()

    def _validate(self) -> None:
        seen = set()
        for entry in self._definition.summary_row:
            if not isinstance(entry, DistinguishedVariable):
                raise ViewError(
                    f"view {self._name!r} has head entry {entry}; view heads "
                    "must consist of distinguished variables"
                )
            if entry in seen:
                raise ViewError(
                    f"view {self._name!r} repeats head variable {entry}; "
                    "view head variables must be pairwise distinct"
                )
            seen.add(entry)

    # -- accessors ---------------------------------------------------------

    @property
    def name(self) -> str:
        return self._name

    @property
    def definition(self) -> ConjunctiveQuery:
        """The defining conjunctive query, over the base schema."""
        return self._definition

    @property
    def head(self) -> Tuple[DistinguishedVariable, ...]:
        """The head variables, in output order."""
        return self._definition.summary_row  # type: ignore[return-value]

    @property
    def arity(self) -> int:
        return self._definition.output_arity

    @property
    def base_schema(self) -> DatabaseSchema:
        return self._definition.input_schema

    def existential_variables(self) -> List[Variable]:
        """Body variables projected away by the head, in a stable order."""
        head = set(self.head)
        seen: Dict[Variable, None] = {}
        for conjunct in self._definition.conjuncts:
            for term in conjunct.terms:
                if isinstance(term, Variable) and term not in head:
                    seen.setdefault(term, None)
        return list(seen)

    def relation_schema(self) -> RelationSchema:
        """The derived relation this view contributes to the extended schema.

        Columns are named after the head variables, which the head
        restriction guarantees are distinct.
        """
        return RelationSchema(self._name, [variable.name for variable in self.head])

    # -- identity ----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, View):
            return NotImplemented
        return self._name == other._name and self._definition == other._definition

    def __hash__(self) -> int:
        return hash((self._name, self._definition))

    def __str__(self) -> str:
        head = ", ".join(str(v) for v in self.head)
        body = ", ".join(str(c) for c in self._definition.conjuncts)
        return f"{self._name}({head}) :- {body}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<View {self}>"


class ViewCatalog:
    """An ordered, name-keyed collection of views over one base schema."""

    def __init__(self, views: Optional[Iterable[View]] = None,
                 schema: Optional[DatabaseSchema] = None):
        self._schema = schema
        self._views: Dict[str, View] = {}
        for view in views or ():
            self.add(view)

    # -- construction ------------------------------------------------------

    def add(self, view: View) -> "ViewCatalog":
        """Add one view; names must be fresh w.r.t. the base schema and catalog."""
        if self._schema is None:
            self._schema = view.base_schema
        elif view.base_schema != self._schema:
            raise ViewError(
                f"view {view.name!r} is defined over a different base schema "
                "than the catalog"
            )
        if view.name in self._schema:
            raise ViewError(
                f"view name {view.name!r} collides with a base relation")
        if view.name in self._views:
            raise ViewError(f"duplicate view name {view.name!r} in catalog")
        self._views[view.name] = view
        return self

    # -- container protocol ------------------------------------------------

    def __iter__(self) -> Iterator[View]:
        return iter(self._views.values())

    def __len__(self) -> int:
        return len(self._views)

    def __contains__(self, name: str) -> bool:
        return name in self._views

    def get(self, name: str) -> View:
        try:
            return self._views[name]
        except KeyError:
            raise ViewError(f"catalog has no view named {name!r}") from None

    def names(self) -> List[str]:
        """View names, in insertion order."""
        return list(self._views)

    @property
    def base_schema(self) -> Optional[DatabaseSchema]:
        return self._schema

    def is_view(self, relation_name: str) -> bool:
        """True if ``relation_name`` names a view of this catalog."""
        return relation_name in self._views

    # -- derived schemas ---------------------------------------------------

    def extended_schema(self) -> DatabaseSchema:
        """Base relations plus one derived relation per view.

        Candidate rewritings are conjunctive queries over this schema;
        expansion maps them back to the base schema.
        """
        if self._schema is None:
            raise ViewError("an empty catalog with no schema has no extended schema")
        extended = DatabaseSchema(list(self._schema))
        for view in self._views.values():
            extended.add(view.relation_schema())
        return extended

    # -- reporting ---------------------------------------------------------

    def describe(self) -> str:
        lines = [f"view catalog with {len(self)} view(s):"]
        for view in self._views.values():
            lines.append(f"  {view}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ViewCatalog({', '.join(self._views)})"
