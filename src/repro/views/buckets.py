"""MiniCon-style buckets: structured candidate growth for the backchase.

The exhaustive strategy tries every subset of the matched view images up
to the combination-size budget — |images| choose k candidates, blind to
whether a combination can possibly improve on its parts.  Buckets
(Pottinger & Halevy, VLDB J. 2001) organise the images *per query
subgoal*: for each level-0 chase atom, the images whose coverage
includes it.  Candidate combinations then grow only in ways that can
matter:

* an image joins a combination only when it **covers a subgoal the
  combination has not covered yet**, or **exposes a variable of an
  already-covered subgoal** (the projection-recovery case: a view that
  re-covers atoms another view already replaced can still be essential
  when it exposes a join variable the other view projected away);
* a combination is emitted only when it respects **head-variable
  safety**: every variable shared between a covered subgoal and the
  rest of the candidate (uncovered atoms or the summary row) must be
  exposed by some view atom — otherwise the expansion freshens that
  variable away and certification cannot succeed.

Both rules trade exhaustiveness for scale; the repo's seeded
differential sweep (exhaustive vs bucketed, same best cost) is the
empirical certificate, exactly as PR 3/PR 9 certified the chase
engines.  Combinations are enumerated smallest-first in the images'
sort order, mirroring the exhaustive strategy's candidate order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Sequence, Set, Tuple

from repro.queries.conjunct import Conjunct
from repro.terms.term import Term, Variable

__all__ = ["BucketStatistics", "build_buckets", "iter_bucket_combinations"]


@dataclass
class BucketStatistics:
    """Counters the bucketed strategy reports back into the pipeline."""

    buckets: int = 0
    combos_emitted: int = 0
    combos_pruned_unsafe: int = 0


def build_buckets(images: Sequence, base_conjuncts: Sequence[Conjunct],
                  ) -> Dict[str, Tuple[int, ...]]:
    """Per-subgoal buckets: base-atom label → positions of covering images."""
    buckets: Dict[str, List[int]] = {
        conjunct.label: [] for conjunct in base_conjuncts}
    for position, image in enumerate(images):
        for label in image.covered_labels:
            members = buckets.get(label)
            if members is not None:
                members.append(position)
    return {label: tuple(members) for label, members in buckets.items()}


def _variables(terms: Sequence[Term]) -> FrozenSet[Variable]:
    return frozenset(term for term in terms if isinstance(term, Variable))


def iter_bucket_combinations(images: Sequence,
                             buckets: Dict[str, Tuple[int, ...]],
                             base_conjuncts: Sequence[Conjunct],
                             summary_row: Sequence[Term],
                             max_combination_size: int,
                             statistics: BucketStatistics,
                             ) -> Iterator[Tuple]:
    """Yield image combinations worth certifying, smallest first.

    Combinations are index-increasing tuples over ``images`` (which the
    pipeline has already sorted most-covering-first): size-1 combinations
    are every image, and a size-k combination extends a size-(k-1) one
    with a later image that either covers a new subgoal or exposes a
    variable of an already-covered one.  Unsafe combinations (linking
    variable not exposed) are counted, not yielded — but they still
    grow, because a later image can expose the missing variable.
    """
    atom_variables = {
        conjunct.label: _variables(conjunct.terms)
        for conjunct in base_conjuncts}
    summary_variables = _variables(summary_row)
    image_variables = [_variables(image.atom.terms) for image in images]
    # Inverted postings: which images expose a given variable.  Drives
    # the projection-recovery extension rule.
    exposing: Dict[Variable, List[int]] = {}
    for position, variables in enumerate(image_variables):
        for variable in variables:
            exposing.setdefault(variable, []).append(position)

    # (indices, covered labels, covered-atom variables, exposed variables)
    Level = List[Tuple[Tuple[int, ...], FrozenSet[str], FrozenSet[Variable],
                       FrozenSet[Variable]]]
    current: Level = [
        (
            (position,),
            images[position].covered_labels,
            frozenset().union(*(
                atom_variables[label]
                for label in images[position].covered_labels)),
            image_variables[position],
        )
        for position in range(len(images))
    ]
    size = 1
    while current:
        for indices, covered, covered_variables, exposed in current:
            outside: Set[Variable] = set(summary_variables)
            for label, variables in atom_variables.items():
                if label not in covered:
                    outside |= variables
            if (covered_variables & outside) <= exposed:
                statistics.combos_emitted += 1
                yield tuple(images[position] for position in indices)
            else:
                statistics.combos_pruned_unsafe += 1
        if size >= max_combination_size:
            break
        next_level: Level = []
        for indices, covered, covered_variables, exposed in current:
            last = indices[-1]
            candidates: Set[int] = set()
            for label, members in buckets.items():
                if label not in covered:
                    candidates.update(
                        member for member in members if member > last)
            for variable in covered_variables:
                candidates.update(
                    member for member in exposing.get(variable, ())
                    if member > last)
            for position in sorted(candidates):
                grown_covered = covered | images[position].covered_labels
                grown_variables = covered_variables.union(*(
                    atom_variables[label]
                    for label in images[position].covered_labels))
                next_level.append((
                    indices + (position,),
                    grown_covered,
                    grown_variables,
                    exposed | image_variables[position],
                ))
        current = next_level
        size += 1
