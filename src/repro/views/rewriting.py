"""Chase & backchase: rewriting a query to use materialized views.

The procedure is the classic two-phase search, built from the paper's own
primitives:

1. **Chase** — the query is chased under Σ (the solver's cached chase,
   so repeated rewrites of one workload share the work).  Chasing first
   matters: a dependency can expose a view match that is invisible in the
   query's own atoms (the intro example's ``Q2(e) :- EMP(e, s, d)``
   matches the EMP⋈DEP view only after the foreign key adds the DEP
   atom).  The views' defining queries are then matched into the chase by
   homomorphism — the repo's dependency language is FDs and INDs, so the
   view tgds of the textbook backchase are applied here as one-shot match
   rules rather than as chase dependencies; the outcome (the set of view
   atoms present in the universal plan) is the same.
2. **Backchase** — candidate rewritings are built from subsets of the
   matched view images (each image drops the base atoms it covers, the
   uncovered atoms ride along), expanded back to the base schema, and kept
   exactly when the containment engine certifies them equivalent to the
   original query under Σ, in both directions, with certainty.

Certified rewritings are ranked by a :mod:`~repro.views.cost` model —
by default fewest atoms, then fewest base-relation accesses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.containment.result import ContainmentResult
from repro.dependencies.dependency_set import DependencySet
from repro.exceptions import QueryError, ViewError
from repro.homomorphism.problem import HomomorphismProblem
from repro.homomorphism.query_homomorphism import build_target_index
from repro.homomorphism.search import iter_homomorphisms
from repro.obs import probe as _probe
from repro.queries.conjunct import Conjunct
from repro.queries.conjunctive_query import ConjunctiveQuery
from repro.terms.term import Term, Variable
from repro.views.cost import CostModel, default_cost
from repro.views.expansion import expand_query
from repro.views.view import ViewCatalog


@dataclass(frozen=True)
class ViewImage:
    """One match of a view's body into the chased query.

    ``atom`` is the view atom the match induces (the view's head under the
    homomorphism); ``covered_labels`` are the labels of the *level-0* chase
    conjuncts the body mapped onto — the atoms this image can replace.
    Matches landing only on chase-created conjuncts cover nothing and are
    discarded: they could never shrink the query.
    """

    view_name: str
    atom: Conjunct
    covered_labels: FrozenSet[str]


@dataclass
class Rewriting:
    """One certified rewriting of the original query over the views."""

    query: ConjunctiveQuery          # over the catalog's extended schema
    expansion: ConjunctiveQuery      # the unfolding, over the base schema
    view_names: Tuple[str, ...]      # views used, in atom order
    cost: Tuple
    forward: ContainmentResult       # Σ ⊨ expansion ⊆ original
    backward: ContainmentResult      # Σ ⊨ original ⊆ expansion

    @property
    def certified(self) -> bool:
        return (self.forward.certain and self.forward.holds
                and self.backward.certain and self.backward.holds)

    def describe(self) -> str:
        views = ", ".join(self.view_names)
        return f"{self.query}   [views: {views}; cost {self.cost}]"

    def as_dict(self) -> Dict[str, Any]:
        return {
            "query": str(self.query),
            "expansion": str(self.expansion),
            "views": list(self.view_names),
            "cost": list(self.cost),
            "atoms": len(self.query),
            "base_accesses": len(self.expansion),
        }


@dataclass
class RewriteReport:
    """The outcome of one chase & backchase search.

    ``rewritings`` holds every certified rewriting, best cost first.
    ``unsatisfiable`` flags the degenerate case where the chase failed on
    an FD constant clash: the query is empty on every Σ-database and the
    search is skipped.  ``search_truncated`` reports that a budget
    (``max_images`` or ``max_candidates``) cut the enumeration short, so
    an empty result is "none found within budget", not "none exists".
    """

    original: ConjunctiveQuery
    dependencies: DependencySet
    catalog_size: int
    rewritings: List[Rewriting] = field(default_factory=list)
    images_found: int = 0
    candidates_tried: int = 0
    unsatisfiable: bool = False
    search_truncated: bool = False

    @property
    def best(self) -> Optional[Rewriting]:
        """The cheapest certified rewriting, if any."""
        return self.rewritings[0] if self.rewritings else None

    def describe(self) -> str:
        lines = [
            f"rewriting {self.original.name} over {self.catalog_size} view(s): "
            f"{self.images_found} image(s), {self.candidates_tried} candidate(s), "
            f"{len(self.rewritings)} certified"
        ]
        if self.unsatisfiable:
            lines.append("  query is unsatisfiable under Σ (FD constant clash)")
        if self.search_truncated:
            lines.append("  search truncated by budget")
        for rank, rewriting in enumerate(self.rewritings, start=1):
            lines.append(f"  #{rank} {rewriting.describe()}")
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "original": str(self.original),
            "catalog_size": self.catalog_size,
            "images_found": self.images_found,
            "candidates_tried": self.candidates_tried,
            "unsatisfiable": self.unsatisfiable,
            "search_truncated": self.search_truncated,
            "rewritings": [rewriting.as_dict() for rewriting in self.rewritings],
        }


# ---------------------------------------------------------------------------
# Phase 1: chase + view matching
# ---------------------------------------------------------------------------


def match_level(catalog: ViewCatalog) -> int:
    """Default chase depth for view matching.

    A view body of b atoms needs at most b chased atoms to map onto, and
    the restricted chase adds one level per IND application along a path,
    so chasing to the size of the largest body (with a floor of 2) exposes
    the matches that single foreign-key steps create.  Deeper matches are
    possible in contrived schemas; callers can raise the level explicitly.
    """
    sizes = [len(view.definition) for view in catalog]
    return max([2] + sizes)


def find_view_images(catalog: ViewCatalog,
                     chase_atoms: Sequence[Conjunct],
                     base_labels: Set[str],
                     max_images: int) -> Tuple[List[ViewImage], bool]:
    """All (deduplicated) matches of the catalog's views into the chase.

    Returns the images plus a truncation flag.  Images with identical view
    atoms are merged, their coverage unioned: each underlying homomorphism
    justifies replacing its own covered atoms, and the certification phase
    rejects any union that over-reaches.  The merge trades completeness
    for boundedness — when a rejected union hides a certifiable
    per-homomorphism sub-candidate (automorphic matches of a symmetric
    view body covering different atoms), that smaller rewriting is not
    enumerated; like the budget caps, an empty answer means "none found
    by this search", not "none exists".
    """
    index = build_target_index(chase_atoms)
    label_by_key: Dict[Tuple[str, Tuple[Term, ...]], str] = {
        (atom.relation, atom.terms): atom.label
        for atom in chase_atoms if atom.label in base_labels
    }
    merged: Dict[Tuple[str, Tuple[Term, ...]], Set[str]] = {}
    order: List[Tuple[str, Tuple[Term, ...]]] = []
    truncated = False
    capped = False
    for view in catalog:
        if capped:
            break
        problem = HomomorphismProblem(view.definition.conjuncts, index)
        # Distinct homomorphisms can collapse to one image (same head
        # terms), so the enumeration gets its own per-view cap: without it
        # a view with many automorphic matches could spin without ever
        # registering a new image.
        enumeration_budget = max_images * 16
        for assignment in iter_homomorphisms(problem):
            enumeration_budget -= 1
            if enumeration_budget < 0:
                truncated = True
                break
            head_terms = tuple(assignment[variable] for variable in view.head)
            covered = set()
            for body_atom in view.definition.conjuncts:
                image_terms = tuple(
                    assignment[term] if isinstance(term, Variable) else term
                    for term in body_atom.terms
                )
                label = label_by_key.get((body_atom.relation, image_terms))
                if label is not None:
                    covered.add(label)
            if not covered:
                continue
            key = (view.name, head_terms)
            if key not in merged:
                if len(order) >= max_images:
                    truncated = True
                    capped = True
                    break
                merged[key] = covered
                order.append(key)
            else:
                merged[key] |= covered
    images = [
        ViewImage(
            view_name=view_name,
            atom=Conjunct(view_name, terms, label=f"{view_name}#{position}"),
            covered_labels=frozenset(merged[(view_name, terms)]),
        )
        for position, (view_name, terms) in enumerate(order)
    ]
    return images, truncated


# ---------------------------------------------------------------------------
# Phase 2: backchase
# ---------------------------------------------------------------------------


def _is_safe(conjuncts: Sequence[Conjunct], summary_row: Sequence[Term]) -> bool:
    """True if every summary-row variable occurs in some conjunct."""
    body_terms = {term for conjunct in conjuncts for term in conjunct.terms}
    return all(
        entry in body_terms
        for entry in summary_row if isinstance(entry, Variable)
    )


def rewrite_with_views(query: ConjunctiveQuery,
                       catalog: ViewCatalog,
                       dependencies: Optional[DependencySet] = None,
                       solver=None,
                       cost_model: Optional[CostModel] = None,
                       max_images: int = 64,
                       max_combination_size: int = 2,
                       max_candidates: int = 256,
                       chase_level: Optional[int] = None,
                       chase_max_conjuncts: Optional[int] = None,
                       **containment_options) -> RewriteReport:
    """Chase & backchase search for view-based rewritings of ``query``.

    ``solver`` is the :class:`~repro.api.solver.Solver` whose chase and
    containment caches back the search (``None`` uses the process-wide
    default); every certification is a pair of containment calls through
    it.  ``cost_model`` ranks certified rewritings (default:
    :func:`~repro.views.cost.default_cost`).  The three budgets bound the
    number of view images collected, the number of view atoms per
    candidate, and the number of candidates certified.
    ``containment_options`` are the legacy containment keywords, passed
    through to every certification call; the matching chase follows the
    solver's variant and, unless overridden here, its conjunct budget.
    """
    report = _rewrite_with_views(
        query, catalog, dependencies, solver, cost_model, max_images,
        max_combination_size, max_candidates, chase_level,
        chase_max_conjuncts, **containment_options)
    probe = _probe.ACTIVE
    if probe is not None:
        probe.rewrite(report.candidates_tried, len(report.rewritings),
                      report.images_found)
    return report


def _rewrite_with_views(query: ConjunctiveQuery,
                        catalog: ViewCatalog,
                        dependencies: Optional[DependencySet] = None,
                        solver=None,
                        cost_model: Optional[CostModel] = None,
                        max_images: int = 64,
                        max_combination_size: int = 2,
                        max_candidates: int = 256,
                        chase_level: Optional[int] = None,
                        chase_max_conjuncts: Optional[int] = None,
                        **containment_options) -> RewriteReport:
    from repro.api.solver import resolve_solver
    from repro.chase.engine import ChaseConfig

    session = resolve_solver(solver)
    sigma = dependencies if dependencies is not None else DependencySet()
    ranking = cost_model if cost_model is not None else default_cost
    if catalog.base_schema is not None and catalog.base_schema != query.input_schema:
        raise ViewError(
            f"query {query.name} is not over the catalog's base schema")
    report = RewriteReport(original=query, dependencies=sigma,
                           catalog_size=len(catalog))
    if len(catalog) == 0:
        return report

    chase_config = ChaseConfig(
        variant=containment_options.get("variant", session.config.variant),
        max_level=chase_level if chase_level is not None else match_level(catalog),
        max_conjuncts=(chase_max_conjuncts if chase_max_conjuncts is not None
                       else session.config.chase_max_conjuncts),
        record_trace=False,
        engine=session.config.chase_engine,
    )
    chase_result = session.chase(query, sigma, chase_config)
    if chase_result.failed:
        report.unsatisfiable = True
        return report

    # The FD-normalised original: level-0 conjuncts plus the (possibly
    # merged) summary row.  Candidates are built from these atoms so FD
    # merges performed by the chase do not mask coverage.
    base_conjuncts = chase_result.conjuncts_up_to_level(0)
    summary_row = chase_result.summary_row
    base_labels = {conjunct.label for conjunct in base_conjuncts}

    images, truncated = find_view_images(
        catalog, chase_result.conjuncts(), base_labels, max_images)
    report.images_found = len(images)
    report.search_truncated = truncated
    if not images:
        return report
    # Images covering the most atoms first: singletons that replace whole
    # joins are certified before marginal ones, so a tight candidate
    # budget still sees the best rewritings.
    images.sort(key=lambda image: (-len(image.covered_labels),
                                   image.view_name, image.atom.label))

    extended = catalog.extended_schema()
    seen_candidates: Set[FrozenSet[Tuple[str, Tuple[Term, ...]]]] = set()
    certified: List[Rewriting] = []
    budget_exhausted = False
    for size in range(1, max(1, max_combination_size) + 1):
        if budget_exhausted:
            break
        for combo in combinations(images, size):
            if report.candidates_tried >= max_candidates:
                report.search_truncated = True
                budget_exhausted = True
                break
            covered: Set[str] = set()
            for image in combo:
                covered |= image.covered_labels
            remainder = [c for c in base_conjuncts if c.label not in covered]
            candidate_conjuncts = [image.atom for image in combo] + remainder
            candidate_key = frozenset(
                (c.relation, c.terms) for c in candidate_conjuncts)
            if candidate_key in seen_candidates:
                continue
            seen_candidates.add(candidate_key)
            if not _is_safe(candidate_conjuncts, summary_row):
                continue
            report.candidates_tried += 1
            try:
                candidate = ConjunctiveQuery(
                    input_schema=extended,
                    conjuncts=candidate_conjuncts,
                    summary_row=summary_row,
                    output_attributes=query.output_attributes,
                    name=f"{query.name}_views",
                )
                expansion = expand_query(
                    candidate, catalog, name=f"{query.name}_views_expanded")
            except QueryError:
                continue
            forward = session.is_contained(expansion, query, sigma,
                                           **containment_options)
            if not (forward.certain and forward.holds):
                continue
            backward = session.is_contained(query, expansion, sigma,
                                            **containment_options)
            if not (backward.certain and backward.holds):
                continue
            certified.append(Rewriting(
                query=candidate,
                expansion=expansion,
                view_names=tuple(image.view_name for image in combo),
                cost=tuple(ranking(candidate, expansion)),
                forward=forward,
                backward=backward,
            ))

    certified.sort(key=lambda rewriting: rewriting.cost)
    report.rewritings = certified
    return report
