"""Chase & backchase: rewriting a query to use materialized views.

The procedure is the classic two-phase search, built from the paper's own
primitives, run as a staged pipeline:

1. **Chase** — the query is chased under Σ (the solver's cached chase,
   so repeated rewrites of one workload share the work).  Chasing first
   matters: a dependency can expose a view match that is invisible in the
   query's own atoms (the intro example's ``Q2(e) :- EMP(e, s, d)``
   matches the EMP⋈DEP view only after the foreign key adds the DEP
   atom).  Because the chase has already applied Σ's FD/EGD merges, view
   matching sees the canonical form — key-merged atoms cannot hide
   coverage.
2. **Catalog index / view selection** — the active rewriter strategy
   (see :mod:`repro.views.registry`) decides which catalog views are
   worth a homomorphism search at all.  ``"exhaustive"`` tries every
   view; ``"bucketed"`` probes a :class:`~repro.views.index.CatalogIndex`
   keyed on relation signatures, so a thousand-view catalog costs only
   its handful of signature-compatible views.
3. **Image discovery** — the surviving views' defining queries are
   matched into the chase by homomorphism; the view tgds of the textbook
   backchase are applied here as one-shot match rules rather than as
   chase dependencies.
4. **Candidate generation** — the strategy turns matched images into
   candidate combinations: all subsets up to the size budget
   (exhaustive) or MiniCon-style bucket growth
   (:mod:`repro.views.buckets`).
5. **Certification and ranking** — each candidate (view atoms plus the
   uncovered base atoms) is expanded back to the base schema and kept
   exactly when the containment engine certifies it equivalent to the
   original query under Σ, in both directions, with certainty; certified
   rewritings are ranked by a :mod:`~repro.views.cost` model — by
   default fewest atoms, then fewest base-relation accesses.

Per-stage wall-clock timings land in ``RewriteReport.stage_timings``
(surfaced by ``repro rewrite --explain``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.containment.result import ContainmentResult
from repro.dependencies.dependency_set import DependencySet
from repro.exceptions import QueryError, ViewError
from repro.homomorphism.problem import HomomorphismProblem
from repro.homomorphism.query_homomorphism import build_target_index
from repro.homomorphism.search import iter_homomorphisms
from repro.obs import probe as _probe
from repro.obs.clock import Stopwatch
from repro.queries.conjunct import Conjunct
from repro.queries.conjunctive_query import ConjunctiveQuery
from repro.terms.term import Term, Variable
from repro.views.buckets import (
    BucketStatistics,
    build_buckets,
    iter_bucket_combinations,
)
from repro.views.cost import CostModel, default_cost
from repro.views.expansion import expand_query
from repro.views.index import build_catalog_index
from repro.views.registry import register_rewriter
from repro.views.view import ViewCatalog


@dataclass(frozen=True)
class ViewImage:
    """One match of a view's body into the chased query.

    ``atom`` is the view atom the match induces (the view's head under the
    homomorphism); ``covered_labels`` are the labels of the *level-0* chase
    conjuncts the body mapped onto — the atoms this image can replace.
    Matches landing only on chase-created conjuncts cover nothing and are
    discarded: they could never shrink the query.
    """

    view_name: str
    atom: Conjunct
    covered_labels: FrozenSet[str]


@dataclass
class Rewriting:
    """One certified rewriting of the original query over the views."""

    query: ConjunctiveQuery          # over the catalog's extended schema
    expansion: ConjunctiveQuery      # the unfolding, over the base schema
    view_names: Tuple[str, ...]      # views used, in atom order
    cost: Tuple
    forward: ContainmentResult       # Σ ⊨ expansion ⊆ original
    backward: ContainmentResult      # Σ ⊨ original ⊆ expansion

    @property
    def certified(self) -> bool:
        return (self.forward.certain and self.forward.holds
                and self.backward.certain and self.backward.holds)

    def describe(self) -> str:
        views = ", ".join(self.view_names)
        return f"{self.query}   [views: {views}; cost {self.cost}]"

    def as_dict(self) -> Dict[str, Any]:
        return {
            "query": str(self.query),
            "expansion": str(self.expansion),
            "views": list(self.view_names),
            "cost": list(self.cost),
            "atoms": len(self.query),
            "base_accesses": len(self.expansion),
        }


@dataclass
class RewriteReport:
    """The outcome of one chase & backchase search.

    ``rewritings`` holds every certified rewriting, best cost first.
    ``unsatisfiable`` flags the degenerate case where the chase failed on
    an FD constant clash: the query is empty on every Σ-database and the
    search is skipped.  ``search_truncated`` reports that a budget
    (``max_images`` or ``max_candidates``) cut the enumeration short, so
    an empty result is "none found within budget", not "none exists";
    ``views_skipped`` names the catalog views the image cap prevented
    from being scanned at all, so a truncated search is diagnosable.
    ``views_pruned`` counts views the strategy's catalog index rejected
    before any homomorphism search (always 0 for ``exhaustive``), and
    ``candidates_skipped_unsafe`` / ``candidates_deduped`` count the
    candidates the safety check and the dedup set swallowed — the data
    budget tuning needs.  ``stage_timings`` maps pipeline stage names to
    wall-clock seconds.
    """

    original: ConjunctiveQuery
    dependencies: DependencySet
    catalog_size: int
    rewritings: List[Rewriting] = field(default_factory=list)
    images_found: int = 0
    candidates_tried: int = 0
    unsatisfiable: bool = False
    search_truncated: bool = False
    strategy: str = "exhaustive"
    views_pruned: int = 0
    views_skipped: List[str] = field(default_factory=list)
    candidates_skipped_unsafe: int = 0
    candidates_deduped: int = 0
    stage_timings: Dict[str, float] = field(default_factory=dict)

    @property
    def best(self) -> Optional[Rewriting]:
        """The cheapest certified rewriting, if any."""
        return self.rewritings[0] if self.rewritings else None

    def describe(self) -> str:
        lines = [
            f"rewriting {self.original.name} over {self.catalog_size} view(s): "
            f"{self.images_found} image(s), {self.candidates_tried} candidate(s), "
            f"{len(self.rewritings)} certified"
        ]
        if self.unsatisfiable:
            lines.append("  query is unsatisfiable under Σ (FD constant clash)")
        if self.search_truncated:
            lines.append("  search truncated by budget")
        if self.views_skipped:
            shown = ", ".join(self.views_skipped[:8])
            more = len(self.views_skipped) - 8
            suffix = f" (+{more} more)" if more > 0 else ""
            lines.append(
                f"  image cap hit: {len(self.views_skipped)} view(s) never "
                f"scanned: {shown}{suffix}")
        if self.views_pruned:
            lines.append(
                f"  strategy {self.strategy!r} pruned {self.views_pruned} "
                "view(s) by signature before matching")
        if self.candidates_skipped_unsafe or self.candidates_deduped:
            lines.append(
                f"  candidates: {self.candidates_skipped_unsafe} skipped "
                f"unsafe, {self.candidates_deduped} deduplicated")
        for rank, rewriting in enumerate(self.rewritings, start=1):
            lines.append(f"  #{rank} {rewriting.describe()}")
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "original": str(self.original),
            "catalog_size": self.catalog_size,
            "images_found": self.images_found,
            "candidates_tried": self.candidates_tried,
            "unsatisfiable": self.unsatisfiable,
            "search_truncated": self.search_truncated,
            "strategy": self.strategy,
            "views_pruned": self.views_pruned,
            "views_skipped": list(self.views_skipped),
            "candidates_skipped_unsafe": self.candidates_skipped_unsafe,
            "candidates_deduped": self.candidates_deduped,
            "stage_timings": {stage: round(seconds, 6)
                              for stage, seconds in self.stage_timings.items()},
            "rewritings": [rewriting.as_dict() for rewriting in self.rewritings],
        }


# ---------------------------------------------------------------------------
# Phase 1: chase + view matching
# ---------------------------------------------------------------------------


def match_level(catalog: ViewCatalog) -> int:
    """Default chase depth for view matching.

    A view body of b atoms needs at most b chased atoms to map onto, and
    the restricted chase adds one level per IND application along a path,
    so chasing to the size of the largest body (with a floor of 2) exposes
    the matches that single foreign-key steps create.  Deeper matches are
    possible in contrived schemas; callers can raise the level explicitly.
    """
    sizes = [len(view.definition) for view in catalog]
    return max([2] + sizes)


def find_view_images(views: Sequence,
                     chase_atoms: Sequence[Conjunct],
                     base_labels: Set[str],
                     max_images: int,
                     ) -> Tuple[List[ViewImage], bool, List[str]]:
    """All (deduplicated) matches of the given views into the chase.

    ``views`` is any iterable of :class:`~repro.views.view.View` — the
    whole catalog, or the subset a strategy's index selected.  Returns
    the images, a truncation flag, and the names of the views the image
    cap prevented from being scanned at all (hitting the cap mid-catalog
    used to abandon the remaining views silently).

    Images with identical view atoms are merged, their coverage unioned:
    each underlying homomorphism justifies replacing its own covered
    atoms, and the certification phase rejects any union that
    over-reaches.  The merge trades completeness for boundedness — when
    a rejected union hides a certifiable per-homomorphism sub-candidate
    (automorphic matches of a symmetric view body covering different
    atoms), that smaller rewriting is not enumerated; like the budget
    caps, an empty answer means "none found by this search", not "none
    exists".
    """
    index = build_target_index(chase_atoms)
    label_by_key: Dict[Tuple[str, Tuple[Term, ...]], str] = {
        (atom.relation, atom.terms): atom.label
        for atom in chase_atoms if atom.label in base_labels
    }
    merged: Dict[Tuple[str, Tuple[Term, ...]], Set[str]] = {}
    order: List[Tuple[str, Tuple[Term, ...]]] = []
    truncated = False
    capped = False
    views_skipped: List[str] = []
    view_list = list(views)
    for scan_position, view in enumerate(view_list):
        if capped:
            views_skipped = [skipped.name
                             for skipped in view_list[scan_position:]]
            break
        problem = HomomorphismProblem(view.definition.conjuncts, index)
        # Distinct homomorphisms can collapse to one image (same head
        # terms), so the enumeration gets its own per-view cap: without it
        # a view with many automorphic matches could spin without ever
        # registering a new image.
        enumeration_budget = max_images * 16
        for assignment in iter_homomorphisms(problem):
            enumeration_budget -= 1
            if enumeration_budget < 0:
                truncated = True
                break
            head_terms = tuple(assignment[variable] for variable in view.head)
            covered = set()
            for body_atom in view.definition.conjuncts:
                image_terms = tuple(
                    assignment[term] if isinstance(term, Variable) else term
                    for term in body_atom.terms
                )
                label = label_by_key.get((body_atom.relation, image_terms))
                if label is not None:
                    covered.add(label)
            if not covered:
                continue
            key = (view.name, head_terms)
            if key not in merged:
                if len(order) >= max_images:
                    truncated = True
                    capped = True
                    break
                merged[key] = covered
                order.append(key)
            else:
                merged[key] |= covered
    images = [
        ViewImage(
            view_name=view_name,
            atom=Conjunct(view_name, terms, label=f"{view_name}#{position}"),
            covered_labels=frozenset(merged[(view_name, terms)]),
        )
        for position, (view_name, terms) in enumerate(order)
    ]
    return images, truncated, views_skipped


# ---------------------------------------------------------------------------
# Candidate-generation strategies (see repro.views.registry)
# ---------------------------------------------------------------------------


class ExhaustiveRewriter:
    """The seed behaviour: match every view, try every image subset.

    The certified reference the bucketed strategy is differentially
    tested against — its enumeration order and truncation points are
    byte-identical to the pre-registry monolithic search.
    """

    strategy_name = "exhaustive"

    def __init__(self) -> None:
        self.views_pruned = 0
        self.combos_pruned_unsafe = 0

    def select_views(self, catalog, chase_atoms, index_provider):
        return list(catalog)

    def candidate_combinations(self, images, base_conjuncts, summary_row,
                               max_combination_size):
        def generate():
            for size in range(1, max_combination_size + 1):
                yield from combinations(images, size)
        return generate()


class BucketedRewriter:
    """MiniCon-style: signature-index view pruning + bucketed growth."""

    strategy_name = "bucketed"

    def __init__(self) -> None:
        self.views_pruned = 0
        self.statistics = BucketStatistics()

    @property
    def combos_pruned_unsafe(self) -> int:
        return self.statistics.combos_pruned_unsafe

    def select_views(self, catalog, chase_atoms, index_provider):
        index = index_provider()
        survivors = index.probe(chase_atoms)
        selected = [view for view in catalog if view.name in survivors]
        self.views_pruned = len(catalog) - len(selected)
        return selected

    def candidate_combinations(self, images, base_conjuncts, summary_row,
                               max_combination_size):
        # Buckets are built eagerly so the pipeline's stage timer sees
        # the build; only the growth enumeration is lazy.
        buckets = build_buckets(images, base_conjuncts)
        self.statistics.buckets = len(buckets)
        return iter_bucket_combinations(
            images, buckets, base_conjuncts, summary_row,
            max_combination_size, self.statistics)


register_rewriter("exhaustive", ExhaustiveRewriter)
register_rewriter("bucketed", BucketedRewriter)


# ---------------------------------------------------------------------------
# Phase 2: backchase
# ---------------------------------------------------------------------------


def _is_safe(conjuncts: Sequence[Conjunct], summary_row: Sequence[Term]) -> bool:
    """True if every summary-row variable occurs in some conjunct."""
    body_terms = {term for conjunct in conjuncts for term in conjunct.terms}
    return all(
        entry in body_terms
        for entry in summary_row if isinstance(entry, Variable)
    )


def rewrite_with_views(query: ConjunctiveQuery,
                       catalog: ViewCatalog,
                       dependencies: Optional[DependencySet] = None,
                       solver=None,
                       cost_model: Optional[CostModel] = None,
                       max_images: int = 64,
                       max_combination_size: int = 2,
                       max_candidates: int = 256,
                       chase_level: Optional[int] = None,
                       chase_max_conjuncts: Optional[int] = None,
                       strategy: Optional[str] = None,
                       catalog_index=None,
                       **containment_options) -> RewriteReport:
    """Chase & backchase search for view-based rewritings of ``query``.

    ``solver`` is the :class:`~repro.api.solver.Solver` whose chase and
    containment caches back the search (``None`` uses the process-wide
    default); every certification is a pair of containment calls through
    it.  ``cost_model`` ranks certified rewritings (default:
    :func:`~repro.views.cost.default_cost`).  The three budgets bound the
    number of view images collected, the number of view atoms per
    candidate, and the number of candidates certified.

    ``strategy`` names a registered rewriter (``None`` resolves through
    ``$REPRO_REWRITE_STRATEGY`` to ``"exhaustive"``); ``catalog_index``
    optionally supplies a prebuilt
    :class:`~repro.views.index.CatalogIndex` for the catalog (the solver
    passes its fingerprint-cached one) — index-using strategies build a
    fresh one when it is absent.

    ``containment_options`` are the legacy containment keywords, passed
    through to every certification call; the matching chase follows the
    solver's variant and, unless overridden here, its conjunct budget.
    """
    report = _rewrite_with_views(
        query, catalog, dependencies, solver, cost_model, max_images,
        max_combination_size, max_candidates, chase_level,
        chase_max_conjuncts, strategy, catalog_index, **containment_options)
    probe = _probe.ACTIVE
    if probe is not None:
        probe.rewrite(report.candidates_tried, len(report.rewritings),
                      report.images_found,
                      views_pruned=report.views_pruned,
                      candidates_skipped_unsafe=report.candidates_skipped_unsafe,
                      candidates_deduped=report.candidates_deduped)
    return report


def _rewrite_with_views(query: ConjunctiveQuery,
                        catalog: ViewCatalog,
                        dependencies: Optional[DependencySet] = None,
                        solver=None,
                        cost_model: Optional[CostModel] = None,
                        max_images: int = 64,
                        max_combination_size: int = 2,
                        max_candidates: int = 256,
                        chase_level: Optional[int] = None,
                        chase_max_conjuncts: Optional[int] = None,
                        strategy: Optional[str] = None,
                        catalog_index=None,
                        **containment_options) -> RewriteReport:
    from repro.api.solver import resolve_solver
    from repro.chase.engine import ChaseConfig
    from repro.views.registry import create_rewriter

    session = resolve_solver(solver)
    sigma = dependencies if dependencies is not None else DependencySet()
    ranking = cost_model if cost_model is not None else default_cost
    if catalog.base_schema is not None and catalog.base_schema != query.input_schema:
        raise ViewError(
            f"query {query.name} is not over the catalog's base schema")
    rewriter = create_rewriter(strategy)
    report = RewriteReport(original=query, dependencies=sigma,
                           catalog_size=len(catalog),
                           strategy=rewriter.strategy_name)
    if len(catalog) == 0:
        return report

    timings = report.stage_timings
    watch = Stopwatch()
    chase_config = ChaseConfig(
        variant=containment_options.get("variant", session.config.variant),
        max_level=chase_level if chase_level is not None else match_level(catalog),
        max_conjuncts=(chase_max_conjuncts if chase_max_conjuncts is not None
                       else session.config.chase_max_conjuncts),
        record_trace=False,
        engine=session.config.chase_engine,
    )
    chase_result = session.chase(query, sigma, chase_config)
    timings["chase"] = watch.restart()
    if chase_result.failed:
        report.unsatisfiable = True
        return report

    # The FD-normalised original: level-0 conjuncts plus the (possibly
    # merged) summary row.  Candidates are built from these atoms so FD
    # merges performed by the chase do not mask coverage — and the
    # strategy's index probe sees the chased canonical form, so
    # EGD-implied equalities cannot hide a view either.
    base_conjuncts = chase_result.conjuncts_up_to_level(0)
    summary_row = chase_result.summary_row
    base_labels = {conjunct.label for conjunct in base_conjuncts}
    chase_atoms = list(chase_result.conjuncts())

    def index_provider():
        if catalog_index is not None:
            return catalog_index
        return build_catalog_index(catalog)

    selected_views = rewriter.select_views(catalog, chase_atoms, index_provider)
    report.views_pruned = rewriter.views_pruned
    timings["index_probe"] = watch.restart()

    images, truncated, views_skipped = find_view_images(
        selected_views, chase_atoms, base_labels, max_images)
    report.images_found = len(images)
    report.search_truncated = truncated
    report.views_skipped = views_skipped
    timings["image_discovery"] = watch.restart()
    if not images:
        return report
    # Images covering the most atoms first: singletons that replace whole
    # joins are certified before marginal ones, so a tight candidate
    # budget still sees the best rewritings.
    images.sort(key=lambda image: (-len(image.covered_labels),
                                   image.view_name, image.atom.label))

    candidate_combinations = rewriter.candidate_combinations(
        images, base_conjuncts, summary_row, max(1, max_combination_size))
    timings["candidate_generation"] = watch.restart()

    extended = catalog.extended_schema()
    seen_candidates: Set[FrozenSet[Tuple[str, Tuple[Term, ...]]]] = set()
    certified: List[Rewriting] = []
    for combo in candidate_combinations:
        if report.candidates_tried >= max_candidates:
            report.search_truncated = True
            break
        covered: Set[str] = set()
        for image in combo:
            covered |= image.covered_labels
        remainder = [c for c in base_conjuncts if c.label not in covered]
        candidate_conjuncts = [image.atom for image in combo] + remainder
        candidate_key = frozenset(
            (c.relation, c.terms) for c in candidate_conjuncts)
        if candidate_key in seen_candidates:
            report.candidates_deduped += 1
            continue
        seen_candidates.add(candidate_key)
        if not _is_safe(candidate_conjuncts, summary_row):
            report.candidates_skipped_unsafe += 1
            continue
        report.candidates_tried += 1
        try:
            candidate = ConjunctiveQuery(
                input_schema=extended,
                conjuncts=candidate_conjuncts,
                summary_row=summary_row,
                output_attributes=query.output_attributes,
                name=f"{query.name}_views",
            )
            expansion = expand_query(
                candidate, catalog, name=f"{query.name}_views_expanded")
        except QueryError:
            continue
        forward = session.is_contained(expansion, query, sigma,
                                       **containment_options)
        if not (forward.certain and forward.holds):
            continue
        backward = session.is_contained(query, expansion, sigma,
                                        **containment_options)
        if not (backward.certain and backward.holds):
            continue
        certified.append(Rewriting(
            query=candidate,
            expansion=expansion,
            view_names=tuple(image.view_name for image in combo),
            cost=tuple(ranking(candidate, expansion)),
            forward=forward,
            backward=backward,
        ))
    # The bucketed strategy pre-filters unsafe combinations during
    # growth; fold its count in so the report is strategy-agnostic.
    report.candidates_skipped_unsafe += getattr(
        rewriter, "combos_pruned_unsafe", 0)
    timings["certification"] = watch.restart()

    certified.sort(key=lambda rewriting: rewriting.cost)
    report.rewritings = certified
    timings["ranking"] = watch.restart()
    return report
