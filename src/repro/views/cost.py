"""Cost models for ranking certified rewritings.

A cost model is any callable taking (rewriting, expansion) — the candidate
query over the extended schema and its unfolding over the base schema —
and returning a sortable value; smaller is better.  The default prefers
the fewest atoms in the rewriting itself (each atom is one scan of a
materialized view or base table), breaking ties by the fewest base
relation accesses its expansion performs (a proxy for how much work the
views have pre-computed).
"""

from __future__ import annotations

from typing import Callable, Tuple

from repro.queries.conjunctive_query import ConjunctiveQuery

#: ``cost_model(rewriting, expansion) -> sortable`` — smaller is better.
CostModel = Callable[[ConjunctiveQuery, ConjunctiveQuery], Tuple]


def default_cost(rewriting: ConjunctiveQuery,
                 expansion: ConjunctiveQuery) -> Tuple[int, int]:
    """Fewest atoms first, then fewest base-relation accesses."""
    return (len(rewriting), len(expansion))


def view_atoms_first(rewriting: ConjunctiveQuery,
                     expansion: ConjunctiveQuery) -> Tuple[int, int, int]:
    """Alternative model: maximise coverage by views, then apply the default.

    Useful when view scans are much cheaper than base scans (e.g. the
    views are materialized aggregates): among equally small rewritings it
    prefers the one whose expansion replaces the most base atoms.
    """
    base_atoms_kept = sum(
        1 for conjunct in rewriting.conjuncts
        if conjunct.relation in expansion.input_schema
    )
    return (base_atoms_kept,) + default_cost(rewriting, expansion)
