"""repro.views — answering queries using materialized views.

The subsystem packages the paper's containment test into the flagship
industrial workload built on top of it: rewriting a conjunctive query to
use **materialized views** under FDs and INDs, via chase & backchase.

* :class:`View` / :class:`ViewCatalog` — named CQ views over a base
  schema and the extended schema they induce;
* :func:`expand_query` — unfold view atoms back to base atoms with
  fresh-variable hygiene;
* :func:`rewrite_with_views` — the staged chase & backchase pipeline
  (catalog index → image discovery → candidate generation →
  certification → ranking) returning a ranked :class:`RewriteReport`
  of certified rewritings;
* :mod:`repro.views.registry` — the pluggable candidate-generation
  strategies (``"exhaustive"`` — the certified reference subset sweep;
  ``"bucketed"`` — MiniCon-style buckets behind a
  :class:`CatalogIndex` for thousand-view catalogs);
* :mod:`repro.views.cost` — pluggable ranking (default: fewest atoms,
  then fewest base-relation accesses).

The session-level entry point is :meth:`repro.api.Solver.rewrite`, which
adds cross-call caching keyed on (query, catalog, Σ) fingerprints and
shares one :class:`CatalogIndex` per catalog fingerprint.
"""

from repro.views.buckets import (
    BucketStatistics,
    build_buckets,
    iter_bucket_combinations,
)
from repro.views.cost import CostModel, default_cost, view_atoms_first
from repro.views.expansion import expand_query, expand_view_atom
from repro.views.index import CatalogIndex, build_catalog_index
from repro.views.registry import (
    DEFAULT_REWRITE_STRATEGY,
    REWRITE_STRATEGY_ENV_VAR,
    RewriterProtocol,
    available_rewriters,
    create_rewriter,
    register_rewriter,
    resolve_rewriter_name,
    validate_rewriter_name,
)
from repro.views.rewriting import (
    BucketedRewriter,
    ExhaustiveRewriter,
    RewriteReport,
    Rewriting,
    ViewImage,
    find_view_images,
    match_level,
    rewrite_with_views,
)
from repro.views.view import View, ViewCatalog

__all__ = [
    "BucketStatistics",
    "BucketedRewriter",
    "CatalogIndex",
    "CostModel",
    "DEFAULT_REWRITE_STRATEGY",
    "ExhaustiveRewriter",
    "REWRITE_STRATEGY_ENV_VAR",
    "RewriteReport",
    "RewriterProtocol",
    "Rewriting",
    "View",
    "ViewCatalog",
    "ViewImage",
    "available_rewriters",
    "build_buckets",
    "build_catalog_index",
    "create_rewriter",
    "default_cost",
    "expand_query",
    "expand_view_atom",
    "find_view_images",
    "iter_bucket_combinations",
    "match_level",
    "register_rewriter",
    "resolve_rewriter_name",
    "rewrite_with_views",
    "validate_rewriter_name",
    "view_atoms_first",
]
