"""repro.views — answering queries using materialized views.

The subsystem packages the paper's containment test into the flagship
industrial workload built on top of it: rewriting a conjunctive query to
use **materialized views** under FDs and INDs, via chase & backchase.

* :class:`View` / :class:`ViewCatalog` — named CQ views over a base
  schema and the extended schema they induce;
* :func:`expand_query` — unfold view atoms back to base atoms with
  fresh-variable hygiene;
* :func:`rewrite_with_views` — the chase & backchase search returning a
  ranked :class:`RewriteReport` of certified rewritings;
* :mod:`repro.views.cost` — pluggable ranking (default: fewest atoms,
  then fewest base-relation accesses).

The session-level entry point is :meth:`repro.api.Solver.rewrite`, which
adds cross-call caching keyed on (query, catalog, Σ) fingerprints.
"""

from repro.views.cost import CostModel, default_cost, view_atoms_first
from repro.views.expansion import expand_query, expand_view_atom
from repro.views.rewriting import (
    RewriteReport,
    Rewriting,
    ViewImage,
    find_view_images,
    match_level,
    rewrite_with_views,
)
from repro.views.view import View, ViewCatalog

__all__ = [
    "CostModel",
    "RewriteReport",
    "Rewriting",
    "View",
    "ViewCatalog",
    "ViewImage",
    "default_cost",
    "expand_query",
    "expand_view_atom",
    "find_view_images",
    "match_level",
    "rewrite_with_views",
    "view_atoms_first",
]
