"""View expansion: unfolding view atoms back to base atoms.

A candidate rewriting is a conjunctive query over the catalog's extended
schema; before it can be certified (or executed against a base database)
its view atoms must be *expanded*: each atom ``V(t1, ..., tk)`` is
replaced by the view's body with the i-th head variable substituted by
``t_i`` and every existential (projected-away) body variable renamed to a
fresh NDV.  Freshness matters twice over — two expansions of the same view
must not share existentials, and no expansion may capture a variable of
the host query — so all renaming goes through one
:class:`~repro.terms.naming.FreshVariableFactory` per expansion call,
whose ``created=True`` serial-named NDVs cannot collide with user-written
variables (``created=False``) or with chase-created ones (distinct
``v``/``n`` prefixes).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.exceptions import ViewError
from repro.queries.conjunct import Conjunct
from repro.queries.conjunctive_query import ConjunctiveQuery
from repro.terms.naming import FreshVariableFactory
from repro.terms.substitution import Substitution
from repro.terms.term import Term, Variable
from repro.views.view import View, ViewCatalog

#: Prefix for expansion-created NDVs; the chase factory uses ``n``.
EXPANSION_PREFIX = "v"


def expand_view_atom(atom: Conjunct, view: View,
                     factory: FreshVariableFactory) -> List[Conjunct]:
    """The base atoms one view atom unfolds to.

    Labels compose the host atom's label with the body labels
    (``c1.c2``), so every unfolded atom stays attributable to the view
    occurrence it came from.
    """
    if atom.relation != view.name:
        raise ViewError(
            f"atom {atom} cannot be expanded with view {view.name!r}")
    if atom.arity != view.arity:
        raise ViewError(
            f"atom {atom} has arity {atom.arity} but view {view.name!r} "
            f"has arity {view.arity}")
    mapping: Dict[Variable, Term] = {}
    for head_variable, term in zip(view.head, atom.terms):
        mapping[head_variable] = term
    for existential in view.existential_variables():
        mapping[existential] = factory.fresh()
    substitution = Substitution(mapping)
    return [
        body_atom.substitute(substitution, label=f"{atom.label}.{body_atom.label}")
        for body_atom in view.definition.conjuncts
    ]


def expand_query(query: ConjunctiveQuery, catalog: ViewCatalog,
                 name: Optional[str] = None) -> ConjunctiveQuery:
    """Unfold every view atom of ``query`` back to the base schema.

    Atoms over base relations are kept as they are; the summary row is
    unchanged (view heads are substituted by the atom's terms, so head
    variables of the host query survive expansion).  The result is a query
    over the catalog's base schema, suitable for containment tests against
    the original query.
    """
    base_schema = catalog.base_schema
    if base_schema is None:
        raise ViewError("cannot expand against an empty catalog with no schema")
    factory = FreshVariableFactory(prefix=EXPANSION_PREFIX)
    conjuncts: List[Conjunct] = []
    for atom in query.conjuncts:
        if catalog.is_view(atom.relation):
            conjuncts.extend(expand_view_atom(atom, catalog.get(atom.relation), factory))
        elif atom.relation in base_schema:
            conjuncts.append(atom)
        else:
            raise ViewError(
                f"atom {atom} is over {atom.relation!r}, which is neither a "
                "base relation nor a view of the catalog")
    return ConjunctiveQuery(
        input_schema=base_schema,
        conjuncts=conjuncts,
        summary_row=query.summary_row,
        output_attributes=query.output_attributes,
        name=name or f"{query.name}_expanded",
    )
