"""A persistent signature index over a view catalog's bodies.

A view can only match into a chased query when every relation its body
mentions (at the right arity) appears among the chase's atoms, and every
constant its body pins at a position appears at that position in some
chase atom of the same relation.  For a production catalog of thousands
of LAV views over a wide schema, most views fail that test for any given
query — and the exhaustive strategy still pays a homomorphism search per
view to find out.

:class:`CatalogIndex` precomputes, once per catalog:

* per view, its **requirement signature** — the set of ``relation/arity``
  keys its body needs, plus its ``(relation, position, constant)``
  pins;
* an inverted ``relation/arity → views`` posting list.

:meth:`CatalogIndex.probe` then takes the chased atom set and returns
exactly the views whose requirements are satisfiable, touching only the
posting lists of relations actually present — views over absent
relations cost nothing.  The probe is sound, never complete: a surviving
view may still have no homomorphism; a pruned view provably has none.

Probing happens against the *chased* atoms, so EGD/FD-implied equalities
from Σ are already applied (key-merged constants are visible at their
merged positions) and coverage a raw-query index would miss is kept.

Indexes are built once per catalog fingerprint and shared through the
solver's rewrite plumbing (:meth:`repro.api.solver.Solver` keeps a small
fingerprint-keyed cache).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from repro.queries.conjunct import Conjunct
from repro.terms.term import Constant
from repro.views.view import ViewCatalog

__all__ = ["CatalogIndex", "build_catalog_index"]

#: A relation requirement: ``"REL/arity"`` — arity rides along so a view
#: over a same-named relation of different shape can never survive.
RelationKey = str

#: A constant pin: (relation key, position, constant type, constant repr).
ConstantKey = Tuple[str, int, str, str]


def _relation_key(relation: str, arity: int) -> RelationKey:
    return f"{relation}/{arity}"


def _constant_key(relation_key: RelationKey, position: int,
                  constant: Constant) -> ConstantKey:
    # Type name + repr keeps 1 and "1" distinct, mirroring term_signature.
    return (relation_key, position,
            type(constant.value).__name__, repr(constant.value))


class CatalogIndex:
    """The per-catalog signature index; build via :func:`build_catalog_index`."""

    __slots__ = ("view_names", "_required", "_constants", "_postings")

    def __init__(self, view_names: Tuple[str, ...],
                 required: Dict[str, FrozenSet[RelationKey]],
                 constants: Dict[str, Tuple[ConstantKey, ...]],
                 postings: Dict[RelationKey, Tuple[str, ...]]):
        self.view_names = view_names
        self._required = required
        self._constants = constants
        self._postings = postings

    def __len__(self) -> int:
        return len(self.view_names)

    def probe(self, chase_atoms: Sequence[Conjunct]) -> Set[str]:
        """Names of the views whose signature the chased atoms satisfy."""
        present: Set[RelationKey] = set()
        pinned: Set[ConstantKey] = set()
        for atom in chase_atoms:
            key = _relation_key(atom.relation, len(atom.terms))
            present.add(key)
            for position, term in enumerate(atom.terms):
                if isinstance(term, Constant):
                    pinned.add(_constant_key(key, position, term))
        # Count posting hits; a view survives when every required
        # relation is present.  Views over absent relations are never
        # visited — the probe's cost scales with the chase, not the
        # catalog.
        hits: Dict[str, int] = {}
        for key in present:
            for name in self._postings.get(key, ()):
                hits[name] = hits.get(name, 0) + 1
        survivors = {
            name for name, count in hits.items()
            if count == len(self._required[name])
        }
        if not survivors:
            return survivors
        return {
            name for name in survivors
            if all(pin in pinned for pin in self._constants[name])
        }


def build_catalog_index(catalog: ViewCatalog) -> CatalogIndex:
    """Index every view body's relation/arity/constant signature."""
    required: Dict[str, FrozenSet[RelationKey]] = {}
    constants: Dict[str, Tuple[ConstantKey, ...]] = {}
    postings: Dict[RelationKey, List[str]] = {}
    names: List[str] = []
    for view in catalog:
        names.append(view.name)
        keys: Set[RelationKey] = set()
        pins: List[ConstantKey] = []
        for atom in view.definition.conjuncts:
            key = _relation_key(atom.relation, len(atom.terms))
            keys.add(key)
            for position, term in enumerate(atom.terms):
                if isinstance(term, Constant):
                    pins.append(_constant_key(key, position, term))
        required[view.name] = frozenset(keys)
        constants[view.name] = tuple(pins)
        for key in keys:
            postings.setdefault(key, []).append(view.name)
    return CatalogIndex(
        tuple(names), required, constants,
        {key: tuple(view_names) for key, view_names in postings.items()})
