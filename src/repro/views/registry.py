"""The rewriter-strategy registry: pluggable candidate generation.

PR 9 made the chase engine pluggable behind ``chase/registry.py``; this
module is the same shape for the view-rewriting pipeline's candidate
generation stage.  A *rewriter* decides which catalog views are worth
matching and which image combinations become candidate rewritings; the
chase, certification, and ranking stages around it are shared.

Two strategies ship built in:

* ``"exhaustive"`` — the seed behaviour, kept verbatim: every view is
  matched, candidates are all subsets of the matched images up to the
  combination-size budget.  The certified reference.
* ``"bucketed"`` — MiniCon-style: a :class:`~repro.views.index.CatalogIndex`
  prunes views whose body relations (or constants) cannot occur in the
  chased query before any homomorphism search, and candidates grow only
  through per-subgoal buckets (see :mod:`repro.views.buckets`).

Selection funnels through one shared validator, exactly like the chase
engines: :class:`~repro.api.config.SolverConfig.rewrite_strategy`, the
CLI's ``--strategy``, and ``$REPRO_REWRITE_STRATEGY`` all resolve here.

This module stays import-light (no queries/homomorphism imports) so
``repro.api.config`` can validate names without cycles; the builtin
strategies register themselves when :mod:`repro.views.rewriting` loads.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Protocol, Sequence, runtime_checkable

from repro.exceptions import ViewError

__all__ = [
    "DEFAULT_REWRITE_STRATEGY",
    "REWRITE_STRATEGY_ENV_VAR",
    "RewriterProtocol",
    "available_rewriters",
    "create_rewriter",
    "register_rewriter",
    "resolve_rewriter_name",
    "rewriter_factory",
    "validate_rewriter_name",
]

#: Environment variable consulted when no strategy is configured.
REWRITE_STRATEGY_ENV_VAR = "REPRO_REWRITE_STRATEGY"

#: The strategy used when neither config nor environment chooses one.
DEFAULT_REWRITE_STRATEGY = "exhaustive"

#: A factory takes no arguments and returns a fresh rewriter instance
#: (rewriters carry per-search counters, so instances are never shared).
RewriterFactory = Callable[[], "RewriterProtocol"]

_REGISTRY: Dict[str, RewriterFactory] = {}


@runtime_checkable
class RewriterProtocol(Protocol):
    """What the rewrite pipeline requires of a candidate-generation strategy.

    ``strategy_name`` echoes the registry name into reports.
    ``views_pruned`` is read after :meth:`select_views` (how many catalog
    views the strategy refused to match at all).
    """

    strategy_name: str
    views_pruned: int

    def select_views(self, catalog, chase_atoms, index_provider) -> Sequence:
        """The catalog views worth running a homomorphism search for.

        ``index_provider`` is a zero-argument callable returning the
        catalog's :class:`~repro.views.index.CatalogIndex` (possibly from
        the solver's cross-call cache); strategies that do not index
        simply never call it.
        """
        ...

    def candidate_combinations(self, images, base_conjuncts, summary_row,
                               max_combination_size):
        """Yield tuples of :class:`ViewImage` to try as candidate rewritings."""
        ...


def register_rewriter(name: str, factory: RewriterFactory, *,
                      replace: bool = False) -> None:
    """Register a rewriter factory under ``name``.

    Registration is additive; re-registering an existing name raises
    unless ``replace=True`` (so a typo cannot silently shadow a builtin).
    """
    if not name:
        raise ViewError("rewriter name must be a non-empty string")
    if name in _REGISTRY and not replace:
        raise ViewError(
            f"rewriter {name!r} is already registered; pass replace=True "
            "to override it")
    _REGISTRY[name] = factory


def available_rewriters() -> tuple:
    """Registered strategy names, in registration order (builtins first)."""
    _ensure_builtins()
    return tuple(_REGISTRY)


def validate_rewriter_name(name: str) -> str:
    """The one shared validator: returns ``name`` or raises :class:`ViewError`.

    ``SolverConfig``, the CLI, and the resolver below all funnel through
    here, so an unknown strategy fails identically at every layer.
    """
    _ensure_builtins()
    if name not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise ViewError(
            f"unknown rewrite strategy {name!r}; registered strategies: {known}")
    return name


def resolve_rewriter_name(name=None) -> str:
    """Resolve a possibly-absent strategy name to a registered one.

    Explicit name → ``$REPRO_REWRITE_STRATEGY`` → the default, validated.
    """
    resolved = name or os.environ.get(REWRITE_STRATEGY_ENV_VAR) or DEFAULT_REWRITE_STRATEGY
    return validate_rewriter_name(resolved)


def rewriter_factory(name=None) -> RewriterFactory:
    """The factory behind ``name`` (resolved as :func:`resolve_rewriter_name`)."""
    return _REGISTRY[resolve_rewriter_name(name)]


def create_rewriter(name=None) -> "RewriterProtocol":
    """A fresh rewriter instance for one search."""
    return rewriter_factory(name)()


def _ensure_builtins() -> None:
    """Import the builtin strategies on first registry use.

    ``repro.views.rewriting`` registers ``"exhaustive"`` and
    ``"bucketed"`` at import time; importing it lazily here avoids a
    circular import (rewriting imports this module for the protocol).
    """
    if DEFAULT_REWRITE_STRATEGY not in _REGISTRY:
        import repro.views.rewriting  # noqa: F401  (registers builtins)
