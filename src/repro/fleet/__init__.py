"""repro.fleet — a federated multi-node solver fleet.

The horizontal layer above :mod:`repro.service`: many worker nodes
(each a sharded solver service) behind one coordinator that routes by
the same tenant affinity, accounts capacity in chase nodes, and admits
work termination-aware — weakly-acyclic Σ is charged its position-graph
chase-size bound, uncertified Σ runs under clamped budgets.

* :class:`FleetNode` — a solver service that registers with a
  coordinator and heartbeats (``repro fleet serve-node``);
* :class:`FleetCoordinator` — the asyncio front end: affinity ring
  routing, MAAS-style capacity accounting, dead-node rerouting,
  fleet-wide stats (``repro fleet coordinate``);
* :class:`FleetClient` — a service client extended with the admin tier
  (``fleet.status``/``drain``/``evacuate``/``quota``);
* :mod:`repro.fleet.capacity` — the accounting and admission vocabulary
  shared by all of the above.

A plain :class:`~repro.service.client.ServiceClient` pointed at a
coordinator works unchanged: the user tier of the fleet *is* the
service protocol.
"""

from repro.fleet.capacity import (
    AdmissionDecision,
    AdmissionPolicy,
    CapacityError,
    NodeCapacity,
    TenantLedger,
    TenantQuota,
)
from repro.fleet.client import FleetClient
from repro.fleet.coordinator import FleetCoordinator, NodeConnection, NodeHandle
from repro.fleet.node import FleetNode, FleetNodeError

__all__ = [
    "AdmissionDecision",
    "AdmissionPolicy",
    "CapacityError",
    "FleetClient",
    "FleetCoordinator",
    "FleetNode",
    "FleetNodeError",
    "NodeCapacity",
    "NodeConnection",
    "NodeHandle",
    "TenantLedger",
    "TenantQuota",
]
