"""Capacity accounting and termination-aware admission for the fleet.

The unit of capacity is the **chase node** (a conjunct in a chase
result): every admitted request charges its estimated chase size against
the serving node's budget and releases it when the answer (or error)
comes back.  The accounting shape follows MAAS pods — each node exposes
``total`` / ``used`` / ``available`` with an ``over_commit_ratio``
multiplier — because chase estimates are upper bounds, so moderate
over-commit is safe by construction.

What a request costs is where the theory earns its keep:

* If the tenant's Σ is **certified terminating** (weakly acyclic — see
  :func:`repro.chase.termination.analyse_termination`), the position
  graph yields a finite chase-size bound
  (:class:`repro.chase.termination.ChaseSizeEstimate`), and the request
  is charged that bound against *real* capacity.
* If Σ is **not certified**, no finite bound exists; the request is
  admitted only with clamped budgets (``max_conjuncts``/``max_level``
  cut to the policy's uncertified ceilings) and charged the clamp —
  the budget *is* the bound for such a request.

Per-tenant quotas bound one tenant's share of the fleet regardless of
certification, so a single weakly-acyclic tenant with a huge (but
finite!) bound cannot starve everyone else.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.chase.termination import ChaseSizeEstimate
from repro.exceptions import ReproError

#: A tenant is its routing identity: (schema fingerprint, Σ fingerprint).
TenantKey = Tuple[str, str]


class CapacityError(ReproError):
    """Capacity bookkeeping was asked to do something inconsistent."""


class NodeCapacity:
    """One node's chase-node budget: total / used / available.

    ``total`` is the node's declared budget (by default the fleet sizes
    it as ``shard_count × limits.max_conjuncts`` — every shard fully
    busy on a worst-case request).  ``over_commit_ratio`` scales it, the
    MAAS way: estimates are upper bounds, so a ratio above 1.0 admits
    more than the declared total on the expectation that real chases
    come in under their bounds.

    Mutated only from the coordinator's event loop — no lock needed.
    """

    def __init__(self, total: int, over_commit_ratio: float = 1.0):
        if total <= 0:
            raise CapacityError(f"capacity total must be positive, got {total}")
        if over_commit_ratio <= 0:
            raise CapacityError(
                f"over_commit_ratio must be positive, got {over_commit_ratio}")
        self.total = int(total)
        self.over_commit_ratio = float(over_commit_ratio)
        self.used = 0
        self.admitted = 0
        self.rejected = 0

    @property
    def effective_total(self) -> int:
        return int(self.total * self.over_commit_ratio)

    @property
    def available(self) -> int:
        return self.effective_total - self.used

    def admit(self, cost: int) -> bool:
        """Charge ``cost`` if it fits; False (and a rejection counted) if not."""
        if cost <= 0:
            raise CapacityError(f"admission cost must be positive, got {cost}")
        if cost > self.available:
            self.rejected += 1
            return False
        self.used += cost
        self.admitted += 1
        return True

    def release(self, cost: int) -> None:
        self.used = max(0, self.used - cost)

    def snapshot(self) -> Dict[str, Any]:
        """The MAAS-shaped accounting row, JSON-ready."""
        return {
            "total": self.total,
            "over_commit_ratio": self.over_commit_ratio,
            "effective_total": self.effective_total,
            "used": self.used,
            "available": self.available,
            "admitted": self.admitted,
            "rejected": self.rejected,
        }


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant ceilings; ``None`` means unlimited on that axis.

    ``max_request_cost`` caps any single request's charged cost;
    ``max_in_flight_cost`` caps the sum of the tenant's concurrently
    admitted costs across the whole fleet.
    """

    max_request_cost: Optional[int] = None
    max_in_flight_cost: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("max_request_cost", "max_in_flight_cost"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise CapacityError(f"TenantQuota.{name} must be positive, got {value}")

    def as_dict(self) -> Dict[str, Any]:
        return {"max_request_cost": self.max_request_cost,
                "max_in_flight_cost": self.max_in_flight_cost}


class TenantLedger:
    """Fleet-wide in-flight cost per tenant, checked against quotas."""

    def __init__(self, default_quota: TenantQuota = TenantQuota()):
        self.default_quota = default_quota
        self._quotas: Dict[TenantKey, TenantQuota] = {}
        self._in_flight: Dict[TenantKey, int] = {}
        self.quota_rejections = 0

    def set_quota(self, tenant: TenantKey, quota: Optional[TenantQuota]) -> None:
        """Install (or with ``None`` clear) a tenant's explicit quota."""
        if quota is None:
            self._quotas.pop(tenant, None)
        else:
            self._quotas[tenant] = quota

    def quota_for(self, tenant: TenantKey) -> TenantQuota:
        return self._quotas.get(tenant, self.default_quota)

    def deny_reason(self, tenant: TenantKey, cost: int) -> Optional[str]:
        """Why the quota forbids charging ``cost`` now, or ``None`` if allowed."""
        quota = self.quota_for(tenant)
        if quota.max_request_cost is not None and cost > quota.max_request_cost:
            return (f"request cost {cost} exceeds the tenant's per-request "
                    f"quota of {quota.max_request_cost} chase nodes")
        in_flight = self._in_flight.get(tenant, 0)
        if (quota.max_in_flight_cost is not None
                and in_flight + cost > quota.max_in_flight_cost):
            return (f"request cost {cost} on top of {in_flight} in flight "
                    f"exceeds the tenant's quota of {quota.max_in_flight_cost} "
                    "chase nodes")
        return None

    def charge(self, tenant: TenantKey, cost: int) -> None:
        self._in_flight[tenant] = self._in_flight.get(tenant, 0) + cost

    def release(self, tenant: TenantKey, cost: int) -> None:
        remaining = self._in_flight.get(tenant, 0) - cost
        if remaining > 0:
            self._in_flight[tenant] = remaining
        else:
            self._in_flight.pop(tenant, None)

    def snapshot(self) -> Dict[str, Any]:
        return {
            "default_quota": self.default_quota.as_dict(),
            "explicit_quotas": len(self._quotas),
            "tenants_in_flight": len(self._in_flight),
            "in_flight_cost": sum(self._in_flight.values()),
            "quota_rejections": self.quota_rejections,
        }


@dataclass(frozen=True)
class AdmissionDecision:
    """What one request costs and under which budget clamps it may run.

    ``clamps`` is merged into the forwarded record for uncertified Σ —
    it is the coordinator *imposing* a finite bound where the theory
    could not certify one.  Certified requests forward unclamped (the
    worker's own :class:`~repro.service.protocol.ServiceLimits` still
    apply as a backstop).
    """

    cost: int
    certified: bool
    clamps: Dict[str, int] = field(default_factory=dict)
    estimate: Optional[ChaseSizeEstimate] = None

    def describe(self) -> Dict[str, Any]:
        detail: Dict[str, Any] = {"cost": self.cost, "certified": self.certified}
        if self.clamps:
            detail["clamps"] = dict(self.clamps)
        if self.estimate is not None:
            detail["estimate"] = self.estimate.describe()
        return detail


@dataclass(frozen=True)
class AdmissionPolicy:
    """How requests turn into costs (the termination-aware half).

    ``uncertified_max_conjuncts`` / ``uncertified_max_level`` are the
    budget clamps imposed on tenants whose Σ has no termination
    certificate; ``control_cost`` is the nominal charge for control-plane
    ops (ping/stats) so they pass through the same accounting without
    distorting it.
    """

    uncertified_max_conjuncts: int = 2_000
    uncertified_max_level: int = 8
    control_cost: int = 1

    def __post_init__(self) -> None:
        for name in ("uncertified_max_conjuncts", "uncertified_max_level",
                     "control_cost"):
            if getattr(self, name) <= 0:
                raise CapacityError(
                    f"AdmissionPolicy.{name} must be positive, "
                    f"got {getattr(self, name)}")

    def decide(self, certified: bool, estimate: Optional[ChaseSizeEstimate],
               query_atoms: int, requested_max_conjuncts: Optional[int],
               requested_max_level: Optional[int]) -> AdmissionDecision:
        """Cost a data-plane request.

        Certified Σ: the position-graph bound on the chase size, capped
        by the request's own ``max_conjuncts`` when the tenant asked for
        less (a tenant that budgets below its bound is charged its
        budget — it cannot use more).

        Uncertified Σ: charged the clamped ``max_conjuncts`` it will run
        under, with the clamps recorded for the forwarder to impose.
        """
        if certified and estimate is not None and estimate.bounded:
            cost = estimate.nodes(max(1, query_atoms))
            if requested_max_conjuncts is not None:
                cost = min(cost, requested_max_conjuncts)
            return AdmissionDecision(cost=max(1, cost), certified=True,
                                     estimate=estimate)
        max_conjuncts = self.uncertified_max_conjuncts
        if requested_max_conjuncts is not None:
            max_conjuncts = min(max_conjuncts, requested_max_conjuncts)
        max_level = self.uncertified_max_level
        if requested_max_level is not None:
            max_level = min(max_level, requested_max_level)
        clamps = {"max_conjuncts": max_conjuncts, "max_level": max_level}
        return AdmissionDecision(cost=max_conjuncts, certified=False,
                                 clamps=clamps, estimate=estimate)
