"""The fleet coordinator: affinity routing, admission, and failover.

One asyncio front end speaking the same NDJSON protocol as every
worker, so a :class:`~repro.service.client.ServiceClient` pointed at a
coordinator cannot tell it from a single node — except that the fleet
behind it scales and survives node deaths.

**Routing** reuses the service's shard affinity verbatim: a tenant is
``(schema_fingerprint, Σ_fingerprint)``, and
:func:`~repro.service.protocol.shard_for` picks a *slot* in the ring of
registered nodes.  Slots are registration-ordered and are kept (not
compacted) when a node dies, so a death moves only the dead node's
tenants: they probe linearly to the next alive slot, and every other
tenant keeps its warm node.  Explicit ``fleet.evacuate`` removes the
slot (a deliberate, rare rebalance); drain keeps the slot but stops
admitting to it.

**Admission** is termination-aware (see :mod:`repro.fleet.capacity`):
each tenant's Σ is analysed once — weakly acyclic Σ gets a finite
chase-size estimate charged against the target node's MAAS-style
chase-node budget; uncertified Σ is forwarded with clamped
``max_conjuncts``/``max_level`` and charged the clamp.  A request the
target node cannot hold is answered immediately with a structured
``capacity`` envelope (never a hang, and never silently spilled to a
cold node — affinity is the point of the fleet).

**Failover**: the coordinator keeps one pipelined connection per node
(the node's server answers a connection strictly in order, so responses
match requests FIFO).  A connection failure fails the in-flight
requests on it; each such request marks the node dead and retries on
the tenant's rerouted node.  Workers are pure (every data-plane op is
idempotent), so the retry is safe, and a response acknowledged to a
client was by construction computed exactly somewhere.

**Tiers**: data-plane ops (``contain``/``chase``/``rewrite``/``stats``/
``ping``) are the user tier; ``fleet.*`` ops are the admin tier and
require the coordinator's admin token (kuberdock-style split — see
:data:`~repro.service.protocol.ADMIN_OPERATIONS`).
"""

from __future__ import annotations

import asyncio
import hmac
import json
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.chase.termination import ChaseSizeEstimate, estimate_chase_size
from repro.exceptions import ReproError
from repro.fleet.capacity import (
    AdmissionDecision,
    AdmissionPolicy,
    NodeCapacity,
    TenantKey,
    TenantLedger,
    TenantQuota,
)
from repro.obs import ensure_default_probe
from repro.obs.metrics import get_registry
from repro.obs.tracing import get_tracer, maybe_span, new_trace_id
from repro.parser.query_parser import parse_query
from repro.service.protocol import (
    ADMIN_OPERATIONS,
    CATALOG_OPERATIONS,
    OBS_OPERATIONS,
    PROTOCOL_VERSION,
    STREAM_LIMIT,
    CatalogStore,
    ProtocolError,
    ServiceDefaults,
    TenantParser,
    error_envelope,
    handle_catalog_record,
    handle_obs_record,
    routing_fingerprints,
    shard_for,
    validate_record,
)
from repro.service.server import ServiceThread, _peek_id


class NodeConnection:
    """One pipelined NDJSON connection from the coordinator to a node.

    The node's server answers a connection strictly in order, so the
    connection keeps a FIFO of response futures: request *k* resolves
    from response line *k*.  Any transport failure fails every pending
    future with :class:`ConnectionError` — the forwarding loop above
    turns that into mark-dead-and-reroute.
    """

    def __init__(self, host: str, port: int):
        self._host = host
        self._port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional[asyncio.Task] = None
        self._pending: Deque["asyncio.Future[Dict[str, Any]]"] = deque()
        self._send_lock = asyncio.Lock()
        self._closed = False

    async def _ensure_connected(self) -> None:
        if self._writer is not None and not self._closed:
            return
        self._closed = False
        self._reader, self._writer = await asyncio.open_connection(
            self._host, self._port, limit=STREAM_LIMIT)
        self._reader_task = asyncio.create_task(self._read_loop())

    async def request(self, record: Dict[str, Any]) -> Dict[str, Any]:
        await self._ensure_connected()
        future: "asyncio.Future[Dict[str, Any]]" = (
            asyncio.get_running_loop().create_future())
        # Lock so the write order matches the future-queue order even
        # when many forwards target this node concurrently.
        async with self._send_lock:
            if self._closed or self._writer is None:
                raise ConnectionError(
                    f"connection to {self._host}:{self._port} is closed")
            self._pending.append(future)
            try:
                self._writer.write(json.dumps(record).encode("utf-8") + b"\n")
                await self._writer.drain()
            except OSError as error:
                self._fail_pending(error)
                raise ConnectionError(str(error)) from error
        return await future

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    self._fail_pending(ConnectionError(
                        f"node {self._host}:{self._port} closed the connection"))
                    return
                try:
                    envelope = json.loads(line)
                except json.JSONDecodeError as error:
                    self._fail_pending(ConnectionError(
                        f"node {self._host}:{self._port} broke the protocol: "
                        f"{error}"))
                    return
                if self._pending:
                    future = self._pending.popleft()
                    if not future.done():
                        future.set_result(envelope)
        except asyncio.CancelledError:
            self._fail_pending(ConnectionError("coordinator shutting down"))
        except Exception as error:
            # OSError, an over-limit line, anything: a reader that dies
            # silently would leave every pending forward hanging forever.
            self._fail_pending(error)

    def _fail_pending(self, error: BaseException) -> None:
        self._closed = True
        while self._pending:
            future = self._pending.popleft()
            if not future.done():
                future.set_exception(
                    error if isinstance(error, ConnectionError)
                    else ConnectionError(str(error)))

    def close(self) -> None:
        self._fail_pending(ConnectionError("connection closed"))
        if self._reader_task is not None:
            self._reader_task.cancel()
            self._reader_task = None
        if self._writer is not None:
            self._writer.close()
            self._writer = None


class NodeHandle:
    """The coordinator's view of one registered node."""

    def __init__(self, name: str, host: str, port: int,
                 capacity: NodeCapacity, shard_count: int,
                 protocol_version: int, now: float):
        self.name = name
        self.host = host
        self.port = port
        self.capacity = capacity
        self.shard_count = shard_count
        self.protocol_version = protocol_version
        self.status = "alive"  # alive | draining | dead
        self.last_heartbeat = now
        self.pending = 0
        self.connection: Optional[NodeConnection] = None

    @property
    def alive(self) -> bool:
        return self.status == "alive"

    def drop_connection(self) -> None:
        if self.connection is not None:
            self.connection.close()
            self.connection = None

    def snapshot(self, now: float) -> Dict[str, Any]:
        return {
            "name": self.name,
            "address": f"{self.host}:{self.port}",
            "status": self.status,
            "shard_count": self.shard_count,
            "protocol_version": self.protocol_version,
            "heartbeat_age_s": round(now - self.last_heartbeat, 3),
            "pending": self.pending,
            "capacity": self.capacity.snapshot(),
        }


class FleetCoordinator:
    """The NDJSON front end over a ring of registered solver nodes.

    ``heartbeat_timeout`` is how long a silent node stays routable; the
    sweeper marks it dead after that, and its tenants probe onward.
    ``defaults`` plays the same role as on a single service: schema and
    Σ texts requests may omit.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 admin_token: str = "", *,
                 policy: AdmissionPolicy = AdmissionPolicy(),
                 default_quota: TenantQuota = TenantQuota(),
                 defaults: ServiceDefaults = ServiceDefaults(),
                 heartbeat_timeout: float = 6.0,
                 slow_op_threshold: Optional[float] = None):
        if heartbeat_timeout <= 0:
            raise ReproError(
                f"heartbeat_timeout must be positive, got {heartbeat_timeout}")
        if slow_op_threshold is not None and slow_op_threshold <= 0:
            raise ReproError(
                f"slow_op_threshold must be positive (or None to disable "
                f"the slow-op log), got {slow_op_threshold}")
        # A coordinator is a server too: same observability opt-in as
        # SolverService (default probe, optional slow-op log arming).
        ensure_default_probe()
        if slow_op_threshold is not None:
            get_tracer().slow_log.threshold_s = slow_op_threshold
        self._host = host
        self._port = port
        self._admin_token = admin_token
        self.policy = policy
        self.defaults = defaults
        self._heartbeat_timeout = heartbeat_timeout
        self._parser = TenantParser()
        self.ledger = TenantLedger(default_quota)
        self.ring: List[NodeHandle] = []
        self._by_name: Dict[str, NodeHandle] = {}
        # Per-tenant certification is priced once and reused: the memo
        # key is the routing identity, which already pins Σ exactly.
        self._estimates: Dict[TenantKey, ChaseSizeEstimate] = {}
        self._atom_counts: Dict[Tuple[str, str], int] = {}
        # The fleet's registered catalogs.  The coordinator is the
        # source of truth: catalog.put/drop are admin-gated here, applied
        # locally, then broadcast to every alive node (and replayed to
        # late registrants), so any node can resolve a tenant's
        # rewrite-by-fingerprint without the coordinator resending the
        # views text per request.
        self.catalogs = CatalogStore()
        self.counters = {
            "forwarded": 0,
            "rerouted": 0,
            "capacity_rejections": 0,
            "quota_rejections": 0,
            "forbidden": 0,
            "admitted_certified": 0,
            "admitted_clamped": 0,
            "catalog_broadcasts": 0,
        }
        self._server: Optional[asyncio.AbstractServer] = None
        self._sweeper_task: Optional[asyncio.Task] = None

    # -- lifecycle -----------------------------------------------------------

    @property
    def address(self) -> Tuple[str, Any]:
        if self._server is not None and self._server.sockets:
            return ("tcp", self._server.sockets[0].getsockname()[:2])
        return ("tcp", (self._host, self._port))

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, host=self._host, port=self._port,
            limit=STREAM_LIMIT)
        self._sweeper_task = asyncio.create_task(self._sweep_heartbeats())

    async def stop(self) -> None:
        if self._sweeper_task is not None:
            self._sweeper_task.cancel()
            try:
                await self._sweeper_task
            except asyncio.CancelledError:
                pass
            self._sweeper_task = None
        for handle in self.ring:
            handle.drop_connection()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    def run_in_thread(self) -> ServiceThread:
        """The coordinator on its own daemon event-loop thread."""
        return ServiceThread(self)

    async def _sweep_heartbeats(self) -> None:
        interval = max(0.25, self._heartbeat_timeout / 4)
        while True:
            await asyncio.sleep(interval)
            now = asyncio.get_running_loop().time()
            for handle in self.ring:
                if (handle.alive
                        and now - handle.last_heartbeat > self._heartbeat_timeout):
                    self._mark_dead(handle)

    def _mark_dead(self, handle: NodeHandle) -> None:
        """Stop routing to a node; its in-flight forwards fail and reroute.

        The slot stays in the ring so every *other* tenant keeps its
        node; only the dead node's tenants probe onward.
        """
        handle.status = "dead"
        handle.drop_connection()

    # -- the connection handler (same line discipline as SolverService) ------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    text = line.decode("utf-8")
                except UnicodeDecodeError as error:
                    # Reject the bytes, but peek the id through a
                    # replace-decode so the client can correlate the
                    # rejection (mirrors SolverService._handle_connection).
                    envelope = error_envelope(
                        _peek_id(line.decode("utf-8", errors="replace")),
                        "protocol",
                        f"request line is not valid UTF-8: {error}")
                else:
                    envelope = await self._answer(text)
                writer.write(json.dumps(envelope, sort_keys=True,
                                        default=str).encode("utf-8") + b"\n")
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
        except asyncio.CancelledError:
            pass
        finally:
            writer.close()

    async def _answer(self, line: str) -> Dict[str, Any]:
        stripped = line.strip()
        if not stripped:
            return error_envelope(None, "protocol", "empty request line")
        try:
            record = json.loads(stripped)
        except json.JSONDecodeError as error:
            return error_envelope(_peek_id(line), "protocol",
                                  f"request is not valid JSON: {error}")
        if not isinstance(record, dict):
            return error_envelope(
                None, "protocol",
                f"request must be a JSON object, got {type(record).__name__}")
        op = record.get("op", "contain")
        try:
            if op in ADMIN_OPERATIONS:
                return await self._admin(record)
            if op in CATALOG_OPERATIONS:
                return await self._catalog(record)
            if op in OBS_OPERATIONS:
                # The coordinator's port is the tenant-facing one, so
                # its obs tier is admin-gated like fleet.* (a worker's
                # is not — its listener is inside the trust boundary).
                return self._obs(record)
            record = validate_record(record)
            if op == "ping":
                return self._pong(record)
            if op == "stats":
                return await self._fleet_stats(record)
            return await self._forward(record)
        except ProtocolError as error:
            return error_envelope(record.get("id"), error.kind, str(error))
        except ReproError as error:
            return error_envelope(record.get("id"), "parse", str(error))
        except Exception as error:  # defensive: bugs become envelopes
            return error_envelope(record.get("id"), "internal",
                                  f"{type(error).__name__}: {error}")

    # -- observability tier (admin-gated at the coordinator) -----------------

    def _obs(self, record: Dict[str, Any]) -> Dict[str, Any]:
        if not self._authorized(record):
            self.counters["forbidden"] += 1
            return error_envelope(
                record.get("id"), "forbidden",
                f"op {record['op']!r} is admin-tier at a coordinator and "
                "requires the admin token")
        if record["op"] == "obs.metrics":
            self._sync_fleet_gauges()
        return handle_obs_record(record)

    def _sync_fleet_gauges(self) -> None:
        """Mirror the routing counters and ring health into the registry.

        The counters dict stays the source of truth (``stats`` and
        ``fleet.status`` read it directly); gauges are refreshed lazily,
        only when a scrape actually happens.
        """
        registry = get_registry()
        counters = registry.gauge(
            "repro_fleet_coordinator", "Coordinator routing counters.",
            labels=("counter",))
        for name, value in self.counters.items():
            counters.set(float(value), counter=name)
        nodes = registry.gauge(
            "repro_fleet_nodes", "Registered nodes by status.",
            labels=("status",))
        by_status = {"alive": 0, "draining": 0, "dead": 0}
        for handle in self.ring:
            by_status[handle.status] = by_status.get(handle.status, 0) + 1
        for status, count in by_status.items():
            nodes.set(float(count), status=status)

    # -- catalog tier --------------------------------------------------------

    async def _catalog(self, record: Dict[str, Any]) -> Dict[str, Any]:
        """Catalog registration at the fleet tier.

        The mutations (``catalog.put``/``catalog.drop``) are admin-gated
        like ``fleet.*`` — a tenant-facing port must not let one tenant
        evict another's registered catalog — applied to the
        coordinator's own store, then broadcast to every alive node so
        each can resolve rewrite-by-fingerprint locally.
        ``catalog.list`` is user-tier (tenants discover what they may
        reference) and answered straight from the coordinator's store.
        """
        record = validate_record(record)
        op = record["op"]
        if op != "catalog.list" and not self._authorized(record):
            self.counters["forbidden"] += 1
            return error_envelope(
                record.get("id"), "forbidden",
                f"op {op!r} is admin-tier at a coordinator and requires "
                "the admin token")
        envelope = handle_catalog_record(record, self.catalogs,
                                         self.defaults, self._parser)
        if op == "catalog.list" or not envelope.get("ok"):
            return envelope
        # Nodes never see the admin token; their catalog tier is inside
        # the trust boundary, like their obs tier.
        outgoing = {key: value for key, value in record.items()
                    if key != "admin_token"}
        envelope["nodes"] = await self._broadcast_catalog(outgoing)
        return envelope

    async def _broadcast_catalog(self,
                                 record: Dict[str, Any]) -> List[Dict[str, Any]]:
        """Apply one catalog mutation on every alive node (best-effort).

        A node that fails mid-broadcast is marked dead exactly as a
        failed forward would; it re-learns the full catalog set when it
        re-registers (see :meth:`_replay_catalogs`).
        """
        results: List[Dict[str, Any]] = []
        for handle in list(self.ring):
            if not handle.alive:
                continue
            try:
                node_envelope = await self._request_on(handle, record)
            except ConnectionError as error:
                self._mark_dead(handle)
                results.append({"node": handle.name, "ok": False,
                                "error": str(error)})
                continue
            self.counters["catalog_broadcasts"] += 1
            results.append({"node": handle.name,
                            "ok": bool(node_envelope.get("ok"))})
        return results

    async def _replay_catalogs(self, handle: NodeHandle) -> int:
        """Push every registered catalog to one (re-)registered node."""
        replayed = 0
        for entry in self.catalogs.entries():
            record = {"op": "catalog.put", "views": entry["views_text"],
                      "schema": entry["schema_text"], "name": entry["name"]}
            try:
                envelope = await self._request_on(handle, record)
            except ConnectionError:
                self._mark_dead(handle)
                break
            if envelope.get("ok"):
                replayed += 1
        return replayed

    # -- user tier -----------------------------------------------------------

    def _pong(self, record: Dict[str, Any]) -> Dict[str, Any]:
        return {
            "id": record.get("id"), "ok": True, "op": "ping",
            "result": {"pong": True, "protocol_version": PROTOCOL_VERSION,
                       "role": "coordinator",
                       "fleet_size": sum(1 for h in self.ring if h.alive)},
        }

    async def _fleet_stats(self, record: Dict[str, Any]) -> Dict[str, Any]:
        """Fleet-wide stats: the coordinator's counters plus every node's own."""
        nodes = []
        for handle in list(self.ring):
            if not handle.alive:
                nodes.append({"name": handle.name, "status": handle.status})
                continue
            try:
                envelope = await self._request_on(handle, {"op": "stats"})
                nodes.append({"name": handle.name, "status": handle.status,
                              "capacity": handle.capacity.snapshot(),
                              "stats": envelope.get("result")})
            except ConnectionError as error:
                self._mark_dead(handle)
                nodes.append({"name": handle.name, "status": "dead",
                              "error": str(error)})
        return {
            "id": record.get("id"), "ok": True, "op": "stats",
            "result": {"coordinator": dict(self.counters),
                       "ledger": self.ledger.snapshot(),
                       "nodes": nodes},
        }

    def _decide(self, record: Dict[str, Any],
                tenant: TenantKey) -> AdmissionDecision:
        """Price one data-plane record (certification memoised per tenant)."""
        schema_text = record.get("schema") or self.defaults.schema_text
        if tenant not in self._estimates:
            schema = self._parser.schema(schema_text)
            sigma = self._parser.dependencies(
                record.get("deps", self.defaults.deps_text), schema_text)
            self._estimates[tenant] = estimate_chase_size(sigma, schema)
        estimate = self._estimates[tenant]
        atoms = self._count_atoms(record.get("query", ""), schema_text)
        if record["op"] == "contain":
            atoms += self._count_atoms(record.get("query_prime", ""), schema_text)
        return self.policy.decide(
            certified=estimate.bounded, estimate=estimate,
            query_atoms=max(1, atoms),
            requested_max_conjuncts=record.get("max_conjuncts"),
            requested_max_level=record.get("max_level"))

    def _count_atoms(self, query_text: str, schema_text: str) -> int:
        key = (query_text, schema_text)
        if key not in self._atom_counts:
            schema = self._parser.schema(schema_text)
            query = parse_query(query_text, schema)
            self._atom_counts[key] = len(query.conjuncts)
            if len(self._atom_counts) > 4096:
                for old in list(self._atom_counts)[:2048]:
                    del self._atom_counts[old]
        return self._atom_counts[key]

    async def _forward(self, record: Dict[str, Any]) -> Dict[str, Any]:
        """Route one data-plane record, under a root span.

        The span adopts the client's ``trace_context`` when one arrived
        (so the client's trace id is the one the whole fleet shares) and
        mints a fresh id otherwise; either way the chosen node is told
        to ``collect``, its returned spans are absorbed into this
        process's trace store, and the client's envelope carries the
        ``trace_id`` — one ``obs.trace`` lookup here then shows the
        coordinator's routing phases *and* the node's engine phases.
        """
        tracer = get_tracer()
        if not tracer.enabled:
            return await self._forward_inner(record, None)
        context = record.get("trace_context")
        adopted = (isinstance(context, dict)
                   and isinstance(context.get("id"), str))
        parent = context.get("parent") if adopted else None
        with tracer.start_trace(
                "fleet.forward",
                trace_id=context["id"] if adopted else new_trace_id(),
                parent_id=parent if isinstance(parent, str) else None,
                op=record.get("op", "contain")) as root:
            envelope = await self._forward_inner(record, root)
            root.tags["ok"] = bool(envelope.get("ok"))
        envelope.setdefault("trace_id", root.trace_id)
        if adopted and context.get("collect"):
            spans = tracer.store.get(root.trace_id)
            if spans:
                envelope["spans"] = spans
        return envelope

    def _resolve_catalog_schema(self,
                                record: Dict[str, Any]) -> Dict[str, Any]:
        """Give a rewrite-by-fingerprint record a schema for routing.

        The views text itself is *not* substituted — the whole point of
        registration is that the coordinator forwards the slim record
        and the node resolves the fingerprint from its own store — but
        routing and admission need the tenant's schema text, which the
        registered entry carries.  An unknown fingerprint fails here,
        fast, instead of on some node.
        """
        if (record.get("op") != "rewrite" or record.get("views") is not None
                or not isinstance(record.get("catalog_fp"), str)):
            return record
        entry = self.catalogs.get(record["catalog_fp"])
        if entry is None:
            raise ProtocolError(
                "protocol",
                f"unknown catalog fingerprint {record['catalog_fp']!r}; "
                "register the catalog with catalog.put first")
        if record.get("schema") is None:
            record = dict(record, schema=entry["schema_text"])
        return record

    async def _forward_inner(self, record: Dict[str, Any],
                             root) -> Dict[str, Any]:
        record = self._resolve_catalog_schema(record)
        identifier = record.get("id")
        with maybe_span("fleet.admission") as span:
            schema_fp, deps_fp = routing_fingerprints(record, self.defaults,
                                                      self._parser)
            tenant = (schema_fp, deps_fp)
            decision = self._decide(record, tenant)
            if span is not None:
                span.tags.update(certified=decision.certified,
                                 cost=decision.cost)

        reason = self.ledger.deny_reason(tenant, decision.cost)
        if reason is not None:
            self.counters["quota_rejections"] += 1
            self.ledger.quota_rejections += 1
            envelope = error_envelope(identifier, "capacity", reason)
            envelope["error"]["detail"] = {
                "scope": "tenant",
                "quota": self.ledger.quota_for(tenant).as_dict(),
                "admission": decision.describe(),
            }
            return envelope

        slot_count = len(self.ring)
        if slot_count == 0:
            return error_envelope(identifier, "capacity",
                                  "the fleet has no registered nodes")
        start = shard_for(schema_fp, deps_fp, slot_count)
        outgoing = dict(record, **decision.clamps)
        if root is not None:
            # The node adopts the same trace id, parents its root span
            # under this forward, and returns its spans for absorption.
            outgoing["trace_context"] = {"id": root.trace_id,
                                         "parent": root.span_id,
                                         "collect": True}
        for probe in range(slot_count):
            handle = self.ring[(start + probe) % slot_count]
            if not handle.alive:
                continue
            if not handle.capacity.admit(decision.cost):
                # At capacity is a *final* answer, not a probe-onward:
                # spilling a too-big request to the next node would turn
                # one hot node into a fleet-wide cascade.
                self.counters["capacity_rejections"] += 1
                capacity = handle.capacity.snapshot()
                envelope = error_envelope(
                    identifier, "capacity",
                    f"node {handle.name!r} has {capacity['available']} of "
                    f"{capacity['effective_total']} chase nodes available; "
                    f"this request needs {decision.cost}")
                envelope["error"]["detail"] = {
                    "scope": "node", "node": handle.name,
                    "capacity": capacity, "admission": decision.describe(),
                }
                return envelope
            self.ledger.charge(tenant, decision.cost)
            envelope: Optional[Dict[str, Any]] = None
            try:
                envelope = await self._request_on(handle, outgoing)
            except ConnectionError:
                self._mark_dead(handle)
                self.counters["rerouted"] += 1
            finally:
                handle.capacity.release(decision.cost)
                self.ledger.release(tenant, decision.cost)
            if envelope is None:
                continue  # probe the rerouted node; the op is idempotent
            self.counters["forwarded"] += 1
            self.counters["admitted_certified" if decision.certified
                          else "admitted_clamped"] += 1
            envelope["node"] = handle.name
            if root is not None:
                root.tags["node"] = handle.name
                spans = envelope.pop("spans", None)
                if spans:
                    get_tracer().absorb(root.trace_id, spans)
            return envelope
        return error_envelope(identifier, "capacity",
                              "the fleet has no alive nodes to serve this tenant")

    async def _request_on(self, handle: NodeHandle,
                          record: Dict[str, Any]) -> Dict[str, Any]:
        if handle.connection is None:
            handle.connection = NodeConnection(handle.host, handle.port)
        try:
            return await handle.connection.request(record)
        except OSError as error:
            raise ConnectionError(str(error)) from error

    # -- admin tier ----------------------------------------------------------

    def _authorized(self, record: Dict[str, Any]) -> bool:
        token = record.get("admin_token")
        return isinstance(token, str) and hmac.compare_digest(
            token, self._admin_token)

    async def _admin(self, record: Dict[str, Any]) -> Dict[str, Any]:
        if not self._authorized(record):
            self.counters["forbidden"] += 1
            return error_envelope(
                record.get("id"), "forbidden",
                f"op {record['op']!r} is admin-tier and requires the "
                "coordinator's admin token")
        handler = {
            "fleet.register": self._admin_register,
            "fleet.heartbeat": self._admin_heartbeat,
            "fleet.drain": self._admin_drain,
            "fleet.evacuate": self._admin_evacuate,
            "fleet.quota": self._admin_quota,
            "fleet.status": self._admin_status,
        }[record["op"]]
        result = handler(record)
        if record["op"] == "fleet.register" and len(self.catalogs):
            # A (re-)registered node starts with an empty catalog store;
            # replay the fleet's registrations before it can be handed
            # rewrite-by-fingerprint traffic.
            result["catalogs_replayed"] = await self._replay_catalogs(
                self._by_name[result["registered"]])
        return {"id": record.get("id"), "ok": True, "op": record["op"],
                "result": result}

    def _now(self) -> float:
        return asyncio.get_running_loop().time()

    def _named_handle(self, record: Dict[str, Any]) -> NodeHandle:
        name = record.get("node")
        if not isinstance(name, str) or name not in self._by_name:
            raise ProtocolError("protocol", f"unknown node {name!r}")
        return self._by_name[name]

    def _admin_register(self, record: Dict[str, Any]) -> Dict[str, Any]:
        info = record.get("node")
        if not isinstance(info, dict):
            raise ProtocolError("protocol",
                                "fleet.register requires a 'node' object")
        name = info.get("name")
        if not isinstance(name, str) or not name:
            raise ProtocolError("protocol", "a node needs a non-empty name")
        version = info.get("protocol_version")
        if version != PROTOCOL_VERSION:
            raise ProtocolError(
                "protocol",
                f"node {name!r} speaks protocol version {version!r}; this "
                f"coordinator requires {PROTOCOL_VERSION}")
        host, port = info.get("host"), info.get("port")
        if not isinstance(host, str) or not isinstance(port, int):
            raise ProtocolError("protocol",
                                f"node {name!r} needs string host and int port")
        declared = info.get("capacity") or {}
        capacity = NodeCapacity(
            total=declared.get("total", 1),
            over_commit_ratio=declared.get("over_commit_ratio", 1.0))
        now = self._now()
        existing = self._by_name.get(name)
        if existing is not None:
            # A re-registration is a restarted (or resurrected) node:
            # refresh its address and start its accounting from zero —
            # whatever was in flight on the old incarnation is gone.
            existing.drop_connection()
            existing.host, existing.port = host, port
            existing.capacity = capacity
            existing.shard_count = int(info.get("shard_count", 1))
            existing.status = "alive"
            existing.last_heartbeat = now
            slot = self.ring.index(existing)
        else:
            handle = NodeHandle(name, host, port, capacity,
                                int(info.get("shard_count", 1)),
                                version, now)
            self.ring.append(handle)
            self._by_name[name] = handle
            slot = len(self.ring) - 1
        return {"registered": name, "slot": slot,
                "fleet_size": sum(1 for h in self.ring if h.alive)}

    def _admin_heartbeat(self, record: Dict[str, Any]) -> Dict[str, Any]:
        handle = self._named_handle(record)
        handle.last_heartbeat = self._now()
        pending = record.get("pending")
        if isinstance(pending, int):
            handle.pending = pending
        if handle.status == "dead":
            # The heartbeat proves it is back; dead was the sweeper's
            # inference, not an operator decision (draining sticks).
            handle.status = "alive"
        return {"acknowledged": True, "status": handle.status}

    def _admin_drain(self, record: Dict[str, Any]) -> Dict[str, Any]:
        handle = self._named_handle(record)
        handle.status = "draining"
        return {"node": handle.name, "status": handle.status,
                "slot_kept": True}

    def _admin_evacuate(self, record: Dict[str, Any]) -> Dict[str, Any]:
        handle = self._named_handle(record)
        handle.drop_connection()
        self.ring.remove(handle)
        del self._by_name[handle.name]
        return {"node": handle.name, "evacuated": True,
                "fleet_size": sum(1 for h in self.ring if h.alive)}

    def _admin_quota(self, record: Dict[str, Any]) -> Dict[str, Any]:
        tenant = self._quota_tenant(record)
        raw = record.get("quota")
        if raw is None:
            self.ledger.set_quota(tenant, None)
            applied = self.ledger.default_quota
        elif isinstance(raw, dict):
            quota = TenantQuota(
                max_request_cost=raw.get("max_request_cost"),
                max_in_flight_cost=raw.get("max_in_flight_cost"))
            self.ledger.set_quota(tenant, quota)
            applied = quota
        else:
            raise ProtocolError(
                "protocol", "'quota' must be an object or null (null clears)")
        return {"tenant": list(tenant), "quota": applied.as_dict()}

    def _quota_tenant(self, record: Dict[str, Any]) -> TenantKey:
        explicit = record.get("schema_fp"), record.get("deps_fp")
        if all(isinstance(part, str) for part in explicit):
            return explicit  # type: ignore[return-value]
        if record.get("schema") or self.defaults.schema_text:
            return routing_fingerprints(record, self.defaults, self._parser)
        raise ProtocolError(
            "protocol",
            "fleet.quota needs either schema_fp/deps_fp or schema/deps texts")

    def _admin_status(self, record: Dict[str, Any]) -> Dict[str, Any]:
        now = self._now()
        return {
            "role": "coordinator",
            "protocol_version": PROTOCOL_VERSION,
            "heartbeat_timeout_s": self._heartbeat_timeout,
            "policy": {
                "uncertified_max_conjuncts": self.policy.uncertified_max_conjuncts,
                "uncertified_max_level": self.policy.uncertified_max_level,
            },
            "counters": dict(self.counters),
            "ledger": self.ledger.snapshot(),
            "ring": [handle.name for handle in self.ring],
            "nodes": [handle.snapshot(now) for handle in self.ring],
        }
