"""A fleet member: a solver service that registers with a coordinator.

:class:`FleetNode` wraps one :class:`~repro.service.server.SolverService`
(and its sharded pool) with the fleet control plane:

* on start it binds its service socket, then **registers** with the
  coordinator — name, actual host/port, declared capacity, protocol
  version — over the same NDJSON wire the data plane uses;
* a background task **heartbeats** every ``heartbeat_interval`` seconds
  with the node's current pending-queue depth; a coordinator that stops
  hearing heartbeats declares the node dead and reroutes its tenants;
* a heartbeat that fails (coordinator restarted, network blip)
  degrades into a **re-registration** attempt on the next tick, so a
  bounced coordinator re-learns its fleet without operator action.

The node never *pushes* work anywhere: the coordinator connects to the
node's service port and forwards requests like any other client.  That
keeps the worker exactly as dumb as a standalone ``repro serve``
process — a fleet node answered requests identically before fleets
existed.

Duck-typed for :class:`~repro.service.server.ServiceThread` (async
``start``/``stop`` plus ``address``), so tests and examples embed a
whole node on one daemon thread the same way they embed a service.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple

from repro.exceptions import ReproError
from repro.service.pool import ShardedSolverPool
from repro.service.protocol import PROTOCOL_VERSION, STREAM_LIMIT
from repro.service.server import ServiceThread, SolverService


class FleetNodeError(ReproError):
    """The node could not join or speak to its coordinator."""


class FleetNode:
    """One registered worker: a :class:`SolverService` plus fleet membership.

    ``capacity_total`` defaults to ``shard_count × limits.max_conjuncts``
    — every shard fully occupied by a worst-case request — which makes
    an unconfigured fleet admit roughly what its workers can actually
    hold.  ``over_commit_ratio`` is forwarded to the coordinator, which
    owns the accounting (the node only *declares*; see
    :class:`~repro.fleet.capacity.NodeCapacity`).
    """

    def __init__(self, name: str, pool: ShardedSolverPool,
                 coordinator_host: str, coordinator_port: int,
                 admin_token: str,
                 host: str = "127.0.0.1", port: int = 0,
                 capacity_total: Optional[int] = None,
                 over_commit_ratio: float = 1.0,
                 heartbeat_interval: float = 2.0):
        if not name:
            raise FleetNodeError("a fleet node needs a non-empty name")
        if heartbeat_interval <= 0:
            raise FleetNodeError(
                f"heartbeat_interval must be positive, got {heartbeat_interval}")
        self.name = name
        self._service = SolverService(pool, host=host, port=port)
        self._coordinator = (coordinator_host, coordinator_port)
        self._admin_token = admin_token
        self._capacity_total = (capacity_total if capacity_total is not None
                                else pool.shard_count * pool.limits.max_conjuncts)
        self._over_commit_ratio = over_commit_ratio
        self._heartbeat_interval = heartbeat_interval
        self._heartbeat_task: Optional[asyncio.Task] = None
        self.registered = False
        self.heartbeats_sent = 0

    @property
    def service(self) -> SolverService:
        return self._service

    @property
    def pool(self) -> ShardedSolverPool:
        return self._service.pool

    @property
    def address(self) -> Tuple[str, Any]:
        return self._service.address

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind the service socket, register, and start heartbeating.

        Registration failure is fatal at start (an unreachable
        coordinator at boot is a deployment error worth failing loudly
        on); heartbeat failures later are survivable and retried.
        """
        await self._service.start()
        envelope = await self._control(self._registration_record())
        if not envelope.get("ok"):
            await self._service.stop()
            error = envelope.get("error") or {}
            raise FleetNodeError(
                f"coordinator rejected registration of node {self.name!r}: "
                f"{error.get('kind', 'unknown')}: {error.get('message', envelope)}")
        self.registered = True
        self._heartbeat_task = asyncio.create_task(self._heartbeat_loop())

    async def stop(self) -> None:
        if self._heartbeat_task is not None:
            self._heartbeat_task.cancel()
            try:
                await self._heartbeat_task
            except asyncio.CancelledError:
                pass
            self._heartbeat_task = None
        self.registered = False
        await self._service.stop()

    def run_in_thread(self) -> ServiceThread:
        """The whole node (service + heartbeats) on one daemon thread."""
        return ServiceThread(self)

    # -- the control plane ---------------------------------------------------

    def _registration_record(self) -> Dict[str, Any]:
        kind, location = self._service.address
        if kind != "tcp":
            raise FleetNodeError(
                "fleet nodes must serve TCP (the coordinator dials them back); "
                f"this node is bound to {kind}:{location}")
        host, port = location
        return {
            "op": "fleet.register",
            "admin_token": self._admin_token,
            "node": {
                "name": self.name,
                "host": host,
                "port": port,
                "shard_count": self.pool.shard_count,
                "protocol_version": PROTOCOL_VERSION,
                "capacity": {
                    "total": self._capacity_total,
                    "over_commit_ratio": self._over_commit_ratio,
                },
            },
        }

    def _heartbeat_record(self) -> Dict[str, Any]:
        return {
            "op": "fleet.heartbeat",
            "admin_token": self._admin_token,
            "node": self.name,
            "pending": self.pool.pending(),
        }

    async def _control(self, record: Dict[str, Any]) -> Dict[str, Any]:
        """One request/response round trip to the coordinator.

        A fresh connection per control message: these are rare (one
        heartbeat every couple of seconds), and statelessness here is
        what lets a bounced coordinator be re-joined with zero shared
        connection state to repair.
        """
        host, port = self._coordinator
        try:
            reader, writer = await asyncio.open_connection(
                host, port, limit=STREAM_LIMIT)
        except OSError as error:
            raise FleetNodeError(
                f"cannot reach coordinator at {host}:{port}: {error}") from error
        try:
            writer.write(json.dumps(record).encode("utf-8") + b"\n")
            await writer.drain()
            line = await reader.readline()
        except OSError as error:
            raise FleetNodeError(
                f"coordinator connection failed mid-request: {error}") from error
        finally:
            writer.close()
        if not line:
            raise FleetNodeError("coordinator closed the connection unanswered")
        try:
            envelope = json.loads(line)
        except json.JSONDecodeError as error:
            raise FleetNodeError(
                f"coordinator sent a non-JSON line: {error}") from error
        if not isinstance(envelope, dict):
            raise FleetNodeError("coordinator sent a non-object envelope")
        return envelope

    async def _heartbeat_loop(self) -> None:
        while True:
            await asyncio.sleep(self._heartbeat_interval)
            try:
                envelope = await self._control(self._heartbeat_record())
                if envelope.get("ok"):
                    self.heartbeats_sent += 1
                    self.registered = True
                    continue
                error = envelope.get("error") or {}
                if error.get("kind") == "protocol":
                    # "unknown node": the coordinator restarted and lost
                    # the registry — re-register rather than heartbeat
                    # into the void.
                    retry = await self._control(self._registration_record())
                    self.registered = bool(retry.get("ok"))
                else:
                    self.registered = False
            except FleetNodeError:
                # Coordinator unreachable; keep ticking — it may come
                # back, and the next successful heartbeat re-registers.
                self.registered = False
                try:
                    retry = await self._control(self._registration_record())
                    self.registered = bool(retry.get("ok"))
                except FleetNodeError:
                    pass
