"""A :class:`~repro.service.client.ServiceClient` that speaks the admin tier.

Data-plane calls (:meth:`contain`, :meth:`chase`, …) are inherited
unchanged — a coordinator answers them like any node.  The additions
carry the admin token for ``fleet.*`` operations.  Of those only
``fleet.status`` is idempotent (and so retried on a dropped
connection); the mutations surface transport errors to the caller,
naming the op, because "was my drain applied?" is a question only the
operator can settle.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.service.client import ServiceClient


class FleetClient(ServiceClient):
    """A blocking client for a fleet coordinator (user + admin tiers)."""

    def __init__(self, host: str = "127.0.0.1", port: Optional[int] = None,
                 unix_path: Optional[str] = None, timeout: float = 60.0,
                 admin_token: Optional[str] = None):
        super().__init__(host=host, port=port, unix_path=unix_path,
                         timeout=timeout)
        self._admin_token = admin_token

    def _admin(self, op: str, **fields: Any) -> Dict[str, Any]:
        record = {"op": op, "admin_token": self._admin_token,
                  **{key: value for key, value in fields.items()
                     if value is not None}}
        return self.check(self.request(record))

    def status(self) -> Dict[str, Any]:
        """The coordinator's full fleet snapshot (``fleet.status``)."""
        return self._admin("fleet.status")

    def drain(self, node: str) -> Dict[str, Any]:
        """Stop admitting new work to ``node``; its ring slot is kept."""
        return self._admin("fleet.drain", node=node)

    def evacuate(self, node: str) -> Dict[str, Any]:
        """Remove ``node`` from the ring entirely (a deliberate rebalance)."""
        return self._admin("fleet.evacuate", node=node)

    def set_quota(self, *, schema: Optional[str] = None,
                  deps: Optional[str] = None,
                  schema_fp: Optional[str] = None,
                  deps_fp: Optional[str] = None,
                  max_request_cost: Optional[int] = None,
                  max_in_flight_cost: Optional[int] = None) -> Dict[str, Any]:
        """Install a tenant quota (identify the tenant by texts or fingerprints)."""
        quota = {"max_request_cost": max_request_cost,
                 "max_in_flight_cost": max_in_flight_cost}
        return self._admin("fleet.quota", schema=schema, deps=deps,
                           schema_fp=schema_fp, deps_fp=deps_fp, quota=quota)

    def clear_quota(self, *, schema: Optional[str] = None,
                    deps: Optional[str] = None,
                    schema_fp: Optional[str] = None,
                    deps_fp: Optional[str] = None) -> Dict[str, Any]:
        """Drop a tenant's explicit quota, reverting it to the default."""
        record = {"op": "fleet.quota", "admin_token": self._admin_token,
                  "quota": None,
                  **{key: value for key, value in
                     {"schema": schema, "deps": deps, "schema_fp": schema_fp,
                      "deps_fp": deps_fp}.items() if value is not None}}
        return self.check(self.request(record))

    # -- catalog registration (mutations admin-gated at a coordinator) -------

    def catalog_put(self, views: str, **kwargs: Any) -> Dict[str, Any]:
        kwargs.setdefault("admin_token", self._admin_token)
        return super().catalog_put(views, **kwargs)

    def catalog_drop(self, catalog_fp: str, **kwargs: Any) -> Dict[str, Any]:
        kwargs.setdefault("admin_token", self._admin_token)
        return super().catalog_drop(catalog_fp, **kwargs)

    # ``catalog_list`` is inherited unchanged: listing is user-tier
    # everywhere, like ``ping``/``stats``.

    # -- observability (admin-gated at a coordinator) ------------------------

    def obs_metrics(self, **kwargs: Any) -> Dict[str, Any]:
        kwargs.setdefault("admin_token", self._admin_token)
        return super().obs_metrics(**kwargs)

    def obs_trace(self, trace_id: Optional[str] = None,
                  **kwargs: Any) -> Dict[str, Any]:
        kwargs.setdefault("admin_token", self._admin_token)
        return super().obs_trace(trace_id, **kwargs)

    def obs_health(self, **kwargs: Any) -> Dict[str, Any]:
        kwargs.setdefault("admin_token", self._admin_token)
        return super().obs_health(**kwargs)

    def obs_profile(self, action: str = "status", **kwargs: Any) -> Dict[str, Any]:
        kwargs.setdefault("admin_token", self._admin_token)
        return super().obs_profile(action, **kwargs)
