"""The :class:`Solver` facade — one session object for every procedure.

A Solver owns a :class:`SolverConfig` and two cross-call LRU caches:

* a **containment cache** keyed on the canonical fingerprints of
  (Q, Q', Σ) plus the config fields that can change the answer, so a
  repeated question returns the identical
  :class:`~repro.containment.result.ContainmentResult` without rebuilding
  anything;
* a **chase cache** keyed on (query, Σ, chase budgets), shared between
  stand-alone chase requests and the bounded-chase containment procedure,
  so deciding many ``Q ⊆ Q'_k`` questions against one Q re-uses each chase
  prefix instead of rebuilding it per question.

Work is submitted either through the typed request objects
(:meth:`Solver.solve`, :meth:`Solver.solve_many`,
:meth:`Solver.contains_all_pairs`) or through the legacy-shaped
convenience methods (:meth:`Solver.is_contained`, :meth:`Solver.chase`,
:meth:`Solver.optimize`, :meth:`Solver.minimize_under`), which the old
module-level functions now delegate to.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api.backend import CacheBackend, backend_stats
from repro.api.cache import CacheInfo, LRUCache
from repro.api.config import SolverConfig
from repro.api.persistent import PersistentCache
from repro.api.fingerprints import (
    catalog_fingerprint,
    dependency_fingerprint,
    query_fingerprint,
)
from repro.api.requests import (
    BudgetUsage,
    ChaseRequest,
    ChaseResponse,
    ContainmentRequest,
    ContainmentResponse,
    OptimizeRequest,
    OptimizeResponse,
    PairwiseContainment,
    RewriteRequest,
    RewriteResponse,
    SolveRequest,
    SolveResponse,
)
from repro.chase.engine import (
    ChaseConfig,
    ChaseResult,
    ChaseVariant,
    build_engine,
    resolve_engine_name,
)
from repro.chase.termination import chase_guaranteed_finite
from repro.containment.fd_containment import contained_under_fds
from repro.containment.ind_containment import contained_under_bounded_chase
from repro.containment.no_dependencies import contained_without_dependencies
from repro.containment.result import ContainmentResult
from repro.dependencies.dependency_set import DependencyClass, DependencySet
from repro.exceptions import ReproError
from repro.obs import probe as _probe
from repro.obs.clock import monotonic
from repro.obs.tracing import maybe_span
from repro.optimizer.pipeline import OptimizationReport
from repro.optimizer.pipeline import optimize as pipeline_optimize
from repro.queries.conjunctive_query import ConjunctiveQuery
from repro.views.cost import CostModel
from repro.views.index import CatalogIndex, build_catalog_index
from repro.views.rewriting import RewriteReport, rewrite_with_views
from repro.views.view import ViewCatalog

#: Catalog indexes kept per solver (keyed by catalog fingerprint); small
#: because one index serves every query and strategy over that catalog.
_CATALOG_INDEX_CACHE_SIZE = 32


@dataclass
class SolverStats:
    """Per-solver request counters (cache counters live on the caches).

    Increments go through :meth:`count` so concurrent ``solve_many``
    workers sharing one solver cannot lose updates.
    """

    containment_requests: int = 0
    chase_requests: int = 0
    optimize_requests: int = 0
    rewrite_requests: int = 0
    batch_calls: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def count(self, counter: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self, counter, getattr(self, counter) + amount)

    @property
    def total_requests(self) -> int:
        return (self.containment_requests + self.chase_requests
                + self.optimize_requests + self.rewrite_requests)


class Solver:
    """A configured, caching session over the Johnson–Klug procedures."""

    def __init__(self, config: Optional[SolverConfig] = None,
                 persistent_cache: Optional[CacheBackend] = None):
        self._config = config or SolverConfig()
        self._containment_cache = LRUCache(self._config.containment_cache_size)
        self._chase_cache = LRUCache(self._config.chase_cache_size)
        self._rewrite_cache = LRUCache(self._config.rewrite_cache_size)
        # An explicit store wins over the config path so several solvers
        # (service shards in one process) can share one connection — and
        # it may be any CacheBackend, not just the SQLite store.
        if persistent_cache is not None:
            self._persistent = persistent_cache
            self._owns_persistent = False
        elif self._config.persistent_cache_path is not None:
            self._persistent = PersistentCache(self._config.persistent_cache_path)
            self._owns_persistent = True
        else:
            self._persistent = None
            self._owns_persistent = False
        # Per-solver views of the persistent tier: the store may be
        # shared (service shards, sibling workers), so its own global
        # counters cannot tell this solver's hit rate apart from its
        # neighbours'.
        self._persistent_lock = threading.Lock()
        self._persistent_hits = 0
        self._persistent_misses = 0
        self._persistent_writes = 0
        # Catalog signature indexes, keyed by catalog fingerprint — a
        # derived structure, not an answer cache, so it stays out of
        # cache_info()/cache_stats() (tests pin that key set).
        self._catalog_indexes = LRUCache(_CATALOG_INDEX_CACHE_SIZE)
        self.stats = SolverStats()

    @property
    def config(self) -> SolverConfig:
        return self._config

    @property
    def persistent_cache(self) -> Optional[CacheBackend]:
        return self._persistent

    def close(self) -> None:
        """Release the persistent store (no-op for purely in-memory solvers).

        Only a store this solver opened itself is closed; an injected
        shared store belongs to whoever created it.
        """
        if self._persistent is not None and self._owns_persistent:
            self._persistent.close()

    # -- cache plumbing ------------------------------------------------------

    def cache_info(self) -> Dict[str, CacheInfo]:
        return {"containment": self._containment_cache.info(),
                "chase": self._chase_cache.info(),
                "rewrite": self._rewrite_cache.info()}

    def cache_stats(self) -> Dict[str, Dict]:
        """Aggregated counters for every internal cache, JSON-ready.

        One entry per cache (containment, chase, rewrite), a
        ``persistent`` entry when a disk store is attached (its hits and
        misses also roll into ``total``), plus a ``total`` aggregate;
        surfaced in the CLI's ``--json`` output and the service's
        ``stats`` op so one document shows the whole cache picture.
        """
        infos = self.cache_info()
        stats: Dict[str, Dict] = {name: info.as_dict()
                                  for name, info in infos.items()}
        hits = sum(info.hits for info in infos.values())
        misses = sum(info.misses for info in infos.values())
        size = sum(info.size for info in infos.values())
        maxsize = sum(info.maxsize for info in infos.values())
        if self._persistent is not None:
            store = backend_stats(self._persistent)
            with self._persistent_lock:
                local_hits = self._persistent_hits
                local_misses = self._persistent_misses
                local_writes = self._persistent_writes
            local_requests = local_hits + local_misses
            # hits/misses/writes are THIS solver's probes; the store may
            # be shared across solvers (service shards), so its global
            # counters ride along under "store" instead of being folded
            # into per-solver numbers.
            stats["persistent"] = {
                "path": store["path"],
                "hits": local_hits,
                "misses": local_misses,
                "writes": local_writes,
                "size": store["size"],
                "hit_rate": (round(local_hits / local_requests, 4)
                             if local_requests else 0.0),
                "namespaces": store["namespaces"],
                "store": {"hits": store["hits"], "misses": store["misses"],
                          "writes": store["writes"],
                          "hit_rate": store["hit_rate"]},
            }
            hits += local_hits
            # The store sits behind the LRUs, so every disk probe was
            # first an LRU miss: a disk hit turns that miss into a hit,
            # and only the remaining misses were truly unanswered.
            misses = max(misses - local_hits, 0)
            size += store["size"]
            maxsize += store["size"]
        requests = hits + misses
        stats["total"] = {
            "hits": hits,
            "misses": misses,
            "size": size,
            "maxsize": maxsize,
            "hit_rate": round(hits / requests, 4) if requests else 0.0,
        }
        return stats

    def clear_caches(self, persistent: bool = False) -> None:
        """Empty the in-memory caches; ``persistent=True`` also wipes the disk store."""
        self._containment_cache.clear()
        self._chase_cache.clear()
        self._rewrite_cache.clear()
        if persistent and self._persistent is not None:
            self._persistent.clear()

    def _cache_marker(self) -> Tuple[int, int]:
        """(hits, fresh computes) seen so far, across every cache tier.

        Composite procedures (the optimize pipeline) bracket their run
        with two markers to report a truthful ``cache_hit``: hits are
        LRU hits plus persistent-store hits, and a "fresh compute" is a
        probe no tier could answer — a persistent miss when a store is
        attached (every disk probe was first an LRU miss), otherwise an
        LRU miss.  Concurrent callers sharing this solver can smear the
        numbers; the field is informational, mirroring the single-call
        responses.
        """
        containment = self._containment_cache.info()
        chase = self._chase_cache.info()
        with self._persistent_lock:
            persistent_hits = self._persistent_hits
            persistent_misses = self._persistent_misses
        hits = containment.hits + chase.hits + persistent_hits
        if self._persistent is not None:
            fresh = persistent_misses
        else:
            fresh = containment.misses + chase.misses
        return hits, fresh

    def _cache_hit_since(self, marker: Tuple[int, int]) -> bool:
        """True when the bracketed run was answered entirely from caches."""
        hits, fresh = self._cache_marker()
        return hits > marker[0] and fresh == marker[1]

    def _through_persistent(self, namespace: str, key, compute):
        """Disk-store fallback behind an LRU miss: probe, else compute and store."""
        if self._persistent is not None:
            value = self._persistent.get(namespace, key)
            if value is not None:
                with self._persistent_lock:
                    self._persistent_hits += 1
                return value, True
            with self._persistent_lock:
                self._persistent_misses += 1
        value = compute()
        if self._persistent is not None:
            self._persistent.put(namespace, key, value)
            with self._persistent_lock:
                self._persistent_writes += 1
        return value, False

    def _cached_chase(self, query: ConjunctiveQuery,
                      dependencies: DependencySet,
                      config: ChaseConfig) -> Tuple[ChaseResult, bool]:
        if self._chase_cache.maxsize == 0 and self._persistent is None:
            return build_engine(query, dependencies, config).run(), False
        # The display name rides along because ChaseResult.query (and the
        # reports derived from it) surface it; content fingerprints alone
        # would conflate equal queries with different names.  The resolved
        # engine name is part of the key so legacy and indexed runs of the
        # differential harness never share a result.
        key = (
            query.name,
            query_fingerprint(query),
            dependency_fingerprint(dependencies),
            config.variant,
            config.max_level,
            config.max_conjuncts,
            config.max_steps,
            config.record_trace,
            resolve_engine_name(config.engine),
        )
        with maybe_span("cache.lookup", cache="chase") as span:
            cached = self._chase_cache.get(key)
            if span is not None:
                span.tags["hit"] = cached is not None
        if cached is not None:
            return cached, True
        result, from_disk = self._through_persistent(
            "chase", key, lambda: build_engine(query, dependencies, config).run())
        self._chase_cache.put(key, result)
        return result, from_disk

    def _chase_fn(self, query: ConjunctiveQuery, dependencies: DependencySet,
                  config: ChaseConfig) -> ChaseResult:
        """The chase callable threaded into the containment procedure."""
        result, _ = self._cached_chase(query, dependencies, config)
        return result

    # -- containment ---------------------------------------------------------

    def is_contained(self, query: ConjunctiveQuery,
                     query_prime: ConjunctiveQuery,
                     dependencies: Optional[DependencySet] = None,
                     **options) -> ContainmentResult:
        """Legacy-shaped containment decision (see the old ``is_contained``).

        ``options`` are the historical keyword arguments (``variant``,
        ``level_bound``, ``max_conjuncts``, ``record_trace``,
        ``with_certificate``, ``deepening``); they override the session
        config for this call.
        """
        result, _ = self._decide(query, query_prime, dependencies,
                                 self._config.with_legacy_kwargs(**options))
        return result

    def _decide(self, query: ConjunctiveQuery, query_prime: ConjunctiveQuery,
                dependencies: Optional[DependencySet],
                config: SolverConfig) -> Tuple[ContainmentResult, bool]:
        self.stats.count("containment_requests")
        sigma = dependencies if dependencies is not None else DependencySet()
        # Results carrying certificates are never cached: certificates are
        # standalone artifacts a caller may legitimately mutate (tampering
        # experiments, redaction before shipping), so sharing one object
        # across calls would let one caller corrupt another's proof.
        cacheable = (not config.with_certificate
                     and (self._containment_cache.maxsize > 0
                          or self._persistent is not None))
        key = (
            (query.name, query_fingerprint(query)),
            (query_prime.name, query_fingerprint(query_prime)),
            dependency_fingerprint(sigma),
            config.containment_key(),
        ) if cacheable else None
        if cacheable:
            with maybe_span("cache.lookup", cache="containment") as span:
                cached = self._containment_cache.get(key)
                if span is not None:
                    span.tags["hit"] = cached is not None
            if cached is not None:
                return cached, True

        def compute() -> ContainmentResult:
            classification = sigma.classify(query.input_schema)
            if classification is DependencyClass.EMPTY:
                return contained_without_dependencies(query, query_prime)
            if classification is DependencyClass.FD_ONLY:
                return contained_under_fds(query, query_prime, sigma)
            exact = classification in (DependencyClass.IND_ONLY,
                                       DependencyClass.KEY_BASED)
            # Outside the paper's decidable classes (general FD/IND mixes
            # and embedded TGD/EGD sets) a weak-acyclicity certificate
            # upgrades the semi-decision: the R-chase terminates, so
            # deepening to saturation yields an exact verdict.  The
            # guarantee covers the restricted chase only.
            assume_terminating = (
                not exact
                and config.certify_termination
                and config.level_bound is None  # an explicit bound wins
                and config.variant is ChaseVariant.RESTRICTED
            )
            if assume_terminating:
                with maybe_span("termination.analysis") as span:
                    assume_terminating = chase_guaranteed_finite(
                        sigma, query.input_schema)
                    if span is not None:
                        span.tags["certified"] = assume_terminating
            return contained_under_bounded_chase(
                query, query_prime, sigma,
                variant=config.variant,
                level_bound=config.level_bound,
                max_conjuncts=config.max_conjuncts,
                exact=exact,
                record_trace=config.record_trace,
                with_certificate=config.with_certificate,
                deepening=config.deepening,
                chase_fn=self._chase_fn,
                engine=config.chase_engine,
                assume_terminating=assume_terminating,
                saturation_level_cap=config.saturation_level_cap,
            )

        if not cacheable:
            return compute(), False
        result, from_disk = self._through_persistent("containment", key, compute)
        self._containment_cache.put(key, result)
        return result, from_disk

    # -- chase ---------------------------------------------------------------

    def chase(self, query: ConjunctiveQuery,
              dependencies: Optional[DependencySet] = None,
              config: Optional[ChaseConfig] = None) -> ChaseResult:
        """Legacy-shaped chase (see the old module-level ``chase``).

        ``config=None`` falls back to the session's ``chase_*`` knobs
        (which default to the historical ``ChaseConfig()`` values).
        """
        self.stats.count("chase_requests")
        sigma = dependencies if dependencies is not None else DependencySet()
        chase_config = config or self._config.chase_config()
        result, _ = self._cached_chase(query, sigma, chase_config)
        return result

    # -- optimization --------------------------------------------------------

    def optimize(self, query: ConjunctiveQuery,
                 dependencies: Optional[DependencySet] = None,
                 name: Optional[str] = None,
                 **containment_options) -> OptimizationReport:
        """Legacy-shaped rewrite pipeline (see the old ``optimize``)."""
        self.stats.count("optimize_requests")
        return pipeline_optimize(query, dependencies, name=name, solver=self,
                                 **containment_options)

    def minimize_under(self, query: ConjunctiveQuery,
                       dependencies: Optional[DependencySet] = None,
                       name: Optional[str] = None,
                       **options) -> ConjunctiveQuery:
        """Minimization under Σ, routed through this solver's caches."""
        from repro.containment.equivalence import minimize_under as legacy_minimize
        return legacy_minimize(query, dependencies, name=name, solver=self,
                               **options)

    # -- view rewriting ------------------------------------------------------

    def catalog_index_for(self, catalog: ViewCatalog,
                          fingerprint: Optional[str] = None) -> CatalogIndex:
        """The catalog's signature index, built once per fingerprint.

        Index-using rewrite strategies (``"bucketed"``) probe this to
        prune views before any homomorphism search; sharing it across
        calls means a thousand-view catalog is indexed once, not once
        per query.
        """
        key = fingerprint if fingerprint is not None else catalog_fingerprint(catalog)
        cached = self._catalog_indexes.get(key)
        if cached is not None:
            return cached
        index = build_catalog_index(catalog)
        self._catalog_indexes.put(key, index)
        return index

    def rewrite(self, query: ConjunctiveQuery, catalog: ViewCatalog,
                dependencies: Optional[DependencySet] = None,
                cost_model: Optional[CostModel] = None,
                config: Optional[SolverConfig] = None) -> RewriteReport:
        """Chase & backchase rewriting of ``query`` over ``catalog``'s views.

        Reports are cached across calls keyed on the canonical
        fingerprints of (query, catalog, Σ) plus the config fields that
        shape the search, so re-rewriting a repeated workload costs one
        LRU lookup.  A non-default ``cost_model`` bypasses the cache
        (callables have no content fingerprint); the inner containment
        and chase calls still hit their own caches either way.
        """
        report, _ = self._cached_rewrite(query, catalog, dependencies,
                                         cost_model, config or self._config)
        return report

    def _cached_rewrite(self, query: ConjunctiveQuery, catalog: ViewCatalog,
                        dependencies: Optional[DependencySet],
                        cost_model: Optional[CostModel],
                        config: SolverConfig) -> Tuple[RewriteReport, bool]:
        self.stats.count("rewrite_requests")
        sigma = dependencies if dependencies is not None else DependencySet()
        # Mirrors _decide: certificate-bearing results are never cached
        # (the report's rewritings embed both directions' containment
        # results, and certificates are standalone artifacts a caller may
        # legitimately mutate).  Cached reports are shared objects —
        # treat them as immutable, like cached ChaseResults.
        cacheable = (cost_model is None
                     and not config.with_certificate
                     and (self._rewrite_cache.maxsize > 0
                          or self._persistent is not None))
        key = (
            (query.name, query_fingerprint(query)),
            catalog_fingerprint(catalog),
            dependency_fingerprint(sigma),
            config.rewrite_key(),
        ) if cacheable else None
        if cacheable:
            cached = self._rewrite_cache.get(key)
            if cached is not None:
                return cached, True

        # The signature index is a derived structure shared across every
        # query against this catalog; the exhaustive strategy never
        # probes it, so only index-using strategies pay the (cached)
        # build.
        from repro.views.registry import resolve_rewriter_name
        strategy = resolve_rewriter_name(config.rewrite_strategy)
        catalog_index = (
            self.catalog_index_for(catalog, key[1] if cacheable else None)
            if strategy != "exhaustive" else None)

        def compute() -> RewriteReport:
            with maybe_span("rewrite.search"):
                return rewrite_with_views(
                query, catalog, sigma, solver=self, cost_model=cost_model,
                max_images=config.rewrite_max_images,
                max_combination_size=config.rewrite_max_combination_size,
                max_candidates=config.rewrite_max_candidates,
                chase_level=config.rewrite_chase_level,
                chase_max_conjuncts=config.chase_max_conjuncts,
                strategy=strategy,
                catalog_index=catalog_index,
                # Certification must follow the config the cache key reflects,
                # even when it differs from this solver's session config.
                variant=config.variant,
                level_bound=config.level_bound,
                max_conjuncts=config.max_conjuncts,
                record_trace=config.record_trace,
                with_certificate=config.with_certificate,
                deepening=config.deepening,
            )

        if not cacheable:
            return compute(), False
        report, from_disk = self._through_persistent("rewrite", key, compute)
        self._rewrite_cache.put(key, report)
        return report, from_disk

    # -- the request/response surface ----------------------------------------

    def solve(self, request: SolveRequest) -> SolveResponse:
        """Execute one typed request and return its enriched response."""
        if isinstance(request, ContainmentRequest):
            op, response = "contain", self._solve_containment(request)
        elif isinstance(request, ChaseRequest):
            op, response = "chase", self._solve_chase(request)
        elif isinstance(request, OptimizeRequest):
            op, response = "optimize", self._solve_optimize(request)
        elif isinstance(request, RewriteRequest):
            op, response = "rewrite", self._solve_rewrite(request)
        else:
            raise ReproError(
                f"unknown request type {type(request).__name__}; expected "
                "ContainmentRequest, ChaseRequest, OptimizeRequest, or "
                "RewriteRequest")
        probe = _probe.ACTIVE
        if probe is not None:
            probe.request(op, response.elapsed_s, response.cache_hit)
        return response

    def _solve_containment(self, request: ContainmentRequest) -> ContainmentResponse:
        config = request.config or self._config
        started = monotonic()
        result, cache_hit = self._decide(
            request.query, request.query_prime, request.dependencies, config)
        elapsed = monotonic() - started
        budget = BudgetUsage(
            chase_size=result.chase_size,
            max_conjuncts=config.max_conjuncts,
            levels_built=result.levels_built,
            level_bound=result.level_bound,
        )
        return ContainmentResponse(
            elapsed_s=elapsed, cache_hit=cache_hit, config=config,
            budget=budget, tag=request.tag, result=result)

    def _solve_chase(self, request: ChaseRequest) -> ChaseResponse:
        config = request.config or self._config
        chase_config = config.chase_config(max_level=request.max_level)
        sigma = (request.dependencies if request.dependencies is not None
                 else DependencySet())
        self.stats.count("chase_requests")
        started = monotonic()
        result, cache_hit = self._cached_chase(request.query, sigma, chase_config)
        elapsed = monotonic() - started
        budget = BudgetUsage(
            chase_size=len(result),
            max_conjuncts=chase_config.max_conjuncts,
            levels_built=result.max_level(),
            level_bound=chase_config.max_level,
        )
        return ChaseResponse(
            elapsed_s=elapsed, cache_hit=cache_hit, config=config,
            budget=budget, tag=request.tag, result=result)

    def _solve_optimize(self, request: OptimizeRequest) -> OptimizeResponse:
        config = request.config or self._config
        self.stats.count("optimize_requests")
        # A per-request config overrides the session for the pipeline's
        # internal containment checks.
        options = {}
        if request.config is not None:
            options = {
                "variant": config.variant,
                "level_bound": config.level_bound,
                "max_conjuncts": config.max_conjuncts,
                "record_trace": config.record_trace,
                "with_certificate": config.with_certificate,
                "deepening": config.deepening,
            }
        started = monotonic()
        marker = self._cache_marker()
        report = pipeline_optimize(
            request.query, request.dependencies, name=request.name, solver=self,
            **options)
        cache_hit = self._cache_hit_since(marker)
        elapsed = monotonic() - started
        return OptimizeResponse(
            elapsed_s=elapsed, cache_hit=cache_hit, config=config,
            tag=request.tag, report=report)

    def _solve_rewrite(self, request: RewriteRequest) -> RewriteResponse:
        config = request.config or self._config
        started = monotonic()
        report, cache_hit = self._cached_rewrite(
            request.query, request.catalog, request.dependencies,
            request.cost_model, config)
        elapsed = monotonic() - started
        return RewriteResponse(
            elapsed_s=elapsed, cache_hit=cache_hit, config=config,
            tag=request.tag, report=report)

    # -- batch execution -----------------------------------------------------

    def solve_many(self, requests: Sequence[SolveRequest],
                   parallelism: Optional[int] = None,
                   executor: Optional[str] = None) -> List[SolveResponse]:
        """Execute many requests, preserving input order.

        ``parallelism``/``executor`` default to the session config.  The
        thread executor shares this solver's caches (useful when requests
        overlap); the process executor trades cache sharing for true CPU
        parallelism by solving each request in a fresh worker solver.
        """
        self.stats.count("batch_calls")
        requests = list(requests)
        workers = parallelism if parallelism is not None else self._config.parallelism
        mode = executor if executor is not None else self._config.executor
        if mode not in ("serial", "thread", "process"):
            raise ReproError(f"unknown executor {mode!r}")
        if workers is None or workers <= 1 or len(requests) <= 1 or mode == "serial":
            return [self.solve(request) for request in requests]

        import concurrent.futures as futures
        if mode == "thread":
            pool_cls = futures.ThreadPoolExecutor
            with pool_cls(max_workers=workers) as pool:
                return list(pool.map(self.solve, requests))
        with futures.ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(_solve_in_worker,
                                 ((request, self._config) for request in requests)))

    def contains_all_pairs(self, queries: Sequence[ConjunctiveQuery],
                           dependencies: Optional[DependencySet] = None,
                           parallelism: Optional[int] = None,
                           executor: Optional[str] = None) -> PairwiseContainment:
        """All ordered containment questions among ``queries`` under Σ.

        The chase cache makes this markedly cheaper than n·(n−1)
        independent calls: each query is chased once per level budget, not
        once per opponent.
        """
        queries = tuple(queries)
        pairs = [(i, j) for i in range(len(queries))
                 for j in range(len(queries)) if i != j]
        requests = [
            ContainmentRequest(queries[i], queries[j], dependencies,
                               tag=f"{i}->{j}")
            for i, j in pairs
        ]
        responses = self.solve_many(requests, parallelism=parallelism,
                                    executor=executor)
        return PairwiseContainment(
            queries=queries,
            responses={pair: response for pair, response in zip(pairs, responses)},
        )


def _solve_in_worker(payload: Tuple[SolveRequest, SolverConfig]) -> SolveResponse:
    """Process-pool entry point: solve one request in a fresh solver."""
    request, config = payload
    return Solver(config.derive(parallelism=None, executor="serial")).solve(request)


# ---------------------------------------------------------------------------
# The process-wide default solver the legacy functional API delegates to
# ---------------------------------------------------------------------------

_default_solver: Optional[Solver] = None
_default_solver_lock = threading.Lock()


def get_default_solver() -> Solver:
    """The lazily-created solver behind ``is_contained``/``chase``/… ."""
    global _default_solver
    if _default_solver is None:
        with _default_solver_lock:
            if _default_solver is None:
                _default_solver = Solver()
    return _default_solver


def resolve_solver(solver: Optional[Solver]) -> Solver:
    """``solver`` itself, or the process-wide default when ``None``.

    The helper the optional ``solver=`` parameters across the library
    (optimizer pipeline, equivalence, minimization) resolve through.
    """
    return solver if solver is not None else get_default_solver()


def set_default_solver(solver: Solver) -> Solver:
    """Install a configured solver as the process-wide default."""
    global _default_solver
    with _default_solver_lock:
        _default_solver = solver
    return solver


def reset_default_solver() -> None:
    """Drop the default solver (a fresh one is created on next use)."""
    global _default_solver
    with _default_solver_lock:
        _default_solver = None
