"""Canonical fingerprints for queries and schemas.

The solver's cross-call caches need keys that are (a) stable across
processes, (b) insensitive to incidental object identity, and (c) exactly
as fine-grained as query equality: two :class:`ConjunctiveQuery` objects
that compare equal (same schema, same summary row, same *set* of labelled
conjuncts — conjunct order is immaterial) must fingerprint identically,
and unequal queries must not collide in practice.

Terms are rendered with a kind tag so a constant ``"x"``, a distinguished
variable ``x``, and a nondistinguished variable ``x`` stay distinct.
"""

from __future__ import annotations

import hashlib
from typing import Optional

from repro.dependencies.dependency_set import DependencySet
from repro.queries.conjunct import Conjunct
from repro.queries.conjunctive_query import ConjunctiveQuery
from repro.relational.schema import DatabaseSchema
from repro.terms.term import Constant, DistinguishedVariable, NonDistinguishedVariable, Term


def term_signature(term: Term) -> str:
    if isinstance(term, Constant):
        return f"c:{type(term.value).__name__}:{term.value!r}"
    if isinstance(term, DistinguishedVariable):
        return f"dv:{term.name}"
    if isinstance(term, NonDistinguishedVariable):
        return f"ndv:{term.name}:{term.serial!r}:{term.created}"
    return f"t:{term!r}"


def conjunct_signature(conjunct: Conjunct) -> str:
    terms = ",".join(term_signature(term) for term in conjunct.terms)
    return f"{conjunct.label}|{conjunct.relation}({terms})"


def schema_signature(schema: Optional[DatabaseSchema]) -> str:
    if schema is None:
        return "-"
    return ";".join(
        f"{name}({','.join(attributes)})"
        for name, attributes in schema.signature()
    )


def schema_fingerprint(schema: Optional[DatabaseSchema]) -> str:
    """A stable digest of a schema's relations and attribute names.

    Together with :func:`dependency_fingerprint` this identifies a
    *tenant* for the service layer's shard routing: requests over the
    same (schema, Σ) land on the same shard, whose caches stay hot for
    exactly that tenant's chases and answers.
    """
    return hashlib.sha256(schema_signature(schema).encode("utf-8")).hexdigest()


def query_fingerprint(query: ConjunctiveQuery) -> str:
    """A stable digest of a query's content (name-insensitive).

    The display name is excluded (renaming a query does not change what it
    computes); everything equality looks at is included, with conjuncts
    sorted so insertion order cannot split the cache.
    """
    payload = "\n".join((
        schema_signature(query.input_schema),
        ",".join(term_signature(term) for term in query.summary_row),
        "\n".join(sorted(conjunct_signature(c) for c in query.conjuncts)),
    ))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def dependency_fingerprint(dependencies: Optional[DependencySet]) -> str:
    """Fingerprint of Σ; the empty / absent set has a fixed digest."""
    if dependencies is None:
        return DependencySet().fingerprint()
    return dependencies.fingerprint()


def view_fingerprint(view) -> str:
    """Digest of one view: its name plus its defining query's content.

    The name is included — unlike a query's display name it is semantic,
    because rewritings contain atoms over it.
    """
    payload = f"{view.name}\n{query_fingerprint(view.definition)}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def catalog_fingerprint(catalog) -> str:
    """Digest of a view catalog (insertion-order insensitive).

    Keys the solver's rewrite cache together with the query and Σ
    fingerprints; two catalogs holding the same views over the same base
    schema fingerprint identically.
    """
    payload = "\n".join((
        schema_signature(catalog.base_schema),
        "\n".join(sorted(view_fingerprint(view) for view in catalog)),
    ))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
