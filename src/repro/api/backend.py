"""The minimal backend interface behind the solver's warm tier.

:class:`~repro.api.persistent.PersistentCache` (SQLite) is the default
implementation, but nothing in :class:`~repro.api.solver.Solver` or the
service pool depends on SQLite specifically — they only ever call the
five methods captured here as :class:`CacheBackend`.  A fleet that wants
a networked warm tier (memcached, Redis, a sibling coordinator) slots
its own implementation into ``Solver(persistent_cache=...)`` or
``ShardedSolverPool(cache_backend=...)`` without touching the solver.

:class:`MemoryCacheBackend` is the reference second implementation: a
process-local dict with the same key discipline as the SQLite store.
It is what lets several in-process fleet nodes share one warm tier in
tests and examples, and it documents exactly how little a backend must
provide.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Hashable, Optional, Protocol, runtime_checkable


@runtime_checkable
class CacheBackend(Protocol):
    """What the solver requires of a shared warm tier.

    Semantics the solver relies on:

    * ``get`` returns ``None`` on a miss (so a backend must never store
      ``None`` as a value — the solver never asks it to);
    * ``put`` may be called concurrently from several threads;
    * ``sizes`` maps namespace → entry count (``containment``, ``chase``,
      ``rewrite``; see :data:`repro.api.persistent.NAMESPACES`);
    * ``close`` releases whatever the backend holds; the solver only
      closes backends it created itself.

    A backend *may* additionally expose ``stats()`` returning a
    JSON-ready dict (the SQLite store does); the solver falls back to
    :func:`backend_stats` when it does not.
    """

    def get(self, namespace: str, key: Hashable) -> Optional[Any]: ...

    def put(self, namespace: str, key: Hashable, value: Any) -> None: ...

    def sizes(self) -> Dict[str, int]: ...

    def clear(self) -> None: ...

    def close(self) -> None: ...


def backend_stats(backend: CacheBackend) -> Dict[str, Any]:
    """A backend's JSON-ready stats, synthesized when it offers none.

    Backends with their own ``stats()`` (the SQLite store, the memory
    backend) answer directly; a bare-protocol backend gets a document in
    the same shape with zeroed counters, so ``Solver.cache_stats`` never
    has to care which backend is plugged in.
    """
    stats = getattr(backend, "stats", None)
    if callable(stats):
        return stats()
    sizes = backend.sizes()
    return {
        "path": getattr(backend, "path", type(backend).__name__),
        "hits": 0,
        "misses": 0,
        "writes": 0,
        "size": sum(sizes.values()),
        "hit_rate": 0.0,
        "namespaces": sizes,
    }


class MemoryCacheBackend:
    """An in-process :class:`CacheBackend` (the shared warm tier of tests
    and in-process fleets).

    Keys go through the same :func:`~repro.api.persistent.stable_key_digest`
    rendering as the SQLite store, so anything that persists there also
    works here — the two backends are interchangeable except for
    durability.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: Dict[tuple, Any] = {}
        self._hits = 0
        self._misses = 0
        self._writes = 0

    @property
    def path(self) -> str:
        return ":memory-backend:"

    def get(self, namespace: str, key: Hashable) -> Optional[Any]:
        from repro.api.persistent import stable_key_digest
        digest = (namespace, stable_key_digest(key))
        with self._lock:
            value = self._entries.get(digest)
            if value is None:
                self._misses += 1
            else:
                self._hits += 1
            return value

    def put(self, namespace: str, key: Hashable, value: Any) -> None:
        from repro.api.persistent import stable_key_digest
        digest = (namespace, stable_key_digest(key))
        with self._lock:
            self._entries[digest] = value
            self._writes += 1

    def sizes(self) -> Dict[str, int]:
        from repro.api.persistent import NAMESPACES
        counts = {namespace: 0 for namespace in NAMESPACES}
        with self._lock:
            for namespace, _ in self._entries:
                counts[namespace] = counts.get(namespace, 0) + 1
        return counts

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            hits, misses, writes = self._hits, self._misses, self._writes
            size = len(self._entries)
        requests = hits + misses
        return {
            "path": self.path,
            "hits": hits,
            "misses": misses,
            "writes": writes,
            "size": size,
            "hit_rate": round(hits / requests, 4) if requests else 0.0,
            "namespaces": self.sizes(),
        }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def close(self) -> None:
        self.clear()
