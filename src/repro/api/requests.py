"""Typed requests and enriched responses for the :class:`Solver` facade.

A request names the operation and its operands; per-request ``config``
overrides the solver's session config for that call only.  A response
wraps the underlying result object (the same classes the legacy functional
API returns) and adds the session-level telemetry a service needs: wall
time, whether the answer came from a cache, and how much of the configured
budget the computation consumed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.api.config import SolverConfig
from repro.chase.engine import ChaseResult
from repro.containment.result import ContainmentResult
from repro.dependencies.dependency_set import DependencySet
from repro.optimizer.pipeline import OptimizationReport
from repro.queries.conjunctive_query import ConjunctiveQuery
from repro.views.cost import CostModel
from repro.views.rewriting import RewriteReport, Rewriting
from repro.views.view import ViewCatalog


# ---------------------------------------------------------------------------
# Requests
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ContainmentRequest:
    """Decide ``Σ ⊨ query ⊆∞ query_prime``."""

    query: ConjunctiveQuery
    query_prime: ConjunctiveQuery
    dependencies: Optional[DependencySet] = None
    config: Optional[SolverConfig] = None
    #: Opaque correlation id echoed back on the response (batch workloads).
    tag: Optional[str] = None


@dataclass(frozen=True)
class ChaseRequest:
    """Build a bounded chase of ``query`` under ``dependencies``.

    ``None`` budget fields fall back to the solver config's ``chase_*``
    defaults.
    """

    query: ConjunctiveQuery
    dependencies: Optional[DependencySet] = None
    max_level: Optional[int] = None
    config: Optional[SolverConfig] = None
    tag: Optional[str] = None


@dataclass(frozen=True)
class OptimizeRequest:
    """Run the full rewrite pipeline (FD simplify, join elimination, core)."""

    query: ConjunctiveQuery
    dependencies: Optional[DependencySet] = None
    name: Optional[str] = None
    config: Optional[SolverConfig] = None
    tag: Optional[str] = None


@dataclass(frozen=True)
class RewriteRequest:
    """Rewrite ``query`` over the ``catalog``'s views via chase & backchase.

    A non-default ``cost_model`` disables the rewrite cache for this call
    (callables have no content fingerprint).
    """

    query: ConjunctiveQuery
    catalog: ViewCatalog
    dependencies: Optional[DependencySet] = None
    cost_model: Optional[CostModel] = None
    config: Optional[SolverConfig] = None
    tag: Optional[str] = None


SolveRequest = Union[ContainmentRequest, ChaseRequest, OptimizeRequest,
                     RewriteRequest]


# ---------------------------------------------------------------------------
# Responses
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BudgetUsage:
    """How much of the configured budgets one answer consumed."""

    chase_size: int = 0
    max_conjuncts: Optional[int] = None
    levels_built: int = 0
    level_bound: Optional[int] = None

    @property
    def conjunct_utilisation(self) -> float:
        """Fraction of the conjunct budget used (0.0 when unbounded)."""
        if not self.max_conjuncts:
            return 0.0
        return self.chase_size / self.max_conjuncts

    @property
    def level_utilisation(self) -> float:
        if not self.level_bound:
            return 0.0
        return self.levels_built / self.level_bound

    def as_dict(self) -> Dict[str, Any]:
        return {
            "chase_size": self.chase_size,
            "max_conjuncts": self.max_conjuncts,
            "levels_built": self.levels_built,
            "level_bound": self.level_bound,
            "conjunct_utilisation": round(self.conjunct_utilisation, 4),
            "level_utilisation": round(self.level_utilisation, 4),
        }


@dataclass(frozen=True)
class SolveResponse:
    """Telemetry shared by every response kind."""

    elapsed_s: float
    cache_hit: bool
    config: SolverConfig
    budget: BudgetUsage = field(default_factory=BudgetUsage)
    tag: Optional[str] = None


@dataclass(frozen=True)
class ContainmentResponse(SolveResponse):
    result: ContainmentResult = None  # type: ignore[assignment]

    @property
    def holds(self) -> bool:
        return self.result.holds

    @property
    def certain(self) -> bool:
        return self.result.certain

    def describe(self) -> str:
        origin = "cache" if self.cache_hit else "computed"
        return f"{self.result.describe()} [{origin}, {self.elapsed_s * 1e3:.2f} ms]"


@dataclass(frozen=True)
class ChaseResponse(SolveResponse):
    result: ChaseResult = None  # type: ignore[assignment]

    def describe(self) -> str:
        origin = "cache" if self.cache_hit else "computed"
        return f"{self.result.describe()}\n[{origin}, {self.elapsed_s * 1e3:.2f} ms]"


@dataclass(frozen=True)
class OptimizeResponse(SolveResponse):
    report: OptimizationReport = None  # type: ignore[assignment]

    def describe(self) -> str:
        return f"{self.report.describe()}\n[{self.elapsed_s * 1e3:.2f} ms]"


@dataclass(frozen=True)
class RewriteResponse(SolveResponse):
    report: RewriteReport = None  # type: ignore[assignment]

    @property
    def best(self) -> Optional[Rewriting]:
        """The cheapest certified rewriting, if any."""
        return self.report.best

    @property
    def found(self) -> bool:
        return bool(self.report.rewritings)

    def describe(self) -> str:
        origin = "cache" if self.cache_hit else "computed"
        return f"{self.report.describe()}\n[{origin}, {self.elapsed_s * 1e3:.2f} ms]"


# ---------------------------------------------------------------------------
# Pairwise containment
# ---------------------------------------------------------------------------


@dataclass
class PairwiseContainment:
    """All ordered containment answers among one list of queries."""

    queries: Tuple[ConjunctiveQuery, ...]
    responses: Dict[Tuple[int, int], ContainmentResponse]

    def response(self, i: int, j: int) -> ContainmentResponse:
        return self.responses[(i, j)]

    def holds(self, i: int, j: int) -> bool:
        return self.responses[(i, j)].holds

    def equivalent_pairs(self) -> List[Tuple[int, int]]:
        """Index pairs (i < j) whose queries are certainly equivalent."""
        pairs = []
        for i in range(len(self.queries)):
            for j in range(i + 1, len(self.queries)):
                forward, backward = self.responses[(i, j)], self.responses[(j, i)]
                if (forward.certain and forward.holds
                        and backward.certain and backward.holds):
                    pairs.append((i, j))
        return pairs

    def describe(self) -> str:
        lines = [f"pairwise containment over {len(self.queries)} queries:"]
        for (i, j), response in sorted(self.responses.items()):
            verdict = "⊆" if response.holds else "⊄"
            certainty = "" if response.certain else " (uncertain)"
            lines.append(
                f"  {self.queries[i].name} {verdict} {self.queries[j].name}{certainty}")
        return "\n".join(lines)
