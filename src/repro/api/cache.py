"""A small thread-safe LRU cache with hit/miss counters.

``functools.lru_cache`` keys on call arguments and cannot be sized per
instance, inspected, or cleared selectively, so the solver carries its own
map.  Keys are the canonical fingerprints computed in
:mod:`repro.api.fingerprints`; values are the (immutable-by-convention)
result objects, which are returned to every caller without copying — the
engine never mutates a result after constructing it.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Hashable


@dataclass
class CacheInfo:
    """A point-in-time snapshot of one cache's counters."""

    hits: int
    misses: int
    size: int
    maxsize: int

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {"hits": self.hits, "misses": self.misses, "size": self.size,
                "maxsize": self.maxsize, "hit_rate": round(self.hit_rate, 4)}


_MISSING = object()


class LRUCache:
    """Least-recently-used mapping; ``maxsize=0`` disables storage entirely."""

    def __init__(self, maxsize: int):
        if maxsize < 0:
            raise ValueError("maxsize must be non-negative")
        self._maxsize = maxsize
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0

    @property
    def maxsize(self) -> int:
        return self._maxsize

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def get(self, key: Hashable) -> Any:
        """The cached value, or ``None`` on a miss (counters updated)."""
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self._misses += 1
                return None
            self._data.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        if self._maxsize == 0:
            return
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self._maxsize:
                self._data.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def info(self) -> CacheInfo:
        with self._lock:
            return CacheInfo(hits=self._hits, misses=self._misses,
                             size=len(self._data), maxsize=self._maxsize)
