"""repro.api — the session-oriented entry point to the library.

Build one :class:`Solver` per process or service worker, describe work
with typed request objects, and get enriched responses back::

    from repro.api import ContainmentRequest, Solver, SolverConfig

    solver = Solver(SolverConfig(max_conjuncts=50_000))
    response = solver.solve(ContainmentRequest(q2, q1, sigma))
    response.holds          # the answer
    response.cache_hit      # False the first time, True on repeats
    response.elapsed_s      # wall time of this call
    response.budget         # how much of the chase budget was used

The legacy module-level functions (``repro.is_contained``,
``repro.chase``, ``repro.optimize``, …) remain available and are thin
wrappers over a shared default Solver, so existing code transparently
gains the cross-call caches.
"""

from repro.api.backend import CacheBackend, MemoryCacheBackend, backend_stats
from repro.api.cache import CacheInfo, LRUCache
from repro.api.config import LEGACY_CONTAINMENT_KWARGS, SolverConfig
from repro.api.fingerprints import (
    catalog_fingerprint,
    dependency_fingerprint,
    query_fingerprint,
    schema_fingerprint,
    view_fingerprint,
)
from repro.api.persistent import PersistentCache, PersistentCacheError
from repro.api.requests import (
    BudgetUsage,
    ChaseRequest,
    ChaseResponse,
    ContainmentRequest,
    ContainmentResponse,
    OptimizeRequest,
    OptimizeResponse,
    PairwiseContainment,
    RewriteRequest,
    RewriteResponse,
    SolveRequest,
    SolveResponse,
)
from repro.api.solver import (
    Solver,
    SolverStats,
    get_default_solver,
    reset_default_solver,
    resolve_solver,
    set_default_solver,
)

__all__ = [
    "BudgetUsage",
    "CacheBackend",
    "CacheInfo",
    "ChaseRequest",
    "ChaseResponse",
    "ContainmentRequest",
    "ContainmentResponse",
    "LEGACY_CONTAINMENT_KWARGS",
    "LRUCache",
    "MemoryCacheBackend",
    "OptimizeRequest",
    "OptimizeResponse",
    "PairwiseContainment",
    "PersistentCache",
    "PersistentCacheError",
    "RewriteRequest",
    "RewriteResponse",
    "SolveRequest",
    "SolveResponse",
    "Solver",
    "SolverConfig",
    "SolverStats",
    "backend_stats",
    "catalog_fingerprint",
    "dependency_fingerprint",
    "get_default_solver",
    "query_fingerprint",
    "reset_default_solver",
    "schema_fingerprint",
    "resolve_solver",
    "set_default_solver",
    "view_fingerprint",
]
