"""The unified tuning surface for every Johnson–Klug procedure.

Historically each entry point re-declared the same tuning keywords
(``variant``, ``level_bound``, ``max_conjuncts``, ``record_trace``,
``with_certificate``, ``deepening``) with per-module defaults.
:class:`SolverConfig` gathers them in one frozen dataclass whose defaults
mirror the legacy keyword defaults exactly, adds the session-level knobs
(cache sizes, batch parallelism), and is the only configuration object a
:class:`~repro.api.solver.Solver` reads.

The config is immutable so it can participate in cache keys; derive
variations with :meth:`SolverConfig.derive`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.chase.engine import ChaseConfig, ChaseVariant, resolve_engine_name, validate_engine_name
from repro.exceptions import ReproError
from repro.views.registry import resolve_rewriter_name, validate_rewriter_name

#: The executors ``Solver.solve_many`` understands.
EXECUTORS = ("serial", "thread", "process")

#: The legacy keyword names every containment entry point used to take,
#: in their historical order.  ``SolverConfig`` has one field per name
#: with an identical default; tests assert this stays true.
LEGACY_CONTAINMENT_KWARGS = (
    "variant", "level_bound", "max_conjuncts",
    "record_trace", "with_certificate", "deepening",
)


@dataclass(frozen=True)
class SolverConfig:
    """Every tuning knob of the containment/chase/optimization stack.

    Containment knobs (defaults mirror the legacy ``is_contained``):

    variant:
        Which chase the bounded procedure builds (R-chase by default).
    level_bound:
        Override for the Theorem 2 level bound; ``None`` computes it.
    max_conjuncts:
        Chase size budget used by containment decisions.
    record_trace:
        Record the chase application trace during containment decisions.
    with_certificate:
        Attach verifiable certificates to positive containment answers.
    deepening:
        Use the iterative-deepening level schedule.
    certify_termination:
        For Σ outside the paper's decidable classes (general FD/IND
        mixes and embedded TGD/EGD sets), run the weak-acyclicity
        termination analysis and, when it certifies a finite R-chase,
        deepen to saturation for an *exact* verdict instead of the
        uncertain-negative bound semantics.  Only applies to the
        R-chase (the O-chase of general TGDs may diverge even for
        weakly acyclic Σ).
    saturation_level_cap:
        Ceiling on how deep the termination-certified deepening may go;
        reaching it without saturating returns an uncertain negative,
        exactly like hitting the Theorem 2 bound for uncertified Σ.
        ``None`` (the default) deepens until saturation or the conjunct
        budget.  The service sets this from its ``ServiceLimits`` so one
        tenant's deeply-saturating Σ cannot monopolise a shard.

    Stand-alone chase knobs (defaults mirror ``repro.chase.chase``):

    chase_max_level / chase_max_conjuncts / chase_max_steps /
    chase_record_trace:
        Budgets for :class:`~repro.api.requests.ChaseRequest` runs and the
        legacy ``chase()`` wrapper.

    Engine selection (applies to every chase this solver builds,
    including the ones inside containment decisions and view rewriting):

    chase_engine:
        Any name in the chase-engine registry: ``"indexed"``
        (incremental per-relation indexes, the default), ``"columnar"``
        (the interned-integer columnar core), or ``"legacy"`` (the seed
        scan-and-rebuild engine, kept for the differential test
        harness).  ``None`` defers to the ``REPRO_CHASE_ENGINE``
        environment variable and then to ``"indexed"``.

    View-rewriting knobs (used by :meth:`Solver.rewrite`):

    rewrite_max_images:
        Cap on the number of view images collected from the chase.
    rewrite_max_combination_size:
        Most view atoms a candidate rewriting may combine.
    rewrite_max_candidates:
        Cap on the number of candidates submitted for certification.
    rewrite_chase_level:
        Chase depth for view matching; ``None`` sizes it from the
        catalog's largest view body.
    rewrite_strategy:
        Any name in the rewriter registry: ``"exhaustive"`` (the
        certified reference — every view matched, all image subsets
        tried) or ``"bucketed"`` (MiniCon-style: a signature index
        prunes views before matching and candidates grow through
        per-subgoal buckets; the catalog-scale strategy).  ``None``
        defers to ``$REPRO_REWRITE_STRATEGY`` and then to
        ``"exhaustive"``.

    Session knobs:

    containment_cache_size / chase_cache_size / rewrite_cache_size:
        LRU capacities for the cross-call result, chase, and rewrite
        caches (``0`` disables the cache).
    persistent_cache_path:
        SQLite file mirroring the three caches to disk (``None``
        disables persistence).  The file may be shared: sibling worker
        processes pointed at one path warm each other, and a restarted
        process starts warm.  Not part of any cache key — persistence
        changes where answers live, never what they are.
    parallelism:
        Default worker count for ``solve_many`` (``None`` = sequential).
    executor:
        ``"serial"``, ``"thread"``, or ``"process"``.
    """

    variant: ChaseVariant = ChaseVariant.RESTRICTED
    level_bound: Optional[int] = None
    max_conjuncts: int = 20_000
    record_trace: bool = False
    with_certificate: bool = False
    deepening: bool = True
    certify_termination: bool = True
    saturation_level_cap: Optional[int] = None

    chase_max_level: Optional[int] = None
    chase_max_conjuncts: int = 5_000
    chase_max_steps: Optional[int] = None
    chase_record_trace: bool = True
    chase_engine: Optional[str] = None

    rewrite_max_images: int = 64
    rewrite_max_combination_size: int = 2
    rewrite_max_candidates: int = 256
    rewrite_chase_level: Optional[int] = None
    rewrite_strategy: Optional[str] = None

    containment_cache_size: int = 1_024
    chase_cache_size: int = 256
    rewrite_cache_size: int = 256
    persistent_cache_path: Optional[str] = None
    parallelism: Optional[int] = None
    executor: str = "thread"

    def __post_init__(self) -> None:
        if isinstance(self.variant, str):
            # Accept the enum values "R"/"O" as shorthand.
            object.__setattr__(self, "variant", ChaseVariant(self.variant))
        if self.max_conjuncts <= 0:
            raise ReproError("max_conjuncts must be positive")
        if self.chase_max_conjuncts <= 0:
            raise ReproError("chase_max_conjuncts must be positive")
        if self.level_bound is not None and self.level_bound < 0:
            raise ReproError("level_bound must be non-negative")
        if self.saturation_level_cap is not None and self.saturation_level_cap <= 0:
            raise ReproError("saturation_level_cap must be positive (or None)")
        if (self.containment_cache_size < 0 or self.chase_cache_size < 0
                or self.rewrite_cache_size < 0):
            raise ReproError("cache sizes must be non-negative")
        if (self.rewrite_max_images <= 0 or self.rewrite_max_combination_size <= 0
                or self.rewrite_max_candidates <= 0):
            raise ReproError("rewrite budgets must be positive")
        if self.rewrite_chase_level is not None and self.rewrite_chase_level < 0:
            raise ReproError("rewrite_chase_level must be non-negative")
        if self.chase_engine is not None:
            # One validator, shared with ChaseConfig: the registry's.
            # ChaseError is a ReproError, so callers catching the facade
            # exception keep working.
            validate_engine_name(self.chase_engine)
        if self.rewrite_strategy is not None:
            # Same arrangement for the rewriter registry (ViewError is a
            # ReproError too).
            validate_rewriter_name(self.rewrite_strategy)
        if self.parallelism is not None and self.parallelism <= 0:
            raise ReproError("parallelism must be positive (or None for sequential)")
        if self.executor not in EXECUTORS:
            raise ReproError(
                f"unknown executor {self.executor!r}; expected one of {EXECUTORS}")

    # -- derivation ----------------------------------------------------------

    def derive(self, **changes) -> "SolverConfig":
        """A copy of this config with the given fields replaced."""
        return dataclasses.replace(self, **changes)

    def with_legacy_kwargs(self, **kwargs) -> "SolverConfig":
        """Apply legacy containment keyword arguments as overrides.

        Unknown keywords raise, exactly as they would have on the old
        function signatures.
        """
        unknown = set(kwargs) - set(LEGACY_CONTAINMENT_KWARGS)
        if unknown:
            raise TypeError(
                f"unexpected containment option(s): {', '.join(sorted(unknown))}")
        return self.derive(**kwargs) if kwargs else self

    # -- projections ---------------------------------------------------------

    def containment_key(self) -> Tuple:
        """The fields that can change a containment answer (cache key part).

        The chase engine is part of the key so a differential harness
        running both engines against one solver never shares answers
        between them; ``None`` is resolved first so an explicit
        ``"indexed"`` and the default hit the same entries.
        """
        return (self.variant, self.level_bound, self.max_conjuncts,
                self.record_trace, self.with_certificate, self.deepening,
                self.certify_termination, self.saturation_level_cap,
                resolve_engine_name(self.chase_engine))

    def rewrite_key(self) -> Tuple:
        """The fields that can change a rewrite report (cache key part).

        Includes the containment key (certification goes through the
        containment procedure) and the matching chase's conjunct budget.
        """
        return self.containment_key() + (
            self.chase_max_conjuncts,
            self.rewrite_max_images,
            self.rewrite_max_combination_size,
            self.rewrite_max_candidates,
            self.rewrite_chase_level,
            # Resolved, like the chase engine: an explicit "exhaustive"
            # and the default share entries, and strategies never share
            # each other's reports.
            resolve_rewriter_name(self.rewrite_strategy),
        )

    def chase_config(self, max_level: Optional[int] = None) -> ChaseConfig:
        """A :class:`ChaseConfig` for stand-alone chase runs.

        ``max_level`` overrides ``chase_max_level`` when given (the legacy
        ``r_chase``/``o_chase`` wrappers pass it explicitly).
        """
        return ChaseConfig(
            variant=self.variant,
            max_level=self.chase_max_level if max_level is None else max_level,
            max_conjuncts=self.chase_max_conjuncts,
            max_steps=self.chase_max_steps,
            record_trace=self.chase_record_trace,
            engine=self.chase_engine,
        )
