"""A SQLite-backed persistent mirror of the solver's LRU caches.

The in-memory caches of :class:`~repro.api.solver.Solver` die with the
process, so a service worker restarts cold and sibling workers cannot
share answers.  :class:`PersistentCache` mirrors the same three caches
(chase, containment, rewrite) to disk, keyed on the *same* canonical
fingerprints the LRU keys are built from — the fingerprints are stable
across processes by design (see :mod:`repro.api.fingerprints`), so a
fresh worker pointed at an existing database starts warm.

Layering: the LRU stays in front.  A solver probes its LRU first, then
the persistent store; a persistent hit is promoted into the LRU, and a
computed answer is written to both.  Values are pickled result objects
(the library's results are immutable-by-convention and pickle cleanly —
the process-pool executor already relies on that); a value that fails to
unpickle (version skew, truncated write) is dropped and counted as a
miss rather than surfaced as an error.

Concurrency: one connection per :class:`PersistentCache`, serialized by
a lock; cross-process sharing goes through SQLite's own WAL locking, so
several shard workers can point at one file.
"""

from __future__ import annotations

import enum
import hashlib
import pickle
import sqlite3
import threading
from typing import Any, Dict, Hashable, Optional, Tuple

from repro.api.cache import CacheInfo
from repro.exceptions import ReproError
from repro.obs.clock import wall_time

#: Bump when the pickled value layout changes incompatibly; a store whose
#: recorded version differs is cleared on open instead of serving values
#: that would unpickle into stale shapes.
PERSISTENT_FORMAT_VERSION = 1

#: The cache namespaces a solver mirrors (one per in-memory cache).
NAMESPACES = ("containment", "chase", "rewrite")


class PersistentCacheError(ReproError):
    """The on-disk cache could not be opened or written."""


def stable_key_digest(key: Hashable) -> str:
    """Render an LRU cache key as a process-stable hex digest.

    LRU keys are nested tuples of strings (fingerprints, names), ints,
    bools, ``None``, and enums.  Python's ``hash()`` is salted per
    process, so the digest is built from an explicit canonical rendering
    instead; enums render as their value so the digest does not depend on
    the enum's repr.
    """
    digest = hashlib.sha256(_render(key).encode("utf-8"))
    return digest.hexdigest()


def _render(value: Any) -> str:
    if isinstance(value, tuple):
        return "(" + ",".join(_render(entry) for entry in value) + ")"
    if isinstance(value, enum.Enum):
        return f"e:{type(value).__name__}:{value.value!r}"
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return f"{type(value).__name__}:{value!r}"
    raise PersistentCacheError(
        f"cache key component {value!r} has no stable rendering; "
        "persistent keys must be tuples of primitives and enums")


class PersistentCache:
    """Durable (namespace, key) → pickled-value store behind the solver.

    ``path`` may be a filesystem path or ``":memory:"`` (useful in
    tests; an in-memory store is still exercised through the exact same
    code path, it just does not survive the process).

    This is the default :class:`~repro.api.backend.CacheBackend`
    implementation; the solver and the service pool only ever use the
    protocol surface (``get``/``put``/``sizes``/``clear``/``close``),
    so a networked store can replace this one without touching them.
    """

    def __init__(self, path: str):
        self._path = str(path)
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._writes = 0
        try:
            self._connection = sqlite3.connect(
                self._path, check_same_thread=False, timeout=30.0)
        except sqlite3.Error as error:
            raise PersistentCacheError(
                f"cannot open persistent cache at {self._path!r}: {error}") from error
        self._initialize()

    # -- schema --------------------------------------------------------------

    def _initialize(self) -> None:
        with self._lock, self._connection as connection:
            connection.execute("PRAGMA journal_mode=WAL")
            connection.execute("PRAGMA synchronous=NORMAL")
            connection.execute(
                "CREATE TABLE IF NOT EXISTS meta "
                "(key TEXT PRIMARY KEY, value TEXT NOT NULL)")
            connection.execute(
                "CREATE TABLE IF NOT EXISTS entries ("
                " namespace TEXT NOT NULL,"
                " key TEXT NOT NULL,"
                " value BLOB NOT NULL,"
                " created_at REAL NOT NULL,"
                " PRIMARY KEY (namespace, key))")
            row = connection.execute(
                "SELECT value FROM meta WHERE key = 'format_version'").fetchone()
            if row is None:
                connection.execute(
                    "INSERT INTO meta (key, value) VALUES ('format_version', ?)",
                    (str(PERSISTENT_FORMAT_VERSION),))
            elif row[0] != str(PERSISTENT_FORMAT_VERSION):
                # Old-format values would unpickle into stale shapes;
                # dropping them is always safe (it is a cache).
                connection.execute("DELETE FROM entries")
                connection.execute(
                    "UPDATE meta SET value = ? WHERE key = 'format_version'",
                    (str(PERSISTENT_FORMAT_VERSION),))

    # -- the cache surface ---------------------------------------------------

    @property
    def path(self) -> str:
        return self._path

    def get(self, namespace: str, key: Hashable) -> Optional[Any]:
        """The stored value, or ``None`` on a miss (counters updated)."""
        digest = stable_key_digest(key)
        with self._lock:
            row = self._connection.execute(
                "SELECT value FROM entries WHERE namespace = ? AND key = ?",
                (namespace, digest)).fetchone()
            if row is None:
                self._misses += 1
                return None
            try:
                value = pickle.loads(row[0])
            except Exception:
                # A value this build cannot unpickle is dead weight;
                # evict it so the slot can be refilled.
                with self._connection:
                    self._connection.execute(
                        "DELETE FROM entries WHERE namespace = ? AND key = ?",
                        (namespace, digest))
                self._misses += 1
                return None
            self._hits += 1
            return value

    def put(self, namespace: str, key: Hashable, value: Any) -> None:
        digest = stable_key_digest(key)
        try:
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as error:
            raise PersistentCacheError(
                f"cannot persist a {type(value).__name__}: {error}") from error
        with self._lock, self._connection:
            self._connection.execute(
                "INSERT OR REPLACE INTO entries (namespace, key, value, created_at) "
                "VALUES (?, ?, ?, ?)",
                (namespace, digest, payload, wall_time()))
            self._writes += 1

    def sizes(self) -> Dict[str, int]:
        """Row counts per namespace (namespaces with no rows included as 0)."""
        with self._lock:
            rows = self._connection.execute(
                "SELECT namespace, COUNT(*) FROM entries GROUP BY namespace").fetchall()
        counts = {namespace: 0 for namespace in NAMESPACES}
        for namespace, count in rows:
            counts[namespace] = count
        return counts

    def __len__(self) -> int:
        with self._lock:
            (count,) = self._connection.execute(
                "SELECT COUNT(*) FROM entries").fetchone()
        return count

    def info(self) -> CacheInfo:
        """Counters in the same shape as the in-memory caches.

        ``maxsize`` is reported as the current size — the store is
        unbounded, and :class:`CacheInfo` has no "unbounded" marker.
        """
        size = len(self)
        with self._lock:
            return CacheInfo(hits=self._hits, misses=self._misses,
                             size=size, maxsize=size)

    def stats(self) -> Dict[str, Any]:
        """A JSON-ready snapshot: counters, write count, per-namespace sizes."""
        info = self.info()
        return {
            "path": self._path,
            "hits": info.hits,
            "misses": info.misses,
            "writes": self._writes,
            "size": info.size,
            "hit_rate": round(info.hit_rate, 4),
            "namespaces": self.sizes(),
        }

    def clear(self) -> None:
        with self._lock, self._connection:
            self._connection.execute("DELETE FROM entries")

    def close(self) -> None:
        with self._lock:
            self._connection.close()

    def __enter__(self) -> "PersistentCache":
        return self

    def __exit__(self, *exc_info: Tuple) -> None:
        self.close()
