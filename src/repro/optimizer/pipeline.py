"""The rewrite pipeline: FD simplification, join elimination, minimization.

Each stage preserves equivalence under Σ and records what it did:

1. **FD simplification** — chase the query with Σ's FDs; this merges
   variables that the FDs force equal and coalesces duplicate atoms
   (classical tableau simplification).  If the chase fails on a constant
   clash the query is unsatisfiable on every Σ-database and the report
   says so.
2. **Join elimination** — repeatedly drop a conjunct c whenever
   ``Σ ⊨ (Q − c) ⊆ Q`` (the other direction always holds), i.e. whenever
   the dependencies guarantee the dropped atom's existence.  This is the
   paper's intro-example optimization generalised.
3. **Core minimization** — fold the remaining query onto itself (Σ = ∅
   core computation) to remove joins that are redundant for purely
   structural reasons.

The report carries, for every removed conjunct, the containment result
that justified the removal, so ``report.verify()`` can re-check the whole
rewrite chain after the fact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.chase.fd_chase import fd_only_chase
from repro.containment.equivalence import are_equivalent
from repro.containment.result import ContainmentResult
from repro.dependencies.dependency_set import DependencySet
from repro.exceptions import QueryError
from repro.queries.conjunct import Conjunct
from repro.queries.conjunctive_query import ConjunctiveQuery
from repro.queries.minimization import minimize as core_minimize


@dataclass
class RewriteStep:
    """One rewrite performed by the pipeline."""

    stage: str                      # "fd-simplify", "join-elimination", "core"
    description: str
    removed_conjunct: Optional[Conjunct] = None
    justification: Optional[ContainmentResult] = None


@dataclass
class OptimizationReport:
    """The outcome of :func:`optimize`.

    ``unsatisfiable`` is True when the FD chase failed on a constant
    clash — the query returns the empty answer on every Σ-database, so any
    query with the same interface (for example one with an impossible
    constant filter) is a valid rewrite and ``optimized`` is left equal to
    the FD-simplified original.
    """

    original: ConjunctiveQuery
    optimized: ConjunctiveQuery
    dependencies: DependencySet
    steps: List[RewriteStep] = field(default_factory=list)
    unsatisfiable: bool = False

    @property
    def conjuncts_removed(self) -> int:
        return len(self.original) - len(self.optimized)

    def removed_conjuncts(self) -> List[Conjunct]:
        return [step.removed_conjunct for step in self.steps
                if step.removed_conjunct is not None]

    def verify(self) -> bool:
        """Re-check that the optimized query is equivalent under Σ.

        Uses the containment engine directly (not the recorded
        justifications), so it is an independent end-to-end check.
        """
        if self.unsatisfiable:
            return True
        return are_equivalent(self.original, self.optimized, self.dependencies)

    def describe(self) -> str:
        lines = [
            f"optimization of {self.original.name}: "
            f"{len(self.original)} -> {len(self.optimized)} conjuncts"
        ]
        if self.unsatisfiable:
            lines.append("  query is unsatisfiable under Σ (FD constant clash)")
        for step in self.steps:
            lines.append(f"  [{step.stage}] {step.description}")
        lines.append(f"  result: {self.optimized}")
        return "\n".join(lines)


def simplify_with_fds(query: ConjunctiveQuery, dependencies: DependencySet,
                      steps: Optional[List[RewriteStep]] = None) -> Optional[ConjunctiveQuery]:
    """Stage 1: chase with the FDs of Σ; ``None`` means unsatisfiable."""
    fds = dependencies.functional_dependencies()
    if not fds:
        return query
    result = fd_only_chase(query, fds)
    if result.failed:
        if steps is not None:
            steps.append(RewriteStep(
                stage="fd-simplify",
                description="FD chase failed on a constant clash; the query is "
                            "empty on every database obeying Σ",
            ))
        return None
    chased = result.query
    assert chased is not None
    if steps is not None and (result.steps > 0 or len(chased) != len(query)):
        steps.append(RewriteStep(
            stage="fd-simplify",
            description=f"FD chase applied {result.steps} merge(s), "
                        f"{len(query)} -> {len(chased)} conjuncts",
        ))
    return chased.renamed(query.name)


def eliminate_redundant_joins(query: ConjunctiveQuery, dependencies: DependencySet,
                              steps: Optional[List[RewriteStep]] = None,
                              solver=None,
                              **containment_options) -> ConjunctiveQuery:
    """Stage 2: drop conjuncts whose existence Σ guarantees.

    A conjunct is dropped when the reduced query is still contained in the
    original under Σ (the reverse containment is automatic).  Conjuncts
    whose removal would make the query unsafe are never candidates.

    One forward pass is complete: removing atoms only *strengthens* later
    tests (a smaller body is a weaker query, so ``(current − c) ⊆ Q``
    gets harder, never easier, as ``current`` shrinks), hence a conjunct
    that failed the test once can never pass it later.  The stage is
    therefore linear in containment calls — at most one per conjunct of
    the input query — instead of restarting the scan after every drop.
    """
    from repro.api.solver import resolve_solver
    session = resolve_solver(solver)
    current = query
    position = 0
    while len(current) > 1 and position < len(current):
        conjunct = current.conjuncts[position]
        try:
            reduced = current.without_conjunct(conjunct.label)
        except QueryError:
            position += 1
            continue
        verdict = session.is_contained(reduced, query, dependencies,
                                       **containment_options)
        if verdict.certain and verdict.holds:
            if steps is not None:
                steps.append(RewriteStep(
                    stage="join-elimination",
                    description=f"dropped {conjunct}: Σ guarantees it "
                                f"({verdict.reason})",
                    removed_conjunct=conjunct,
                    justification=verdict,
                ))
            current = reduced
            # The dropped conjunct's successor now sits at ``position``;
            # stay put instead of rescanning the already-cleared prefix.
        else:
            position += 1
    return current


def optimize(query: ConjunctiveQuery, dependencies: Optional[DependencySet] = None,
             name: Optional[str] = None, solver=None,
             **containment_options) -> OptimizationReport:
    """Run the full pipeline and return the audited report.

    ``solver`` is the :class:`~repro.api.solver.Solver` whose caches back
    the join-elimination containment checks; ``None`` uses the process-wide
    default solver.
    """
    sigma = dependencies if dependencies is not None else DependencySet()
    steps: List[RewriteStep] = []

    simplified = simplify_with_fds(query, sigma, steps)
    if simplified is None:
        return OptimizationReport(
            original=query, optimized=query, dependencies=sigma,
            steps=steps, unsatisfiable=True,
        )

    eliminated = eliminate_redundant_joins(simplified, sigma, steps,
                                           solver=solver,
                                           **containment_options)

    before_core = len(eliminated)
    cored = core_minimize(eliminated)
    if len(cored) < before_core:
        steps.append(RewriteStep(
            stage="core",
            description=f"core minimization removed "
                        f"{before_core - len(cored)} structurally redundant conjunct(s)",
        ))

    optimized = cored.renamed(name or f"{query.name}_optimized")
    return OptimizationReport(
        original=query, optimized=optimized, dependencies=sigma, steps=steps,
    )
