"""Query optimization on top of containment (the paper's motivation).

Section 1 motivates the containment/equivalence/minimization trio with
query optimization: an optimizer that knows the declared dependencies can
remove joins that the dependencies make redundant.  This package packages
that use case as a small rewrite pipeline:

* :func:`optimize` — chase-simplify (FDs), eliminate joins redundant under
  Σ (INDs / key-based sets), and core-minimize, returning an
  :class:`OptimizationReport` that records every removed conjunct together
  with the containment result justifying its removal;
* :class:`RewriteStep` / :class:`OptimizationReport` — the audit trail, so
  a caller (or a test) can re-verify each rewrite independently.
"""

from repro.optimizer.pipeline import (
    OptimizationReport,
    RewriteStep,
    eliminate_redundant_joins,
    optimize,
    simplify_with_fds,
)

__all__ = [
    "OptimizationReport",
    "RewriteStep",
    "eliminate_redundant_joins",
    "optimize",
    "simplify_with_fds",
]
