"""Homomorphism search.

Everything in the paper reduces to finding homomorphisms: evaluating a
query over a database (a homomorphism from the query to the database),
containment with no dependencies (a homomorphism between queries), and
containment under dependencies (a homomorphism from one query into the
chase of the other).  This package provides a single backtracking search
engine over a generic "atoms into an indexed set of target facts" problem,
plus thin wrappers for the query-to-query and query-to-database cases.

The engine deliberately does not import the query or chase packages; it
works on any objects exposing ``relation`` and ``terms`` attributes, which
keeps the dependency graph of the library acyclic.
"""

from repro.homomorphism.problem import HomomorphismProblem, TargetIndex
from repro.homomorphism.search import (
    count_homomorphisms,
    find_homomorphism,
    has_homomorphism,
    iter_homomorphisms,
)
from repro.homomorphism.query_homomorphism import (
    build_target_index,
    find_query_homomorphism,
    has_query_homomorphism,
    iter_query_homomorphisms,
    verify_query_homomorphism,
)
from repro.homomorphism.database_homomorphism import (
    answers_contain,
    database_target_index,
    evaluate_atoms,
    find_database_homomorphism,
    iter_database_homomorphisms,
)

__all__ = [
    "HomomorphismProblem",
    "TargetIndex",
    "answers_contain",
    "build_target_index",
    "count_homomorphisms",
    "database_target_index",
    "evaluate_atoms",
    "find_database_homomorphism",
    "find_homomorphism",
    "find_query_homomorphism",
    "has_homomorphism",
    "has_query_homomorphism",
    "iter_database_homomorphisms",
    "iter_homomorphisms",
    "iter_query_homomorphisms",
    "verify_query_homomorphism",
]
