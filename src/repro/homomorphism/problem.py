"""Problem representation for the homomorphism search engine.

A homomorphism problem consists of

* *source atoms* — objects with ``relation`` (a string) and ``terms`` (a
  tuple whose entries are :class:`~repro.terms.term.Constant` or
  :class:`~repro.terms.term.Variable` objects);
* a *target index* — for each relation name, the collection of target
  facts (tuples) that source atoms over that relation may be mapped to.
  Target entries may themselves be terms (query-to-query homomorphisms,
  query-to-chase homomorphisms) or raw Python values (query-to-database
  homomorphisms);
* *required bindings* — a partial mapping from source variables to target
  entries that any solution must extend (used to pin the summary row).

Constants in the source must match their target entry: either the entries
are equal, or the target entry is a raw value equal to the constant's
value.  A solution is a mapping from the source variables to target
entries under which every source atom becomes (the tuple of) some target
fact of its relation.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import QueryError
from repro.terms.term import Constant, Variable

TargetFact = Tuple[Any, ...]


class TargetIndex:
    """Facts grouped by relation, with per-column value indexes.

    The per-column indexes let the search engine narrow the candidate
    facts for an atom once some of its variables are already bound, which
    is what keeps containment tests fast on chases with many conjuncts.
    """

    def __init__(self, facts_by_relation: Optional[Mapping[str, Iterable[Sequence[Any]]]] = None):
        self._facts: Dict[str, List[TargetFact]] = {}
        self._column_index: Dict[str, List[Dict[Any, List[TargetFact]]]] = {}
        if facts_by_relation:
            for relation, facts in facts_by_relation.items():
                for fact in facts:
                    self.add(relation, fact)

    def add(self, relation: str, fact: Sequence[Any]) -> None:
        """Insert one target fact."""
        stored = tuple(fact)
        facts = self._facts.setdefault(relation, [])
        facts.append(stored)
        columns = self._column_index.setdefault(
            relation, [dict() for _ in range(len(stored))]
        )
        if len(columns) < len(stored):
            columns.extend(dict() for _ in range(len(stored) - len(columns)))
        for position, value in enumerate(stored):
            columns[position].setdefault(value, []).append(stored)

    def facts(self, relation: str) -> List[TargetFact]:
        """All facts for one relation (empty list if none)."""
        return self._facts.get(relation, [])

    def candidates(self, relation: str, fixed: Sequence[Tuple[int, Any]]) -> List[TargetFact]:
        """Facts of ``relation`` agreeing with the ``(position, value)`` pins.

        Uses the most selective column index first, then filters; with no
        pins it returns all facts of the relation.  A pin value may be a
        :class:`~repro.terms.term.Constant`, which matches both the
        constant itself and (for database targets) its raw value, so
        search engines can pin an atom's constant positions up front.
        """
        if relation not in self._facts:
            return []
        if not fixed:
            return self._facts[relation]
        columns = self._column_index[relation]
        best: Optional[List[TargetFact]] = None
        for position, value in fixed:
            if position >= len(columns):
                return []
            bucket = self._column_bucket(columns, position, value)
            if best is None or len(bucket) < len(best):
                best = bucket
            if not best:
                return []
        assert best is not None
        return [
            fact for fact in best
            if all(self._pin_matches(fact[position], value) for position, value in fixed)
        ]

    @staticmethod
    def _column_bucket(columns: List[Dict[Any, List[TargetFact]]],
                       position: int, value: Any) -> List[TargetFact]:
        """The facts whose column ``position`` can match ``value``.

        A constant pin has two possible index keys — the constant term and
        its raw value — and a fact's entry is exactly one of them, so the
        concatenation is duplicate-free.
        """
        bucket = columns[position].get(value, [])
        if isinstance(value, Constant):
            raw = columns[position].get(value.value, [])
            if raw:
                bucket = bucket + raw
        return bucket

    @staticmethod
    def _pin_matches(entry: Any, value: Any) -> bool:
        if isinstance(value, Constant):
            return constant_matches(value, entry)
        return entry == value

    def relations(self) -> List[str]:
        return list(self._facts)

    def total_facts(self) -> int:
        return sum(len(facts) for facts in self._facts.values())

    def __contains__(self, relation: str) -> bool:
        return relation in self._facts


def constant_matches(constant: Constant, target_entry: Any) -> bool:
    """True if a source constant may map onto ``target_entry``.

    A constant maps to itself: the target entry must be the same constant,
    or (for database targets, whose entries are raw values) the raw value
    equal to the constant's value.
    """
    if isinstance(target_entry, Constant):
        return target_entry == constant
    return target_entry == constant.value


class HomomorphismProblem:
    """A fully specified homomorphism search problem."""

    def __init__(self, source_atoms: Sequence[Any], target: TargetIndex,
                 required: Optional[Mapping[Variable, Any]] = None):
        self.source_atoms = list(source_atoms)
        self.target = target
        self.required: Dict[Variable, Any] = dict(required or {})
        for variable in self.required:
            if not isinstance(variable, Variable):
                raise QueryError(
                    f"required bindings must be keyed by variables, got {variable!r}"
                )

    def source_variables(self) -> List[Variable]:
        """All distinct variables of the source atoms, in first-seen order."""
        seen: Dict[Variable, None] = {}
        for atom in self.source_atoms:
            for term in atom.terms:
                if isinstance(term, Variable):
                    seen.setdefault(term, None)
        return list(seen)

    def is_trivially_unsatisfiable(self) -> bool:
        """Quick check: some source relation has no target facts at all."""
        return any(atom.relation not in self.target for atom in self.source_atoms)
