"""Query-to-database homomorphisms (query evaluation).

A tuple ``a`` belongs to Q(B) iff there is a homomorphism from Q to the
database B whose image of the summary row is ``a`` (Section 2 of the
paper).  The helpers here build the homomorphism problem whose target facts
are the rows of a :class:`~repro.relational.database.Database` and collect
summary-row images.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Optional, Sequence, Set, Tuple

from repro.homomorphism.problem import HomomorphismProblem, TargetIndex
from repro.homomorphism.search import find_homomorphism, iter_homomorphisms
from repro.relational.database import Database
from repro.terms.term import Constant, Term, Variable

Assignment = Dict[Variable, Any]


def database_target_index(database: Database) -> TargetIndex:
    """Index every row of every relation of the database for the search."""
    index = TargetIndex()
    for relation in database:
        for row in relation:
            index.add(relation.name, row)
    return index


def _materialise_summary(entry: Term, assignment: Assignment) -> Any:
    """Value of one summary-row entry under an assignment."""
    if isinstance(entry, Constant):
        return entry.value
    return assignment.get(entry)


def iter_database_homomorphisms(atoms: Sequence[Any], database: Database,
                                required: Optional[Dict[Variable, Any]] = None,
                                index: Optional[TargetIndex] = None) -> Iterator[Assignment]:
    """Iterate over all homomorphisms from the atoms into the database."""
    target = index if index is not None else database_target_index(database)
    problem = HomomorphismProblem(atoms, target, required=required)
    yield from iter_homomorphisms(problem)


def find_database_homomorphism(atoms: Sequence[Any], database: Database,
                               required: Optional[Dict[Variable, Any]] = None,
                               index: Optional[TargetIndex] = None) -> Optional[Assignment]:
    """One homomorphism from the atoms into the database, or ``None``."""
    target = index if index is not None else database_target_index(database)
    problem = HomomorphismProblem(atoms, target, required=required)
    return find_homomorphism(problem)


def evaluate_atoms(atoms: Sequence[Any], summary_row: Sequence[Term],
                   database: Database,
                   index: Optional[TargetIndex] = None) -> Set[Tuple[Any, ...]]:
    """The answer relation: all images of the summary row.

    Constants in the summary row contribute their raw values, matching the
    convention that Q(B)'s entries are domain values, not terms.
    """
    target = index if index is not None else database_target_index(database)
    problem = HomomorphismProblem(atoms, target)
    answers: Set[Tuple[Any, ...]] = set()
    for assignment in iter_homomorphisms(problem):
        answers.add(tuple(_materialise_summary(entry, assignment) for entry in summary_row))
    return answers


def answers_contain(atoms: Sequence[Any], summary_row: Sequence[Term],
                    database: Database, row: Sequence[Any]) -> bool:
    """True if ``row`` belongs to the answer of the query over the database.

    This is the membership form used by the finite-containment sampler: it
    pins the summary row to the candidate answer and asks for a single
    homomorphism rather than enumerating the full answer relation.
    """
    values = tuple(row)
    if len(values) != len(summary_row):
        return False
    required: Dict[Variable, Any] = {}
    for entry, value in zip(summary_row, values):
        if isinstance(entry, Constant):
            if entry.value != value:
                return False
            continue
        existing = required.get(entry)
        if existing is not None and existing != value:
            return False
        required[entry] = value
    return find_database_homomorphism(atoms, database, required=required) is not None
