"""Backtracking homomorphism search with adaptive ordering.

The search maps source atoms onto target facts one atom at a time,
maintaining a partial variable assignment.  At every step it picks the
*most constrained* unmapped atom — the one with the fewest candidate
target facts given the bindings made so far — which is the classic
fail-first heuristic and makes the (NP-hard in general) search fast on the
structured instances produced by chases and benchmarks.

Candidate sets are computed once per atom — seeded from the target's
per-column indexes using the atom's constants and any pre-bound
variables — and then *narrowed* monotonically as variables become bound
(forward checking): binding a variable filters only the candidate lists
of the unmapped atoms that mention it, and a branch is abandoned as soon
as any unmapped atom has no candidates left.  The seed implementation
recomputed every atom's candidates from scratch at every node of the
search tree; the narrowing strategy visits the same nodes in the same
order but does strictly less work per node.

Solutions are reported as plain ``dict`` objects mapping source variables
to target entries.  Constants are never included in the mapping; they are
checked against the target facts during matching.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.homomorphism.problem import HomomorphismProblem, TargetIndex, constant_matches
from repro.obs import probe as _probe
from repro.obs.tracing import maybe_span
from repro.terms.term import Constant, Variable

Assignment = Dict[Variable, Any]


def _initial_candidates(atom: Any, target: TargetIndex,
                        assignment: Assignment) -> List[Tuple[Any, ...]]:
    """Candidate target facts for one atom under the initial assignment.

    Pins both the atom's constant positions and its already-bound
    variables, so the per-column indexes narrow the fact list before any
    per-fact matching happens.
    """
    pins = []
    for position, term in enumerate(atom.terms):
        if isinstance(term, Constant):
            pins.append((position, term))
        elif isinstance(term, Variable) and term in assignment:
            pins.append((position, assignment[term]))
    candidates = target.candidates(atom.relation, pins)
    return [fact for fact in candidates if _matches(atom, fact, assignment) is not None]


def _matches(atom: Any, fact: Sequence[Any], assignment: Assignment) -> Optional[Assignment]:
    """Try to map ``atom`` onto ``fact`` consistently with ``assignment``.

    Returns the new bindings introduced (possibly empty) or ``None`` if the
    atom cannot be mapped onto the fact.
    """
    if len(atom.terms) != len(fact):
        return None
    new_bindings: Assignment = {}
    for term, target_entry in zip(atom.terms, fact):
        if isinstance(term, Constant):
            if not constant_matches(term, target_entry):
                return None
            continue
        bound = assignment.get(term, new_bindings.get(term, _UNBOUND))
        if bound is _UNBOUND:
            new_bindings[term] = target_entry
        elif bound != target_entry:
            return None
    return new_bindings


class _Unbound:
    __slots__ = ()


_UNBOUND = _Unbound()


def iter_homomorphisms(problem: HomomorphismProblem) -> Iterator[Assignment]:
    """Yield every homomorphism solving ``problem``.

    The same variable assignment may be reachable through different
    atom-to-fact mappings; duplicates (as assignments) are suppressed.
    """
    probe = _probe.ACTIVE
    if probe is None:
        return _iter_homomorphisms(problem)
    return _iter_counted(probe, problem)


def _iter_counted(probe, problem: HomomorphismProblem) -> Iterator[Assignment]:
    """Report one search (and its solution count) to the probe.

    The report fires when the generator is exhausted *or* closed — an
    early-exiting consumer (``find_homomorphism`` takes one solution)
    still counts, via the ``finally`` running on generator close.
    """
    found = 0
    try:
        for assignment in _iter_homomorphisms(problem):
            found += 1
            yield assignment
    finally:
        probe.homomorphism(len(problem.source_atoms), found)


def _iter_homomorphisms(problem: HomomorphismProblem) -> Iterator[Assignment]:
    if problem.is_trivially_unsatisfiable():
        return
    atoms = list(problem.source_atoms)
    atom_variables = [
        frozenset(term for term in atom.terms if isinstance(term, Variable))
        for atom in atoms
    ]
    seen: set = set()
    initial: Assignment = dict(problem.required)
    candidates: Dict[int, List[Tuple[Any, ...]]] = {
        index: _initial_candidates(atom, problem.target, initial)
        for index, atom in enumerate(atoms)
    }

    def backtrack(remaining: List[int], assignment: Assignment,
                  candidates: Dict[int, List[Tuple[Any, ...]]]) -> Iterator[Assignment]:
        if not remaining:
            frozen = frozenset(assignment.items())
            if frozen not in seen:
                seen.add(frozen)
                yield dict(assignment)
            return
        # Most-constrained-atom ordering (fail-first heuristic).
        chosen = min(remaining, key=lambda index: (len(candidates[index]), index))
        if not candidates[chosen]:
            return
        rest = [index for index in remaining if index != chosen]
        atom = atoms[chosen]
        for fact in candidates[chosen]:
            new_bindings = _matches(atom, fact, assignment)
            if new_bindings is None:
                continue
            assignment.update(new_bindings)
            # Forward checking: narrow only the unmapped atoms that mention
            # a newly bound variable; fail fast when one runs dry.
            narrowed = candidates
            viable = True
            if new_bindings:
                bound = new_bindings.keys()
                narrowed = dict(candidates)
                for index in rest:
                    if atom_variables[index].isdisjoint(bound):
                        continue
                    narrowed[index] = [
                        candidate for candidate in candidates[index]
                        if _matches(atoms[index], candidate, assignment) is not None
                    ]
                    if not narrowed[index]:
                        viable = False
                        break
            if viable:
                yield from backtrack(rest, assignment, narrowed)
            for variable in new_bindings:
                del assignment[variable]

    yield from backtrack(list(range(len(atoms))), initial, candidates)


def find_homomorphism(problem: HomomorphismProblem) -> Optional[Assignment]:
    """Return one homomorphism, or ``None`` if none exists."""
    with maybe_span("homomorphism.search",
                    atoms=len(problem.source_atoms)) as span:
        for assignment in iter_homomorphisms(problem):
            if span is not None:
                span.tags["found"] = True
            return assignment
        if span is not None:
            span.tags["found"] = False
        return None


def has_homomorphism(problem: HomomorphismProblem) -> bool:
    """True if at least one homomorphism exists."""
    return find_homomorphism(problem) is not None


def count_homomorphisms(problem: HomomorphismProblem, limit: Optional[int] = None) -> int:
    """Count homomorphisms (up to ``limit`` if given)."""
    count = 0
    for _ in iter_homomorphisms(problem):
        count += 1
        if limit is not None and count >= limit:
            break
    return count


def homomorphism_images(problem: HomomorphismProblem,
                        row: Sequence[Any]) -> List[Tuple[Any, ...]]:
    """Images of ``row`` under every homomorphism of ``problem``.

    ``row`` entries are terms; constants map to themselves (as raw values
    when the target holds raw values, handled by the caller), variables map
    to their assigned target entries.  This is the primitive behind query
    evaluation: the answer relation is the set of images of the summary
    row.
    """
    images: List[Tuple[Any, ...]] = []
    seen: set = set()
    for assignment in iter_homomorphisms(problem):
        image = tuple(
            assignment.get(entry, entry) if isinstance(entry, Variable) else entry
            for entry in row
        )
        if image not in seen:
            seen.add(image)
            images.append(image)
    return images
