"""Backtracking homomorphism search.

The search maps source atoms onto target facts one atom at a time,
maintaining a partial variable assignment.  At every step it picks the
*most constrained* unmapped atom — the one with the fewest candidate
target facts given the bindings made so far — which is the classic
fail-first heuristic and makes the (NP-hard in general) search fast on the
structured instances produced by chases and benchmarks.

Solutions are reported as plain ``dict`` objects mapping source variables
to target entries.  Constants are never included in the mapping; they are
checked against the target facts during matching.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.homomorphism.problem import HomomorphismProblem, TargetIndex, constant_matches
from repro.terms.term import Constant, Variable

Assignment = Dict[Variable, Any]


def _fact_candidates(atom: Any, target: TargetIndex, assignment: Assignment) -> List[Tuple[Any, ...]]:
    """Candidate target facts for one atom under the current assignment."""
    pins = []
    for position, term in enumerate(atom.terms):
        if isinstance(term, Variable) and term in assignment:
            pins.append((position, assignment[term]))
    candidates = target.candidates(atom.relation, pins)
    return [fact for fact in candidates if _matches(atom, fact, assignment) is not None]


def _matches(atom: Any, fact: Sequence[Any], assignment: Assignment) -> Optional[Assignment]:
    """Try to map ``atom`` onto ``fact`` consistently with ``assignment``.

    Returns the new bindings introduced (possibly empty) or ``None`` if the
    atom cannot be mapped onto the fact.
    """
    if len(atom.terms) != len(fact):
        return None
    new_bindings: Assignment = {}
    for term, target_entry in zip(atom.terms, fact):
        if isinstance(term, Constant):
            if not constant_matches(term, target_entry):
                return None
            continue
        bound = assignment.get(term, new_bindings.get(term, _UNBOUND))
        if bound is _UNBOUND:
            new_bindings[term] = target_entry
        elif bound != target_entry:
            return None
    return new_bindings


class _Unbound:
    __slots__ = ()


_UNBOUND = _Unbound()


def iter_homomorphisms(problem: HomomorphismProblem) -> Iterator[Assignment]:
    """Yield every homomorphism solving ``problem``.

    The same variable assignment may be reachable through different
    atom-to-fact mappings; duplicates (as assignments) are suppressed.
    """
    if problem.is_trivially_unsatisfiable():
        return
    atoms = list(problem.source_atoms)
    seen: set = set()
    initial: Assignment = dict(problem.required)

    def backtrack(remaining: List[Any], assignment: Assignment) -> Iterator[Assignment]:
        if not remaining:
            frozen = frozenset(assignment.items())
            if frozen not in seen:
                seen.add(frozen)
                yield dict(assignment)
            return
        # Most-constrained-atom ordering (fail-first heuristic).
        scored = [
            (len(_fact_candidates(atom, problem.target, assignment)), index, atom)
            for index, atom in enumerate(remaining)
        ]
        count, index, atom = min(scored, key=lambda item: (item[0], item[1]))
        if count == 0:
            return
        rest = remaining[:index] + remaining[index + 1:]
        for fact in _fact_candidates(atom, problem.target, assignment):
            new_bindings = _matches(atom, fact, assignment)
            if new_bindings is None:
                continue
            assignment.update(new_bindings)
            yield from backtrack(rest, assignment)
            for variable in new_bindings:
                del assignment[variable]

    yield from backtrack(atoms, initial)


def find_homomorphism(problem: HomomorphismProblem) -> Optional[Assignment]:
    """Return one homomorphism, or ``None`` if none exists."""
    for assignment in iter_homomorphisms(problem):
        return assignment
    return None


def has_homomorphism(problem: HomomorphismProblem) -> bool:
    """True if at least one homomorphism exists."""
    return find_homomorphism(problem) is not None


def count_homomorphisms(problem: HomomorphismProblem, limit: Optional[int] = None) -> int:
    """Count homomorphisms (up to ``limit`` if given)."""
    count = 0
    for _ in iter_homomorphisms(problem):
        count += 1
        if limit is not None and count >= limit:
            break
    return count


def homomorphism_images(problem: HomomorphismProblem,
                        row: Sequence[Any]) -> List[Tuple[Any, ...]]:
    """Images of ``row`` under every homomorphism of ``problem``.

    ``row`` entries are terms; constants map to themselves (as raw values
    when the target holds raw values, handled by the caller), variables map
    to their assigned target entries.  This is the primitive behind query
    evaluation: the answer relation is the set of images of the summary
    row.
    """
    images: List[Tuple[Any, ...]] = []
    seen: set = set()
    for assignment in iter_homomorphisms(problem):
        image = tuple(
            assignment.get(entry, entry) if isinstance(entry, Variable) else entry
            for entry in row
        )
        if image not in seen:
            seen.add(image)
            images.append(image)
    return images
