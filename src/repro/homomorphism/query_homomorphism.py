"""Query-to-query homomorphisms (containment mappings).

A *query homomorphism* from Q' to Q (Section 3 of the paper) is a map of
the symbols of Q' to the symbols of Q that leaves constants fixed, induces
a well-defined map from the conjuncts of Q' to the conjuncts of Q, and
sends the summary row of Q' to the summary row of Q.  With no
dependencies, ``Q ⊆ Q'`` holds iff such a homomorphism exists (Chandra &
Merlin); under dependencies the target becomes the chase of Q, but the
homomorphism notion is exactly the same, so the chase and containment
packages reuse these helpers by passing in the chase's conjuncts and
summary row.

These functions accept *atom-like* targets: any iterable of objects with
``relation`` and ``terms`` plus a summary row of terms.  They therefore do
not import the chase package.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, Optional, Sequence

from repro.homomorphism.problem import HomomorphismProblem, TargetIndex, constant_matches
from repro.homomorphism.search import find_homomorphism, iter_homomorphisms
from repro.terms.term import Constant, Term, Variable

Assignment = Dict[Variable, Any]


def _summary_bindings(source_summary: Sequence[Term],
                      target_summary: Sequence[Term]) -> Optional[Dict[Variable, Term]]:
    """Required bindings forcing the summary row to map componentwise.

    Returns ``None`` when the summary rows cannot be matched at all (for
    example a constant in the source facing a different constant in the
    target), in which case no homomorphism exists.
    """
    if len(source_summary) != len(target_summary):
        return None
    required: Dict[Variable, Term] = {}
    for source_entry, target_entry in zip(source_summary, target_summary):
        if isinstance(source_entry, Constant):
            if not constant_matches(source_entry, target_entry):
                return None
            continue
        existing = required.get(source_entry)
        if existing is not None and existing != target_entry:
            return None
        required[source_entry] = target_entry
    return required


def build_target_index(atoms: Iterable[Any]) -> TargetIndex:
    """Index the terms of atom-like objects for the search engine."""
    index = TargetIndex()
    for atom in atoms:
        index.add(atom.relation, tuple(atom.terms))
    return index


def find_query_homomorphism(source_atoms: Sequence[Any],
                            source_summary: Sequence[Term],
                            target_atoms: Iterable[Any],
                            target_summary: Sequence[Term],
                            target_index: Optional[TargetIndex] = None) -> Optional[Assignment]:
    """Find a homomorphism from the source query onto the target query.

    Parameters mirror the paper's definition: conjuncts plus summary row on
    each side.  A prebuilt ``target_index`` may be supplied when many
    source queries are tested against the same (large) target, e.g. a
    partially constructed chase.
    """
    required = _summary_bindings(source_summary, target_summary)
    if required is None:
        return None
    index = target_index if target_index is not None else build_target_index(target_atoms)
    problem = HomomorphismProblem(source_atoms, index, required=required)
    return find_homomorphism(problem)


def iter_query_homomorphisms(source_atoms: Sequence[Any],
                             source_summary: Sequence[Term],
                             target_atoms: Iterable[Any],
                             target_summary: Sequence[Term]) -> Iterator[Assignment]:
    """Iterate over all homomorphisms from the source onto the target query."""
    required = _summary_bindings(source_summary, target_summary)
    if required is None:
        return
    index = build_target_index(target_atoms)
    problem = HomomorphismProblem(source_atoms, index, required=required)
    yield from iter_homomorphisms(problem)


def has_query_homomorphism(source_atoms: Sequence[Any],
                           source_summary: Sequence[Term],
                           target_atoms: Iterable[Any],
                           target_summary: Sequence[Term],
                           target_index: Optional[TargetIndex] = None) -> bool:
    """True if some homomorphism from the source onto the target exists."""
    return find_query_homomorphism(
        source_atoms, source_summary, target_atoms, target_summary, target_index
    ) is not None


def verify_query_homomorphism(mapping: Assignment,
                              source_atoms: Sequence[Any],
                              source_summary: Sequence[Term],
                              target_atoms: Iterable[Any],
                              target_summary: Sequence[Term]) -> bool:
    """Check (independently of the search) that ``mapping`` is a homomorphism.

    Used by the certificate machinery in the containment package and by
    property-based tests: whatever the search returns must pass this
    verifier.
    """
    target_facts: Dict[str, set] = {}
    for atom in target_atoms:
        target_facts.setdefault(atom.relation, set()).add(tuple(atom.terms))

    def image(term: Term) -> Any:
        if isinstance(term, Constant):
            return term
        if term not in mapping:
            return None
        return mapping[term]

    # Every source conjunct must land on a target fact of its relation.
    for atom in source_atoms:
        mapped = tuple(image(term) for term in atom.terms)
        if any(entry is None for entry in mapped):
            return False
        facts = target_facts.get(atom.relation, set())
        if mapped not in facts:
            # Constants may be stored differently (Constant vs raw value);
            # fall back to elementwise comparison.
            if not any(
                len(fact) == len(mapped) and all(
                    (constant_matches(m, f) if isinstance(m, Constant) else m == f)
                    for m, f in zip(mapped, fact)
                )
                for fact in facts
            ):
                return False
    # The summary row must map componentwise onto the target summary row.
    if len(source_summary) != len(target_summary):
        return False
    for source_entry, target_entry in zip(source_summary, target_summary):
        if isinstance(source_entry, Constant):
            if not constant_matches(source_entry, target_entry):
                return False
        elif image(source_entry) != target_entry:
            return False
    return True
