"""repro.obs — metrics, tracing, probes, and profiling for the solver stack.

The four pieces and how they meet the rest of the tree:

* :mod:`repro.obs.metrics` — the process-wide registry (counters,
  gauges, fixed-bucket histograms; Prometheus text + JSON snapshot).
* :mod:`repro.obs.tracing` — ``trace_id``/``span_id`` spans carried
  through the NDJSON protocol, a ring-buffer trace store, and the
  slow-op log.
* :mod:`repro.obs.probe` — the one-attribute-check hook the chase
  engines, homomorphism search, rewrite path, and solver report into;
  :class:`~repro.obs.probe.MetricsProbe` lands it all in the registry.
* :mod:`repro.obs.profiler` — a runtime-togglable sampling wall-clock
  profiler.

Everything is disabled-by-default at the library level: importing
``repro`` installs no probe, and untraced code pays one pointer or
contextvar read per instrumented site.  The service and fleet front
ends call :func:`ensure_default_probe` at construction — running a
server is opting into being observable.
"""

from __future__ import annotations

import os
import sys
from typing import Any, Dict, Optional

from repro.obs import probe as _probe
from repro.obs.clock import Stopwatch, monotonic, wall_time
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from repro.obs.probe import MetricsProbe, Probe, install, uninstall
from repro.obs.profiler import SamplingProfiler, get_profiler
from repro.obs.tracing import (
    SlowOpLog,
    Span,
    TraceStore,
    Tracer,
    current_span,
    get_tracer,
    maybe_span,
    new_span_id,
    new_trace_id,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsProbe",
    "MetricsRegistry",
    "Probe",
    "SamplingProfiler",
    "SlowOpLog",
    "Span",
    "Stopwatch",
    "TraceStore",
    "Tracer",
    "current_span",
    "ensure_default_probe",
    "get_profiler",
    "get_registry",
    "get_tracer",
    "health",
    "install",
    "install_default_observability",
    "maybe_span",
    "monotonic",
    "new_span_id",
    "new_trace_id",
    "uninstall",
    "wall_time",
]

_STARTED_AT = wall_time()
_STARTED_MONO = monotonic()


def ensure_default_probe() -> Probe:
    """Install a :class:`MetricsProbe` unless a probe is already active.

    Idempotent and cheap, so every service/coordinator constructor can
    call it; an explicitly installed custom probe is never displaced.
    """
    probe = _probe.ACTIVE
    if probe is None:
        probe = install(MetricsProbe())
    return probe


def install_default_observability(
        slow_op_threshold_s: Optional[float] = None) -> Probe:
    """One-call setup for serving processes: probe on, slow-op log armed."""
    probe = ensure_default_probe()
    if slow_op_threshold_s is not None:
        get_tracer().slow_log.threshold_s = slow_op_threshold_s
    return probe


def health() -> Dict[str, Any]:
    """The ``obs.health`` body: process identity plus obs subsystem state."""
    tracer = get_tracer()
    profiler = get_profiler()
    return {
        "pid": os.getpid(),
        "python": sys.version.split()[0],
        "started_at": round(_STARTED_AT, 3),
        "uptime_s": round(monotonic() - _STARTED_MONO, 3),
        "probe": type(_probe.ACTIVE).__name__ if _probe.ACTIVE else None,
        "tracer": {
            "enabled": tracer.enabled,
            "traces_stored": len(tracer.store),
            "slow_op_threshold_s": tracer.slow_log.threshold_s,
            "max_spans_per_trace": tracer.max_spans_per_trace,
        },
        "profiler": {
            "running": profiler.running,
            "interval_s": profiler.interval_s,
        },
        "metrics_families": len(get_registry().names()),
    }
