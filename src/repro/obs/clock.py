"""Timing primitives for the observability layer.

Every timestamp in ``src/repro`` flows through these two helpers:

* :func:`wall_time` — epoch seconds, for *labelling* events (span start
  times, persistent-cache rows, log entries).  This is the one sanctioned
  call site of ``time.time()`` in the tree; CI greps for strays.
* :func:`monotonic` — a monotonic high-resolution clock, for *measuring*
  durations.  Wall clocks step (NTP, suspend/resume), so a duration
  computed from two wall readings can come out negative; a service that
  reports negative latencies poisons every histogram downstream.

:class:`Stopwatch` wraps the measuring side for call sites that want an
object instead of two reads.
"""

from __future__ import annotations

import time

__all__ = ["wall_time", "monotonic", "Stopwatch"]


def wall_time() -> float:
    """Epoch seconds — for labelling events, never for durations."""
    return time.time()


def monotonic() -> float:
    """Monotonic seconds — for measuring durations."""
    return time.perf_counter()


class Stopwatch:
    """A started stopwatch; read :attr:`elapsed_s` as often as needed."""

    __slots__ = ("started",)

    def __init__(self) -> None:
        self.started = monotonic()

    @property
    def elapsed_s(self) -> float:
        return monotonic() - self.started

    def restart(self) -> float:
        """Reset the start point, returning the lap just completed."""
        now = monotonic()
        lap = now - self.started
        self.started = now
        return lap
