"""A sampling wall-clock profiler togglable at runtime.

A background daemon thread wakes every ``interval_s`` and records the
top frame of every other thread via ``sys._current_frames()`` — the
classic py-spy-style statistical profile, in-process and dependency
free.  Aggregation is by ``(file, line, function)``, so the hottest
lines of a live service surface without restarting it: toggle it on
over the wire (``obs.profile`` with ``action: "start"``), let traffic
run, and read ``action: "top"``.

Sampling overhead is proportional to thread count × rate (default 200
samples/s), independent of what the sampled code does; the profiler
never touches the solver hot path at all when stopped.
"""

from __future__ import annotations

import sys
import threading
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.clock import monotonic

__all__ = ["SamplingProfiler", "get_profiler"]

_Site = Tuple[str, int, str]


class SamplingProfiler:
    """Start/stop-able statistical profiler over ``sys._current_frames``."""

    def __init__(self, interval_s: float = 0.005, max_sites: int = 8192):
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s}")
        self.interval_s = interval_s
        self._max_sites = max_sites
        self._lock = threading.Lock()
        self._counts: Dict[_Site, int] = {}
        self._samples = 0
        self._started_at: Optional[float] = None
        self._active_s = 0.0
        self._stop_event = threading.Event()
        self._thread: Optional[threading.Thread] = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self, interval_s: Optional[float] = None) -> bool:
        """Begin sampling; returns False if already running."""
        with self._lock:
            if self.running:
                return False
            if interval_s is not None:
                if interval_s <= 0:
                    raise ValueError(
                        f"interval_s must be positive, got {interval_s}")
                self.interval_s = interval_s
            self._stop_event.clear()
            self._started_at = monotonic()
            self._thread = threading.Thread(
                target=self._sample_loop, name="repro-obs-profiler", daemon=True)
            self._thread.start()
            return True

    def stop(self) -> bool:
        """Stop sampling; returns False if it was not running."""
        with self._lock:
            thread = self._thread
            if thread is None:
                return False
            self._stop_event.set()
            self._thread = None
            if self._started_at is not None:
                self._active_s += monotonic() - self._started_at
                self._started_at = None
        thread.join(timeout=5)
        return True

    def reset(self) -> None:
        with self._lock:
            self._counts.clear()
            self._samples = 0
            self._active_s = 0.0
            if self._started_at is not None:
                self._started_at = monotonic()

    def _sample_loop(self) -> None:
        own_id = threading.get_ident()
        while not self._stop_event.wait(self.interval_s):
            frames = sys._current_frames()
            with self._lock:
                self._samples += 1
                for thread_id, frame in frames.items():
                    if thread_id == own_id:
                        continue
                    site = (frame.f_code.co_filename, frame.f_lineno,
                            frame.f_code.co_name)
                    self._counts[site] = self._counts.get(site, 0) + 1
                if len(self._counts) > self._max_sites:
                    # Keep the hot half; the cold tail is noise by definition.
                    kept = sorted(self._counts.items(), key=lambda kv: -kv[1])
                    self._counts = dict(kept[: self._max_sites // 2])

    def top(self, limit: int = 20) -> Dict[str, Any]:
        """The hottest sites, with sample counts and share of all samples."""
        with self._lock:
            total = sum(self._counts.values())
            sites = sorted(self._counts.items(), key=lambda kv: (-kv[1], kv[0]))
            samples = self._samples
            active_s = self._active_s
            if self._started_at is not None:
                active_s += monotonic() - self._started_at
        rows: List[Dict[str, Any]] = [
            {"site": f"{path}:{line}", "function": function, "samples": count,
             "share": round(count / total, 4) if total else 0.0}
            for (path, line, function), count in sites[: max(0, limit)]
        ]
        return {"running": self.running, "interval_s": self.interval_s,
                "samples": samples, "threads_sampled": total,
                "active_s": round(active_s, 3), "sites": rows}


_PROFILER = SamplingProfiler()


def get_profiler() -> SamplingProfiler:
    """The process-wide profiler the ``obs.profile`` op controls."""
    return _PROFILER
