"""The engine instrumentation hook: a probe the hot paths report into.

:class:`Probe` is both the interface and the no-op base.  The chase
engines, the homomorphism search, the rewrite path, and the solver's
request surface each call the **module-global** :data:`ACTIVE` probe —
guarded by a single ``is None`` attribute check, so an uninstrumented
process pays one pointer read per reporting site and nothing else.

The default :class:`MetricsProbe` folds the engines' existing
statistics objects (:class:`~repro.chase.engine.ChaseStatistics`,
solver response fields) into the process metrics registry rather than
keeping parallel counters: the engines keep reporting what they always
reported, and the probe is the one place that translation lives.
Probes receive *end-of-run* summaries, never per-trigger callbacks —
the grain at which reporting cannot distort what it measures.

This module deliberately imports nothing from ``repro.chase`` or
``repro.api``: statistics objects arrive duck-typed, which keeps the
dependency arrow pointing from the engines *into* obs and never back.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.obs.metrics import (
    DEFAULT_SIZE_BUCKETS,
    MetricsRegistry,
    get_registry,
)

__all__ = ["Probe", "MetricsProbe", "ACTIVE", "active", "install", "uninstall"]


class Probe:
    """No-op base; override any subset of the reporting hooks."""

    def request(self, op: str, elapsed_s: float,
                cache_hit: Optional[bool]) -> None:
        """One solver request finished (containment/chase/optimize/rewrite)."""

    def chase(self, engine: str, elapsed_s: float, statistics: Any,
              conjuncts: int, saturated: bool, failed: bool) -> None:
        """One chase run finished; ``statistics`` is its ChaseStatistics."""

    def homomorphism(self, atoms: int, found: int) -> None:
        """One homomorphism search was exhausted or abandoned."""

    def rewrite(self, candidates_tried: int, certified: int,
                images: int, views_pruned: int = 0,
                candidates_skipped_unsafe: int = 0,
                candidates_deduped: int = 0) -> None:
        """One chase & backchase rewrite search finished.

        The last three arguments arrived with the staged rewriter
        pipeline (catalog-index view pruning, safety-check and dedup
        skips) and default to 0 so probes written against the original
        three-argument hook keep working.
        """


#: The installed probe, or ``None`` (the near-zero disabled state).
#: Reporting sites read this once per event: ``probe = ACTIVE`` /
#: ``if probe is not None: probe.chase(...)``.
ACTIVE: Optional[Probe] = None


def active() -> Optional[Probe]:
    return ACTIVE


def install(probe: Optional[Probe] = None) -> Probe:
    """Install (and return) a probe; default is a fresh :class:`MetricsProbe`."""
    global ACTIVE
    ACTIVE = probe if probe is not None else MetricsProbe()
    return ACTIVE


def uninstall() -> Optional[Probe]:
    """Remove the active probe, returning it (for later reinstall)."""
    global ACTIVE
    previous = ACTIVE
    ACTIVE = None
    return previous


class MetricsProbe(Probe):
    """The standard probe: every hook lands in the metrics registry."""

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        registry = registry if registry is not None else get_registry()
        self.registry = registry
        self._requests = registry.counter(
            "repro_requests_total",
            "Solver requests by operation and cache outcome.",
            labels=("op", "cache_hit"))
        self._request_seconds = registry.histogram(
            "repro_request_seconds",
            "Solver request latency by operation.",
            labels=("op",))
        self._chase_runs = registry.counter(
            "repro_chase_runs_total",
            "Chase executions by engine and outcome.",
            labels=("engine", "outcome"))
        self._chase_seconds = registry.histogram(
            "repro_chase_seconds",
            "Chase wall-clock seconds by engine.",
            labels=("engine",))
        self._chase_conjuncts = registry.histogram(
            "repro_chase_conjuncts",
            "Live conjuncts per finished chase.",
            labels=(), buckets=DEFAULT_SIZE_BUCKETS)
        self._chase_steps = registry.counter(
            "repro_chase_steps_total",
            "Chase rule applications by kind (redundant ones included).",
            labels=("kind",))
        self._triggers = registry.counter(
            "repro_chase_triggers_examined_total",
            "Candidate triggers inspected across all chases.")
        self._index_hits = registry.counter(
            "repro_chase_index_hits_total",
            "Chase lookups answered by a persistent index.")
        self._delta_matches = registry.counter(
            "repro_chase_delta_seeded_matches_total",
            "Embedded-rule body matches discovered from the delta log.")
        self._trigger_cache_hits = registry.counter(
            "repro_chase_trigger_cache_hits_total",
            "Trigger re-derivations avoided by the semi-naive caches.")
        self._tgd_batches = registry.counter(
            "repro_chase_tgd_batches_total",
            "Selection rounds that queued extra commuting TGD triggers.")
        self._batched_triggers = registry.counter(
            "repro_chase_batched_tgd_triggers_total",
            "TGD triggers applied straight off a commuting batch queue.")
        self._interned_terms = registry.counter(
            "repro_chase_interned_terms_total",
            "Terms interned into dense ids by the columnar engine.")
        self._union_find_unions = registry.counter(
            "repro_chase_union_find_unions_total",
            "EGD/FD merges recorded in the columnar union-find.")
        self._union_find_finds = registry.counter(
            "repro_chase_union_find_finds_total",
            "Canonical-id lookups served by the columnar union-find.")
        self._column_probes = registry.counter(
            "repro_chase_column_probes_total",
            "Per-column posting-list probes during columnar merges.")
        self._hom_searches = registry.counter(
            "repro_homomorphism_searches_total",
            "Homomorphism searches by whether a solution was found.",
            labels=("found",))
        self._rewrite_candidates = registry.counter(
            "repro_rewrite_candidates_total",
            "Rewrite candidates certified or refuted.")
        self._rewrite_certified = registry.counter(
            "repro_rewrite_certified_total",
            "Rewrite candidates that certified equivalent.")
        self._rewrite_views_pruned = registry.counter(
            "repro_rewrite_views_pruned_total",
            "Catalog views the rewriter's signature index pruned before "
            "any homomorphism search.")
        self._rewrite_unsafe = registry.counter(
            "repro_rewrite_candidates_unsafe_total",
            "Rewrite candidates skipped by the head-variable safety check.")
        self._rewrite_deduped = registry.counter(
            "repro_rewrite_candidates_deduped_total",
            "Rewrite candidates swallowed by the dedup set.")
        # Hot-path children: label resolution is paid once here (or on
        # first sight of a new label combination), not per event — the
        # probe rides inside every chase and request (benchmark E20).
        self._request_children: dict = {}
        self._chase_children: dict = {}
        self._chase_conjuncts_series = self._chase_conjuncts.labels()
        self._step_children = {
            kind: self._chase_steps.labels(kind=kind)
            for kind in ("fd", "egd", "ind", "tgd", "merged")}
        self._triggers_series = self._triggers.labels()
        self._index_hits_series = self._index_hits.labels()
        self._delta_matches_series = self._delta_matches.labels()
        self._trigger_cache_hits_series = self._trigger_cache_hits.labels()
        self._tgd_batches_series = self._tgd_batches.labels()
        self._batched_triggers_series = self._batched_triggers.labels()
        self._interned_terms_series = self._interned_terms.labels()
        self._union_find_unions_series = self._union_find_unions.labels()
        self._union_find_finds_series = self._union_find_finds.labels()
        self._column_probes_series = self._column_probes.labels()
        self._hom_children = {
            found: self._hom_searches.labels(found=found)
            for found in ("true", "false")}
        self._rewrite_candidates_series = self._rewrite_candidates.labels()
        self._rewrite_certified_series = self._rewrite_certified.labels()
        self._rewrite_views_pruned_series = self._rewrite_views_pruned.labels()
        self._rewrite_unsafe_series = self._rewrite_unsafe.labels()
        self._rewrite_deduped_series = self._rewrite_deduped.labels()

    def request(self, op: str, elapsed_s: float,
                cache_hit: Optional[bool]) -> None:
        hit = {True: "true", False: "false"}.get(cache_hit, "n/a")
        children = self._request_children.get((op, hit))
        if children is None:
            children = self._request_children[(op, hit)] = (
                self._requests.labels(op=op, cache_hit=hit),
                self._request_seconds.labels(op=op))
        children[0].inc()
        children[1].observe(elapsed_s)

    def chase(self, engine: str, elapsed_s: float, statistics: Any,
              conjuncts: int, saturated: bool, failed: bool) -> None:
        outcome = ("failed" if failed
                   else "saturated" if saturated else "truncated")
        children = self._chase_children.get((engine, outcome))
        if children is None:
            children = self._chase_children[(engine, outcome)] = (
                self._chase_runs.labels(engine=engine, outcome=outcome),
                self._chase_seconds.labels(engine=engine))
        children[0].inc()
        children[1].observe(elapsed_s)
        self._chase_conjuncts_series.observe(conjuncts)
        steps = self._step_children
        for kind, amount in (
                ("fd", statistics.fd_steps),
                ("egd", statistics.egd_steps),
                ("ind", statistics.ind_applications),
                ("tgd", statistics.tgd_applications),
                ("merged", statistics.merged_conjuncts)):
            if amount:
                steps[kind].inc(amount)
        if statistics.triggers_examined:
            self._triggers_series.inc(statistics.triggers_examined)
        if statistics.index_hits:
            self._index_hits_series.inc(statistics.index_hits)
        if statistics.delta_seeded_matches:
            self._delta_matches_series.inc(statistics.delta_seeded_matches)
        if statistics.trigger_cache_hits:
            self._trigger_cache_hits_series.inc(statistics.trigger_cache_hits)
        if statistics.tgd_batches:
            self._tgd_batches_series.inc(statistics.tgd_batches)
        if statistics.batched_tgd_triggers:
            self._batched_triggers_series.inc(statistics.batched_tgd_triggers)
        if statistics.interned_terms:
            self._interned_terms_series.inc(statistics.interned_terms)
        if statistics.union_find_unions:
            self._union_find_unions_series.inc(statistics.union_find_unions)
        if statistics.union_find_finds:
            self._union_find_finds_series.inc(statistics.union_find_finds)
        if statistics.column_probes:
            self._column_probes_series.inc(statistics.column_probes)

    def homomorphism(self, atoms: int, found: int) -> None:
        self._hom_children["true" if found else "false"].inc()

    def rewrite(self, candidates_tried: int, certified: int,
                images: int, views_pruned: int = 0,
                candidates_skipped_unsafe: int = 0,
                candidates_deduped: int = 0) -> None:
        if candidates_tried:
            self._rewrite_candidates_series.inc(candidates_tried)
        if certified:
            self._rewrite_certified_series.inc(certified)
        if views_pruned:
            self._rewrite_views_pruned_series.inc(views_pruned)
        if candidates_skipped_unsafe:
            self._rewrite_unsafe_series.inc(candidates_skipped_unsafe)
        if candidates_deduped:
            self._rewrite_deduped_series.inc(candidates_deduped)
