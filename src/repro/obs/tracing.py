"""Span-based tracing with wire propagation and a ring-buffer store.

One **trace** is one request's journey: a ``trace_id`` minted where the
request is born (usually :class:`~repro.service.client.ServiceClient`)
and carried on the wire in the record's ``trace_context`` field::

    {"op": "contain", ..., "trace_context": {"id": "<trace_id>",
                                             "parent": "<span_id>",
                                             "collect": true}}

Each process that handles the request opens a **root span** adopted from
that context (:meth:`Tracer.start_trace`), and the code it runs opens
**child spans** for its phases (:func:`maybe_span`): parse, cache
lookup, termination analysis, chase, homomorphism search.  Finished
traces land in the process's :class:`TraceStore` ring buffer, queryable
via the ``obs.trace`` protocol op; a worker additionally returns its
serialized spans in the response envelope when the context asked to
``collect``, which is how a coordinator absorbs a node's spans into its
own store — one ``obs.trace`` lookup at the coordinator then shows the
whole cross-process tree.

The current span travels in a :mod:`contextvars` variable, so it is
isolated per thread *and* per asyncio task.  When no trace is active,
:func:`maybe_span` costs one context-variable read and returns a shared
null context — near-zero, which is what lets the chase hot path stay
instrumented unconditionally.

Outlier capture: a root span slower than the tracer's
``slow_op_threshold_s`` is copied — full span tree included — into the
:class:`SlowOpLog`, so "why was *that* request slow" is answerable after
the fact without re-running anything.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict, deque
from itertools import count
from contextvars import ContextVar
from typing import Any, Dict, List, Optional

from repro.obs.clock import monotonic, wall_time
from repro.obs.metrics import get_registry

__all__ = [
    "Span",
    "SlowOpLog",
    "TraceStore",
    "Tracer",
    "current_span",
    "get_tracer",
    "maybe_span",
    "new_span_id",
    "new_trace_id",
]


def new_trace_id() -> str:
    return os.urandom(16).hex()


# Span ids must be unique across every process whose spans can land in
# one store (a coordinator absorbs its nodes' spans, and the store
# deduplicates by span id) — but an ``os.urandom`` syscall per span is
# measurable on the chase hot path (benchmark E20).  A random per-process
# prefix plus a process-local counter gives the same 16-hex-char shape
# at the cost of one ``next()``.
_SPAN_ID_PREFIX = os.urandom(4).hex()
_SPAN_ID_COUNTER = count(1)


def _reseed_span_ids() -> None:
    # A forked worker inherits the parent's prefix *and* counter state;
    # without a fresh prefix two pool workers would mint identical ids.
    global _SPAN_ID_PREFIX, _SPAN_ID_COUNTER
    _SPAN_ID_PREFIX = os.urandom(4).hex()
    _SPAN_ID_COUNTER = count(1)


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_reseed_span_ids)


def new_span_id() -> str:
    return f"{_SPAN_ID_PREFIX}{next(_SPAN_ID_COUNTER) & 0xFFFFFFFF:08x}"


class Span:
    """One timed phase of one trace; children reference it by ``span_id``."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "start_s",
                 "duration_s", "tags", "_root", "_sink", "_dropped",
                 "_start_mono")

    def __init__(self, trace_id: str, span_id: str, parent_id: Optional[str],
                 name: str, tags: Optional[Dict[str, Any]] = None):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start_s = wall_time()
        self._start_mono = monotonic()
        self.duration_s: Optional[float] = None
        self.tags: Dict[str, Any] = tags if tags is not None else {}
        self._root: "Span" = self
        self._sink: Optional[List["Span"]] = None
        self._dropped = 0

    def finish(self) -> None:
        if self.duration_s is None:
            self.duration_s = monotonic() - self._start_mono

    def as_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_s": round(self.start_s, 6),
            "duration_s": (round(self.duration_s, 9)
                           if self.duration_s is not None else None),
            "tags": dict(self.tags),
        }


class _NullSpanContext:
    """The shared no-trace fast path: enters to ``None``, does nothing."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: Any) -> bool:
        return False


_NULL_SPAN_CONTEXT = _NullSpanContext()
_CURRENT: "ContextVar[Optional[Span]]" = ContextVar("repro_obs_span",
                                                    default=None)


def current_span() -> Optional[Span]:
    return _CURRENT.get()


class _SpanContext:
    """Context manager for one child span under an active trace."""

    __slots__ = ("_parent", "_name", "_tags", "_span", "_token")

    def __init__(self, parent: Span, name: str, tags: Dict[str, Any]):
        self._parent = parent
        self._name = name
        self._tags = tags

    def __enter__(self) -> Optional[Span]:
        root = self._parent._root
        span = Span(root.trace_id, new_span_id(), self._parent.span_id,
                    self._name, self._tags)
        span._root = root
        sink = root._sink
        if sink is not None and len(sink) < get_tracer().max_spans_per_trace:
            sink.append(span)
        else:
            root._dropped += 1
        self._span = span
        self._token = _CURRENT.set(span)
        return span

    def __exit__(self, *exc_info: Any) -> bool:
        _CURRENT.reset(self._token)
        self._span.finish()
        return False


def maybe_span(name: str, **tags: Any) -> Any:
    """A child span of the current trace, or a shared no-op when untraced.

    The only cost outside a trace is this contextvar read — the guard
    that keeps permanent instrumentation off the benchmarks' backs.
    """
    parent = _CURRENT.get()
    if parent is None:
        return _NULL_SPAN_CONTEXT
    return _SpanContext(parent, name, tags)


class _TraceContext:
    """Context manager for a root span (one process's view of a trace)."""

    __slots__ = ("_tracer", "_name", "_trace_id", "_parent_id", "_tags",
                 "_span", "_token")

    def __init__(self, tracer: "Tracer", name: str, trace_id: Optional[str],
                 parent_id: Optional[str], tags: Dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._trace_id = trace_id
        self._parent_id = parent_id
        self._tags = tags

    def __enter__(self) -> Span:
        span = Span(self._trace_id or new_trace_id(), new_span_id(),
                    self._parent_id, self._name, self._tags)
        span._sink = [span]
        self._span = span
        self._token = _CURRENT.set(span)
        return span

    def __exit__(self, *exc_info: Any) -> bool:
        _CURRENT.reset(self._token)
        self._span.finish()
        self._tracer._finish_trace(self._span)
        return False


class TraceStore:
    """A bounded, insertion-ordered map of finished traces.

    Spans arriving for a trace already present (a node's spans absorbed
    after the coordinator's own, a retried request reusing its id) are
    merged onto it; the oldest traces fall off the end.
    """

    def __init__(self, max_traces: int = 512):
        self._max_traces = max_traces
        self._lock = threading.Lock()
        self._traces: "OrderedDict[str, List[Dict[str, Any]]]" = OrderedDict()

    def record(self, trace_id: str, spans: List[Dict[str, Any]]) -> None:
        if not spans:
            return
        with self._lock:
            existing = self._traces.get(trace_id)
            if existing is None:
                self._traces[trace_id] = list(spans)
            else:
                known = {span.get("span_id") for span in existing}
                existing.extend(span for span in spans
                                if span.get("span_id") not in known)
            self._traces.move_to_end(trace_id)
            while len(self._traces) > self._max_traces:
                self._traces.popitem(last=False)

    def get(self, trace_id: str) -> Optional[List[Dict[str, Any]]]:
        with self._lock:
            spans = self._traces.get(trace_id)
            return list(spans) if spans is not None else None

    def recent(self, limit: int = 20) -> List[Dict[str, Any]]:
        """Newest-first summaries: trace id, root name, duration, span count."""
        with self._lock:
            items = list(self._traces.items())[-max(0, limit):]
        summaries = []
        for trace_id, spans in reversed(items):
            root = next((span for span in spans if not span.get("parent_id")),
                        spans[0] if spans else None)
            summaries.append({
                "trace_id": trace_id,
                "root": root.get("name") if root else None,
                "duration_s": root.get("duration_s") if root else None,
                "spans": len(spans),
            })
        return summaries

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()


class SlowOpLog:
    """The last ``max_entries`` root spans that crossed the threshold.

    ``threshold_s=None`` disables capture.  Each entry keeps the full
    span tree as it stood when the root finished, so the outlier's
    per-phase breakdown survives ring-buffer eviction in the store.
    """

    def __init__(self, threshold_s: Optional[float] = None,
                 max_entries: int = 64):
        self.threshold_s = threshold_s
        self._lock = threading.Lock()
        self._entries: "deque[Dict[str, Any]]" = deque(maxlen=max_entries)

    def offer(self, root: Span, spans: List[Dict[str, Any]]) -> None:
        threshold = self.threshold_s
        if (threshold is None or root.duration_s is None
                or root.duration_s < threshold):
            return
        entry = {
            "trace_id": root.trace_id,
            "name": root.name,
            "start_s": round(root.start_s, 6),
            "duration_s": round(root.duration_s, 9),
            "threshold_s": threshold,
            "spans": list(spans),
        }
        with self._lock:
            self._entries.append(entry)
        get_registry().counter(
            "repro_slow_ops_total",
            "Root spans that exceeded the slow-op threshold.",
            labels=("name",)).inc(name=root.name)

    def entries(self, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        with self._lock:
            entries = list(self._entries)
        entries.reverse()  # newest first
        return entries[:limit] if limit is not None else entries

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


class Tracer:
    """One process's tracing state: current-span plumbing, store, slow log."""

    def __init__(self, max_spans_per_trace: int = 512,
                 store: Optional[TraceStore] = None,
                 slow_log: Optional[SlowOpLog] = None):
        self.enabled = True
        self.max_spans_per_trace = max_spans_per_trace
        self.store = store if store is not None else TraceStore()
        self.slow_log = slow_log if slow_log is not None else SlowOpLog()

    def start_trace(self, name: str, trace_id: Optional[str] = None,
                    parent_id: Optional[str] = None,
                    **tags: Any) -> _TraceContext:
        """Open a root span (minting a trace id unless adopting one)."""
        return _TraceContext(self, name, trace_id, parent_id, tags)

    def _finish_trace(self, root: Span) -> None:
        sink = root._sink or [root]
        if root._dropped:
            root.tags["spans_dropped"] = root._dropped
        spans = [span.as_dict() for span in sink]
        self.store.record(root.trace_id, spans)
        self.slow_log.offer(root, spans)

    def absorb(self, trace_id: str, spans: List[Dict[str, Any]]) -> None:
        """Merge spans serialized by another process into this store."""
        self.store.record(trace_id, [span for span in spans
                                     if isinstance(span, dict)])


_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide tracer the service and fleet layers share."""
    return _TRACER
