"""A process-wide metrics registry: counters, gauges, histograms.

The shape follows the Prometheus client-library data model, cut down to
what the solver stack needs:

* three instrument kinds — :class:`Counter` (monotone), :class:`Gauge`
  (set/inc/dec), :class:`Histogram` (fixed buckets, cumulative counts,
  sum and count) — each a *family* keyed by a fixed tuple of label
  names, with one time series per distinct label-value combination;
* one :class:`MetricsRegistry` per process, exposed two ways —
  :meth:`~MetricsRegistry.render_prometheus` (text exposition format,
  scrapeable verbatim) and :meth:`~MetricsRegistry.snapshot` (a JSON
  document the ``obs.metrics`` protocol op returns).

All mutation goes through one registry lock, so thread-pooled shards and
``solve_many`` workers sharing a process cannot lose increments.
Process-pool shards each carry their *own* registry (a child process is
a new process); the service front end therefore answers ``obs.metrics``
from the process that serves it, which is the front end's.

Registering the same family twice returns the existing instrument (so
probes and services can be constructed repeatedly in one process), but a
kind or label-set mismatch on an existing name is a programming error
and raises.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ReproError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "get_registry",
]

#: Latency buckets (seconds): sub-millisecond cache hits through
#: multi-second saturating chases.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Size buckets (counts): conjuncts per chase, candidates per search.
DEFAULT_SIZE_BUCKETS: Tuple[float, ...] = (
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class MetricError(ReproError):
    """A metric was declared or used inconsistently."""


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class _Instrument:
    """One metric family: a name, a help string, fixed label names."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str,
                 label_names: Tuple[str, ...], lock: threading.RLock):
        self.name = name
        self.help_text = help_text
        self.label_names = label_names
        self._lock = lock
        self._series: Dict[Tuple[str, ...], Any] = {}

    def _key(self, labels: Dict[str, Any]) -> Tuple[str, ...]:
        # Hot path: a length check plus direct lookups.  (Building and
        # comparing label-name sets per observation doubled the cost of
        # every increment — see benchmark E20.)
        names = self.label_names
        if len(labels) != len(names):
            self._label_mismatch(labels)
        try:
            return tuple(str(labels[name]) for name in names)
        except KeyError:
            self._label_mismatch(labels)

    def _label_mismatch(self, labels: Dict[str, Any]) -> None:
        raise MetricError(
            f"metric {self.name!r} takes labels {self.label_names}, "
            f"got {tuple(sorted(labels))}")

    def _series_snapshot(self) -> List[Dict[str, Any]]:
        rows = []
        for key in sorted(self._series):
            rows.append({"labels": dict(zip(self.label_names, key)),
                         "value": self._series[key]})
        return rows

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {"kind": self.kind, "help": self.help_text,
                    "labels": list(self.label_names),
                    "series": self._series_snapshot()}

    def _label_suffix(self, key: Tuple[str, ...],
                      extra: Sequence[Tuple[str, str]] = ()) -> str:
        pairs = [f'{name}="{_escape_label_value(value)}"'
                 for name, value in zip(self.label_names, key)]
        pairs.extend(f'{name}="{_escape_label_value(value)}"'
                     for name, value in extra)
        return "{" + ",".join(pairs) + "}" if pairs else ""

    def render(self) -> List[str]:
        lines = [f"# HELP {self.name} {self.help_text}",
                 f"# TYPE {self.name} {self.kind}"]
        with self._lock:
            for key in sorted(self._series):
                lines.append(f"{self.name}{self._label_suffix(key)} "
                             f"{_format_value(self._series[key])}")
        return lines


class _BoundCounter:
    """A counter pre-resolved to one label combination (hot-path use)."""

    __slots__ = ("_instrument", "_key")

    def __init__(self, instrument: "Counter", key: Tuple[str, ...]):
        self._instrument = instrument
        self._key = key

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricError(
                f"counter {self._instrument.name!r} cannot decrease "
                f"(inc by {amount})")
        instrument, key = self._instrument, self._key
        with instrument._lock:
            instrument._series[key] = instrument._series.get(key, 0) + amount


class Counter(_Instrument):
    """A monotonically increasing count."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise MetricError(
                f"counter {self.name!r} cannot decrease (inc by {amount})")
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0) + amount

    def labels(self, **labels: Any) -> _BoundCounter:
        """A child bound to ``labels``: skips key-building on every inc."""
        return _BoundCounter(self, self._key(labels))

    def value(self, **labels: Any) -> float:
        key = self._key(labels)
        with self._lock:
            return self._series.get(key, 0)


class Gauge(_Instrument):
    """A value that goes up and down (in-flight requests, ring sizes)."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            self._series[key] = value

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0) + amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: Any) -> float:
        key = self._key(labels)
        with self._lock:
            return self._series.get(key, 0)


class _HistogramSeries:
    __slots__ = ("bucket_counts", "sum", "count")

    def __init__(self, bucket_count: int):
        self.bucket_counts = [0] * bucket_count  # one per bound, + the +Inf slot
        self.sum = 0.0
        self.count = 0


class _BoundHistogram:
    """A histogram pre-resolved to one series (hot-path use)."""

    __slots__ = ("_instrument", "_series")

    def __init__(self, instrument: "Histogram", series: "_HistogramSeries"):
        self._instrument = instrument
        self._series = series

    def observe(self, value: float) -> None:
        instrument, series = self._instrument, self._series
        with instrument._lock:
            series.bucket_counts[bisect_left(instrument.bounds, value)] += 1
            series.sum += value
            series.count += 1


class Histogram(_Instrument):
    """Fixed-bucket histogram with cumulative Prometheus exposition."""

    kind = "histogram"

    def __init__(self, name: str, help_text: str,
                 label_names: Tuple[str, ...], lock: threading.RLock,
                 buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS):
        super().__init__(name, help_text, label_names, lock)
        bounds = tuple(sorted(float(bound) for bound in buckets))
        if not bounds:
            raise MetricError(f"histogram {name!r} needs at least one bucket")
        self.bounds = bounds

    def observe(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(len(self.bounds) + 1)
            # bisect_left finds the first bound >= value, which is
            # exactly Prometheus's ``value <= le`` bucket; past the last
            # bound it returns len(bounds), the +Inf slot.
            series.bucket_counts[bisect_left(self.bounds, value)] += 1
            series.sum += value
            series.count += 1

    def labels(self, **labels: Any) -> "_BoundHistogram":
        """A child bound to ``labels``: skips key-building on every observe."""
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(len(self.bounds) + 1)
        return _BoundHistogram(self, series)

    def _series_snapshot(self) -> List[Dict[str, Any]]:
        rows = []
        for key in sorted(self._series):
            series = self._series[key]
            cumulative, buckets = 0, {}
            for bound, count in zip(self.bounds, series.bucket_counts):
                cumulative += count
                buckets[_format_value(bound)] = cumulative
            buckets["+Inf"] = series.count
            rows.append({"labels": dict(zip(self.label_names, key)),
                         "buckets": buckets,
                         "sum": round(series.sum, 9),
                         "count": series.count})
        return rows

    def render(self) -> List[str]:
        lines = [f"# HELP {self.name} {self.help_text}",
                 f"# TYPE {self.name} histogram"]
        with self._lock:
            for key in sorted(self._series):
                series = self._series[key]
                cumulative = 0
                for bound, count in zip(self.bounds, series.bucket_counts):
                    cumulative += count
                    suffix = self._label_suffix(key, [("le", _format_value(bound))])
                    lines.append(f"{self.name}_bucket{suffix} {cumulative}")
                suffix = self._label_suffix(key, [("le", "+Inf")])
                lines.append(f"{self.name}_bucket{suffix} {series.count}")
                lines.append(f"{self.name}_sum{self._label_suffix(key)} "
                             f"{_format_value(round(series.sum, 9))}")
                lines.append(f"{self.name}_count{self._label_suffix(key)} "
                             f"{series.count}")
        return lines


class MetricsRegistry:
    """All of one process's metric families, under one lock."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._instruments: Dict[str, _Instrument] = {}

    def _register(self, cls, name: str, help_text: str,
                  labels: Sequence[str], **kwargs) -> _Instrument:
        if not _NAME_RE.match(name):
            raise MetricError(f"invalid metric name {name!r}")
        label_names = tuple(labels)
        for label in label_names:
            if not _LABEL_RE.match(label):
                raise MetricError(
                    f"invalid label name {label!r} on metric {name!r}")
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if type(existing) is not cls or existing.label_names != label_names:
                    raise MetricError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind} with labels {existing.label_names}")
                return existing
            instrument = cls(name, help_text, label_names, self._lock, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help_text: str = "",
                labels: Sequence[str] = ()) -> Counter:
        return self._register(Counter, name, help_text, labels)

    def gauge(self, name: str, help_text: str = "",
              labels: Sequence[str] = ()) -> Gauge:
        return self._register(Gauge, name, help_text, labels)

    def histogram(self, name: str, help_text: str = "",
                  labels: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> Histogram:
        return self._register(Histogram, name, help_text, labels,
                              buckets=buckets)

    def get(self, name: str) -> Optional[_Instrument]:
        with self._lock:
            return self._instruments.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._instruments)

    def snapshot(self) -> Dict[str, Any]:
        """Every family with every series, JSON-ready (the ``obs.metrics`` body)."""
        with self._lock:
            instruments = dict(self._instruments)
        return {name: instruments[name].snapshot() for name in sorted(instruments)}

    def render_prometheus(self) -> str:
        """The text exposition format, one family after another."""
        with self._lock:
            instruments = dict(self._instruments)
        lines: List[str] = []
        for name in sorted(instruments):
            lines.extend(instruments[name].render())
        return "\n".join(lines) + ("\n" if lines else "")

    def reset(self) -> None:
        """Drop every series (families stay registered) — for tests."""
        with self._lock:
            for instrument in self._instruments.values():
                instrument._series.clear()


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry every probe and service reports into."""
    return _REGISTRY
