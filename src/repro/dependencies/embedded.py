"""Embedded dependencies: TGDs and EGDs with arbitrary CQ bodies.

The paper's FDs and INDs are exactly the special cases of the two
classical families of *embedded* dependencies:

* a **tuple-generating dependency (TGD)** ``φ(x̄) → ∃ȳ ψ(x̄, ȳ)`` — whenever
  the body φ matches a database, some extension of the match satisfies the
  head ψ.  An IND ``R[X] ⊆ S[Y]`` is the single-body-atom, single-head-atom
  TGD copying the X columns into the Y columns and quantifying the rest of
  S existentially (:meth:`~repro.dependencies.inclusion.InclusionDependency.as_tgd`);
* an **equality-generating dependency (EGD)** ``φ(x̄) → x = y`` — whenever
  the body matches, the images of two body variables must be equal.  An FD
  ``R: Z → A`` is the two-atom EGD over R sharing the Z columns
  (:meth:`~repro.dependencies.functional.FunctionalDependency.as_egd`).

Variables in a dependency are scoped to that dependency, so they are
plain :class:`~repro.terms.term.Variable` objects identified by name;
constructors normalise any variable subclass to the plain form (and strip
conjunct labels) so that syntactically equal rules compare and hash
equal — which the parser round-trip and the fingerprint machinery rely
on.  Variables occurring in the head but not the body of a TGD are its
*existential* variables; body variables reused in the head form the
*frontier* (the TGD analogue of an IND's width).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Set, Tuple

from repro.exceptions import DependencyError
from repro.queries.conjunct import Conjunct
from repro.relational.schema import DatabaseSchema
from repro.terms.term import Constant, Term, Variable


def _normalise_atom(atom: Conjunct, role: str) -> Conjunct:
    """An atom with plain variables and the default label.

    Dependency rules are compared structurally, so distinguished /
    nondistinguished flavours (which the query layer distinguishes) and
    conjunct labels must not split equality.
    """
    terms: List[Term] = []
    for term in atom.terms:
        if isinstance(term, Constant):
            terms.append(term)
        elif isinstance(term, Variable):
            terms.append(Variable(term.name))
        else:
            raise DependencyError(
                f"{role} atom {atom} contains a non-term entry {term!r}")
    return Conjunct(atom.relation, terms)


def _atom_variables(atoms: Sequence[Conjunct]) -> Set[Variable]:
    return {term for atom in atoms for term in atom.terms
            if isinstance(term, Variable)}


def _validate_atoms(atoms: Sequence[Conjunct], schema: DatabaseSchema,
                    owner: str) -> None:
    for atom in atoms:
        if atom.relation not in schema:
            raise DependencyError(
                f"{owner} refers to unknown relation {atom.relation!r}")
        expected = schema.relation(atom.relation).arity
        if atom.arity != expected:
            raise DependencyError(
                f"{owner} atom {atom} has arity {atom.arity}, but relation "
                f"{atom.relation!r} has arity {expected}")


def _render_atoms(atoms: Sequence[Conjunct]) -> str:
    return ", ".join(str(atom) for atom in atoms)


@dataclass(frozen=True)
class TGD:
    """A tuple-generating dependency ``body → head``.

    ``body`` and ``head`` are non-empty tuples of atoms (:class:`Conjunct`
    objects over plain variables and constants).  Head variables absent
    from the body are existentially quantified; a single existential
    variable used in several head positions denotes one shared value, so
    the chase creates exactly one fresh NDV for it.
    """

    body: Tuple[Conjunct, ...]
    head: Tuple[Conjunct, ...]

    def __init__(self, body: Sequence[Conjunct], head: Sequence[Conjunct]):
        body_atoms = tuple(_normalise_atom(atom, "TGD body") for atom in body)
        head_atoms = tuple(_normalise_atom(atom, "TGD head") for atom in head)
        if not body_atoms:
            raise DependencyError("a TGD must have at least one body atom")
        if not head_atoms:
            raise DependencyError("a TGD must have at least one head atom")
        object.__setattr__(self, "body", body_atoms)
        object.__setattr__(self, "head", head_atoms)

    # -- rendering ------------------------------------------------------------

    def __str__(self) -> str:
        return f"{_render_atoms(self.body)} -> {_render_atoms(self.head)}"

    # -- structural properties -------------------------------------------------

    def body_variables(self) -> Set[Variable]:
        """Variables occurring in the body (the universally quantified ones)."""
        return _atom_variables(self.body)

    def head_variables(self) -> Set[Variable]:
        return _atom_variables(self.head)

    def frontier(self) -> Set[Variable]:
        """Body variables reused in the head (the values the chase copies).

        Memoised on the (frozen) instance: the chase asks for the
        frontier on every R-chase head check, and the variable sets never
        change after construction.
        """
        cached = self.__dict__.get("_frontier")
        if cached is None:
            cached = self.body_variables() & self.head_variables()
            object.__setattr__(self, "_frontier", cached)
        return cached

    def existential_variables(self) -> Set[Variable]:
        """Head variables not bound by the body (fresh NDVs per trigger)."""
        return self.head_variables() - self.body_variables()

    @property
    def width(self) -> int:
        """The frontier size — the TGD analogue of an IND's width."""
        return len(self.frontier())

    @property
    def is_full(self) -> bool:
        """True when the head has no existential variables.

        Full TGDs never create fresh values, so they cannot threaten
        chase termination (they contribute no existential edges to the
        dependency position graph).
        """
        return not self.existential_variables()

    # -- schema resolution ----------------------------------------------------

    def validate(self, schema: DatabaseSchema) -> None:
        """Raise DependencyError unless every atom fits the schema."""
        _validate_atoms(self.body, schema, f"TGD {self}")
        _validate_atoms(self.head, schema, f"TGD {self}")


@dataclass(frozen=True)
class EGD:
    """An equality-generating dependency ``body → lhs = rhs``.

    ``lhs`` and ``rhs`` are body variables; whenever the body matches, the
    chase merges their images exactly like the FD chase rule (two distinct
    constants make the chase fail with the empty query).
    """

    body: Tuple[Conjunct, ...]
    lhs: Variable
    rhs: Variable

    def __init__(self, body: Sequence[Conjunct], lhs: Variable, rhs: Variable):
        body_atoms = tuple(_normalise_atom(atom, "EGD body") for atom in body)
        if not body_atoms:
            raise DependencyError("an EGD must have at least one body atom")
        if not isinstance(lhs, Variable) or not isinstance(rhs, Variable):
            raise DependencyError(
                f"an EGD must equate two variables, got {lhs!r} = {rhs!r}")
        lhs_plain = Variable(lhs.name)
        rhs_plain = Variable(rhs.name)
        variables = _atom_variables(body_atoms)
        for side in (lhs_plain, rhs_plain):
            if side not in variables:
                raise DependencyError(
                    f"EGD equates {side} which does not occur in its body")
        if lhs_plain == rhs_plain:
            raise DependencyError(
                f"EGD {lhs_plain} = {rhs_plain} is trivial; it equates a "
                "variable with itself")
        object.__setattr__(self, "body", body_atoms)
        object.__setattr__(self, "lhs", lhs_plain)
        object.__setattr__(self, "rhs", rhs_plain)

    # -- rendering ------------------------------------------------------------

    def __str__(self) -> str:
        return f"{_render_atoms(self.body)} -> {self.lhs} = {self.rhs}"

    # -- structural properties -------------------------------------------------

    def body_variables(self) -> Set[Variable]:
        return _atom_variables(self.body)

    # -- schema resolution ----------------------------------------------------

    def validate(self, schema: DatabaseSchema) -> None:
        """Raise DependencyError unless every body atom fits the schema."""
        _validate_atoms(self.body, schema, f"EGD {self}")
