"""Inference for inclusion dependencies.

Casanova, Fagin, and Papadimitriou (reference [3] of the paper) showed
that the following axioms are sound and complete for IND implication:

* **reflexivity** — R[X] ⊆ R[X];
* **projection and permutation** — from R[A1..Am] ⊆ S[B1..Bm] infer
  R[Ai1..Aik] ⊆ S[Bi1..Bik] for any sequence of distinct indices;
* **transitivity** — from R[X] ⊆ S[Y] and S[Y] ⊆ T[Z] infer R[X] ⊆ T[Z].

The implication problem is PSPACE-complete in general but polynomial for
any fixed width bound, which is the regime the paper (and this library)
works in.  Two procedures are provided:

* :func:`ind_implied_by_axioms` — a saturation of the axioms restricted to
  widths up to the candidate's width (sound and complete, and the practical
  default);
* :func:`ind_implied_via_containment` — the Corollary 2.3 reduction of IND
  inference to conjunctive-query containment, used by the benchmarks to
  cross-check the containment engine against the axiomatic procedure.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.dependencies.inclusion import InclusionDependency
from repro.exceptions import DependencyError
from repro.relational.schema import DatabaseSchema

# An IND in resolved (relation, attribute-name-tuple) form used during saturation.
_ResolvedInd = Tuple[str, Tuple[str, ...], str, Tuple[str, ...]]


def _resolve(ind: InclusionDependency, schema: DatabaseSchema) -> _ResolvedInd:
    """Normalise an IND to attribute names so positional and named forms mix."""
    lhs_relation = schema.relation(ind.lhs_relation)
    rhs_relation = schema.relation(ind.rhs_relation)
    lhs = tuple(lhs_relation.attribute_name_at(p) for p in ind.lhs_positions(schema))
    rhs = tuple(rhs_relation.attribute_name_at(p) for p in ind.rhs_positions(schema))
    return (ind.lhs_relation, lhs, ind.rhs_relation, rhs)


def _projections(resolved: _ResolvedInd, max_width: int) -> Iterable[_ResolvedInd]:
    """All projection-and-permutation consequences up to ``max_width``.

    The number of index sequences is exponential in the width; widths in
    this library are small (the paper's bounds are parameterised by a fixed
    W), so explicit enumeration is fine.
    """
    lhs_relation, lhs, rhs_relation, rhs = resolved
    width = len(lhs)
    indices = range(width)

    def sequences(length: int, prefix: Tuple[int, ...]) -> Iterable[Tuple[int, ...]]:
        if len(prefix) == length:
            yield prefix
            return
        for index in indices:
            if index not in prefix:
                yield from sequences(length, prefix + (index,))

    for length in range(1, min(width, max_width) + 1):
        for sequence in sequences(length, ()):
            yield (
                lhs_relation,
                tuple(lhs[i] for i in sequence),
                rhs_relation,
                tuple(rhs[i] for i in sequence),
            )


def derive_ind_closure(inds: Sequence[InclusionDependency], schema: DatabaseSchema,
                       max_width: Optional[int] = None,
                       max_derived: int = 200_000) -> Set[_ResolvedInd]:
    """Saturate the CFP axioms, keeping INDs of width at most ``max_width``.

    Returns resolved (relation, names, relation, names) tuples.  The
    ``max_derived`` guard protects against pathological schemas; hitting it
    raises :class:`DependencyError` rather than silently truncating.
    """
    if max_width is None:
        max_width = max((ind.width for ind in inds), default=1)
    derived: Set[_ResolvedInd] = set()
    frontier: List[_ResolvedInd] = []

    def admit(candidate: _ResolvedInd) -> None:
        if candidate not in derived:
            if len(derived) >= max_derived:
                raise DependencyError(
                    f"IND closure exceeded {max_derived} dependencies; "
                    "restrict the width or the schema"
                )
            derived.add(candidate)
            frontier.append(candidate)

    for ind in inds:
        ind.validate(schema)
        resolved = _resolve(ind, schema)
        for projected in _projections(resolved, max_width):
            admit(projected)
        if len(resolved[1]) <= max_width:
            admit(resolved)

    while frontier:
        current = frontier.pop()
        lhs_relation, lhs, rhs_relation, rhs = current
        # Transitivity with everything currently derived (both directions).
        for other in list(derived):
            other_lhs_relation, other_lhs, other_rhs_relation, other_rhs = other
            if rhs_relation == other_lhs_relation and rhs == other_lhs:
                admit((lhs_relation, lhs, other_rhs_relation, other_rhs))
            if other_rhs_relation == lhs_relation and other_rhs == lhs:
                admit((other_lhs_relation, other_lhs, rhs_relation, rhs))
    return derived


def ind_implied_by_axioms(inds: Sequence[InclusionDependency],
                          candidate: InclusionDependency,
                          schema: DatabaseSchema) -> bool:
    """True if ``candidate`` follows from ``inds`` by the CFP axioms."""
    candidate.validate(schema)
    resolved_candidate = _resolve(candidate, schema)
    if resolved_candidate[0] == resolved_candidate[2] and resolved_candidate[1] == resolved_candidate[3]:
        return True  # reflexivity
    closure = derive_ind_closure(inds, schema, max_width=candidate.width)
    return resolved_candidate in closure


def ind_implied_via_containment(inds: Sequence[InclusionDependency],
                                candidate: InclusionDependency,
                                schema: DatabaseSchema,
                                max_conjuncts: int = 10_000) -> bool:
    """Corollary 2.3: decide IND implication as conjunctive-query containment.

    ``R[X] ⊆ S[Y]`` can be inferred from Σ iff ``Σ ⊨ Q ⊆ Q'`` where Q
    returns the X-columns of R and Q' additionally requires a matching
    S-tuple on the Y-columns.  The construction below handles the general
    case (arbitrary column positions, R and S possibly equal).

    The containment engine is imported lazily to keep the package
    dependency graph acyclic.
    """
    from repro.containment.decision import is_contained
    from repro.dependencies.dependency_set import DependencySet
    from repro.queries.conjunct import Conjunct
    from repro.queries.conjunctive_query import ConjunctiveQuery
    from repro.terms.term import DistinguishedVariable, NonDistinguishedVariable

    candidate.validate(schema)
    lhs_schema = schema.relation(candidate.lhs_relation)
    rhs_schema = schema.relation(candidate.rhs_relation)
    lhs_positions = candidate.lhs_positions(schema)
    rhs_positions = candidate.rhs_positions(schema)

    # Q: return the X-columns of one R-tuple.
    distinguished = [DistinguishedVariable(f"x{i + 1}") for i in range(candidate.width)]
    r_terms: List = []
    for position in range(lhs_schema.arity):
        if position in lhs_positions:
            r_terms.append(distinguished[lhs_positions.index(position)])
        else:
            r_terms.append(NonDistinguishedVariable(f"y{position + 1}"))
    q_conjunct = Conjunct(candidate.lhs_relation, r_terms, label="r")
    query = ConjunctiveQuery(
        input_schema=schema,
        conjuncts=[q_conjunct],
        summary_row=tuple(distinguished),
        name="Q_ind",
    )

    # Q': additionally require an S-tuple carrying the same values on Y.
    s_terms: List = []
    for position in range(rhs_schema.arity):
        if position in rhs_positions:
            s_terms.append(distinguished[rhs_positions.index(position)])
        else:
            s_terms.append(NonDistinguishedVariable(f"z{position + 1}"))
    s_conjunct = Conjunct(candidate.rhs_relation, s_terms, label="s")
    query_prime = ConjunctiveQuery(
        input_schema=schema,
        conjuncts=[q_conjunct.with_label("r"), s_conjunct],
        summary_row=tuple(distinguished),
        name="Qprime_ind",
    )

    sigma = DependencySet(inds, schema=schema)
    return is_contained(query, query_prime, sigma, max_conjuncts=max_conjuncts).holds
