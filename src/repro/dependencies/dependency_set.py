"""Dependency sets and their classification.

The containment procedures of Section 3 dispatch on the *shape* of the
dependency set Σ:

* Σ empty — classical Chandra–Merlin containment;
* Σ contains only FDs — the classical finite chase;
* Σ contains only INDs — Theorem 2(i);
* Σ key-based — Theorem 2(ii);
* anything else — outside the paper's decidable cases (the procedure is
  still exposed as a sound semi-decision, which becomes *exact* whenever
  the weak-acyclicity analysis certifies that the chase terminates).

Beyond the paper's FDs and INDs a set may contain general *embedded*
dependencies — :class:`~repro.dependencies.embedded.TGD` and
:class:`~repro.dependencies.embedded.EGD` rules with arbitrary CQ bodies
and heads — of which FDs and INDs are the classical special cases
(:meth:`normalized_embedded` performs the FD→EGD / IND→TGD rewriting).

:class:`DependencySet` stores the dependencies, validates them against a
schema, computes the maximum IND width W, determines keys, and implements
the key-based test exactly as defined in Section 2.
"""

from __future__ import annotations

import hashlib
from enum import Enum
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
    Union,
)

from repro.exceptions import DependencyError
from repro.dependencies.embedded import EGD, TGD
from repro.dependencies.functional import FunctionalDependency
from repro.dependencies.inclusion import InclusionDependency
from repro.relational.schema import DatabaseSchema

Dependency = Union[FunctionalDependency, InclusionDependency, TGD, EGD]

#: The concrete classes a DependencySet accepts.
DEPENDENCY_TYPES = (FunctionalDependency, InclusionDependency, TGD, EGD)


class DependencyClass(Enum):
    """The shapes of Σ the containment dispatcher distinguishes.

    The first four are the paper's decidable cases; ``GENERAL`` is an
    FD/IND set outside them, and ``EMBEDDED`` is a set containing at
    least one TGD or EGD.  Both of the last two take the bounded-chase
    semi-decision path (exact when the chase provably terminates).
    """

    EMPTY = "empty"
    FD_ONLY = "fd-only"
    IND_ONLY = "ind-only"
    KEY_BASED = "key-based"
    GENERAL = "general"
    EMBEDDED = "embedded"


class DependencySet:
    """An ordered, duplicate-free collection of FDs and INDs.

    Iteration order is insertion order, which the chase uses for its
    "lexicographically first dependency" tie-breaking, so two runs over the
    same DependencySet produce identical chases.
    """

    def __init__(self, dependencies: Optional[Iterable[Dependency]] = None,
                 schema: Optional[DatabaseSchema] = None):
        self._dependencies: List[Dependency] = []
        self._seen: Set[Dependency] = set()
        self._schema = schema
        self._classify_cache: Dict[Optional[Tuple], DependencyClass] = {}
        self._validated_signatures: Set[Tuple] = set()
        self._fingerprint: Optional[str] = None
        for dependency in dependencies or ():
            self.add(dependency)

    # -- construction -------------------------------------------------------------

    def add(self, dependency: Dependency) -> "DependencySet":
        """Add one dependency (duplicates are ignored)."""
        if not isinstance(dependency, DEPENDENCY_TYPES):
            raise DependencyError(
                "expected a FunctionalDependency, InclusionDependency, TGD, "
                f"or EGD, got {dependency!r}"
            )
        if dependency not in self._seen:
            if self._schema is not None:
                dependency.validate(self._schema)
            self._dependencies.append(dependency)
            self._seen.add(dependency)
            self._classify_cache.clear()
            self._validated_signatures.clear()
            self._fingerprint = None
        return self

    def union(self, other: "DependencySet") -> "DependencySet":
        """A new set containing the dependencies of both."""
        merged = DependencySet(self._dependencies, schema=self._schema or other._schema)
        for dependency in other:
            merged.add(dependency)
        return merged

    @classmethod
    def empty(cls, schema: Optional[DatabaseSchema] = None) -> "DependencySet":
        return cls(schema=schema)

    # -- container protocol ---------------------------------------------------------

    def __iter__(self) -> Iterator[Dependency]:
        return iter(self._dependencies)

    def __len__(self) -> int:
        return len(self._dependencies)

    def __contains__(self, dependency: Dependency) -> bool:
        return dependency in self._seen

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DependencySet):
            return NotImplemented
        return set(self._dependencies) == set(other._dependencies)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DependencySet({', '.join(str(d) for d in self._dependencies)})"

    @property
    def schema(self) -> Optional[DatabaseSchema]:
        return self._schema

    # -- views -------------------------------------------------------------------------

    def functional_dependencies(self) -> List[FunctionalDependency]:
        """Σ[F]: the FDs, in insertion order."""
        return [d for d in self._dependencies if isinstance(d, FunctionalDependency)]

    def inclusion_dependencies(self) -> List[InclusionDependency]:
        """Σ[I]: the INDs, in insertion order."""
        return [d for d in self._dependencies if isinstance(d, InclusionDependency)]

    def tgds(self) -> List[TGD]:
        """The general tuple-generating dependencies, in insertion order."""
        return [d for d in self._dependencies if isinstance(d, TGD)]

    def egds(self) -> List[EGD]:
        """The general equality-generating dependencies, in insertion order."""
        return [d for d in self._dependencies if isinstance(d, EGD)]

    def embedded_dependencies(self) -> List[Union[TGD, EGD]]:
        """The TGDs and EGDs, in insertion order."""
        return [d for d in self._dependencies if isinstance(d, (TGD, EGD))]

    def has_embedded(self) -> bool:
        """True when Σ contains at least one general TGD or EGD."""
        return any(isinstance(d, (TGD, EGD)) for d in self._dependencies)

    def fds_for(self, relation: str) -> List[FunctionalDependency]:
        return [d for d in self.functional_dependencies() if d.relation == relation]

    def inds_from(self, relation: str) -> List[InclusionDependency]:
        """INDs whose left-hand side lives in ``relation``."""
        return [d for d in self.inclusion_dependencies() if d.lhs_relation == relation]

    def inds_into(self, relation: str) -> List[InclusionDependency]:
        """INDs whose right-hand side lives in ``relation``."""
        return [d for d in self.inclusion_dependencies() if d.rhs_relation == relation]

    def fd_part(self) -> "DependencySet":
        """The sub-set Σ[F] as a DependencySet."""
        return DependencySet(self.functional_dependencies(), schema=self._schema)

    def ind_part(self) -> "DependencySet":
        """The sub-set Σ[I] as a DependencySet."""
        return DependencySet(self.inclusion_dependencies(), schema=self._schema)

    # -- sizes ----------------------------------------------------------------------------

    def max_ind_width(self) -> int:
        """W: the maximum width of an IND in Σ (0 if Σ has no INDs)."""
        widths = [d.width for d in self.inclusion_dependencies()]
        return max(widths) if widths else 0

    def max_width(self) -> int:
        """W generalised to embedded Σ: IND widths and TGD frontier sizes.

        For FD/IND-only sets this equals :meth:`max_ind_width` (so the
        Theorem 2 level bound is unchanged on the paper's classes); a
        TGD contributes the size of its frontier, the variables whose
        values the chase copies into created conjuncts.
        """
        widths = [d.width for d in self._dependencies
                  if isinstance(d, (InclusionDependency, TGD))]
        return max(widths) if widths else 0

    def size(self) -> int:
        """|Σ|: the number of dependencies."""
        return len(self._dependencies)

    # -- identity -----------------------------------------------------------------------

    def fingerprint(self) -> str:
        """A stable content hash of Σ, usable as a cache key.

        Two DependencySets that compare equal (same dependencies, in any
        insertion order) have the same fingerprint; the digest is stable
        across processes, so it can key on-disk or cross-service caches.
        Mutating the set via :meth:`add` invalidates the memoised value.
        """
        if self._fingerprint is None:
            lines = sorted(
                f"{type(dependency).__name__}|{dependency}"
                for dependency in self._dependencies
            )
            digest = hashlib.sha256("\n".join(lines).encode("utf-8"))
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    @staticmethod
    def _schema_signature(schema: Optional[DatabaseSchema]) -> Optional[Tuple]:
        return schema.signature() if schema is not None else None

    # -- validation ---------------------------------------------------------------------------

    def validate(self, schema: Optional[DatabaseSchema] = None) -> None:
        """Check every dependency against a schema.

        Validation is pure in (Σ, schema content), so the result is
        memoised on the schema's :meth:`~DatabaseSchema.signature`;
        :meth:`add` invalidates the memo.  Chase engines validate on
        construction, so repeated chases over the same Σ (containment
        tests run one per CQ pair, benchmarks run hundreds) pay the
        per-dependency arity walk once.
        """
        target = schema or self._schema
        if target is None:
            raise DependencyError("no schema available to validate against")
        signature = target.signature()
        if signature in self._validated_signatures:
            return
        for dependency in self._dependencies:
            dependency.validate(target)
        self._validated_signatures.add(signature)

    # -- classification ----------------------------------------------------------------------------

    def is_empty(self) -> bool:
        return not self._dependencies

    def is_fd_only(self) -> bool:
        return (bool(self._dependencies)
                and all(isinstance(d, FunctionalDependency) for d in self._dependencies))

    def is_ind_only(self) -> bool:
        return (bool(self._dependencies)
                and all(isinstance(d, InclusionDependency) for d in self._dependencies))

    def has_only_unary_inds(self) -> bool:
        """True if every IND has width 1 (Theorem 3(i) requires this)."""
        return all(d.is_unary for d in self.inclusion_dependencies())

    def key_of(self, relation: str, schema: Optional[DatabaseSchema] = None) -> Optional[FrozenSet[str]]:
        """The common FD left-hand side for ``relation``, as attribute names.

        Returns ``None`` when the relation has no FDs, and raises
        DependencyError when its FDs do not share one left-hand side (in
        which case Σ cannot be key-based).
        """
        target = schema or self._schema
        if target is None:
            raise DependencyError("a schema is required to resolve attribute names")
        fds = self.fds_for(relation)
        if not fds:
            return None
        lhs_sets = {fd.lhs_names(target) for fd in fds}
        if len(lhs_sets) != 1:
            raise DependencyError(
                f"relation {relation!r} has FDs with different left-hand sides; "
                "the set is not key-based"
            )
        return next(iter(lhs_sets))

    def is_key_based(self, schema: Optional[DatabaseSchema] = None) -> bool:
        """The paper's key-based test (Section 2, conditions (a) and (b)).

        (a) For each relation R with FDs, all FDs of R share one left-hand
        side Z, and every attribute of R outside Z is the right-hand side of
        some FD of R (so Z is a key of R).

        (b) Every IND ``R[X] ⊆ S[Y]`` has Y contained in the key of S (so S
        must have FDs) and X disjoint from the key of R (vacuously true when
        R has no FDs).
        """
        target = schema or self._schema
        if target is None:
            raise DependencyError("a schema is required for the key-based test")
        if not self._dependencies:
            return False

        # Condition (a): shared left-hand sides covering all non-key attributes.
        keys: Dict[str, FrozenSet[str]] = {}
        for relation_name in {fd.relation for fd in self.functional_dependencies()}:
            try:
                key = self.key_of(relation_name, target)
            except DependencyError:
                return False
            assert key is not None
            keys[relation_name] = key
            relation = target.relation(relation_name)
            covered = {fd.rhs_name(target) for fd in self.fds_for(relation_name)}
            for attribute in relation.attribute_names:
                if attribute not in key and attribute not in covered:
                    return False

        # Condition (b): IND right-hand sides inside target keys, left-hand
        # sides disjoint from source keys.
        for ind in self.inclusion_dependencies():
            target_key = keys.get(ind.rhs_relation)
            if target_key is None:
                return False
            if not ind.rhs_names(target) <= target_key:
                return False
            source_key = keys.get(ind.lhs_relation)
            if source_key is not None and ind.lhs_names(target) & source_key:
                return False
        return True

    def classify(self, schema: Optional[DatabaseSchema] = None) -> DependencyClass:
        """Which of the paper's cases Σ falls into.

        The answer depends only on the dependencies and the schema, both of
        which are classified per content, so it is memoised: a frozen Σ
        re-used across many containment calls is classified once.  The
        cache is invalidated whenever :meth:`add` changes the set.
        """
        target = schema or self._schema
        key = self._schema_signature(target)
        cached = self._classify_cache.get(key)
        if cached is not None:
            return cached
        classification = self._classify_uncached(target)
        self._classify_cache[key] = classification
        return classification

    def _classify_uncached(self, target: Optional[DatabaseSchema]) -> DependencyClass:
        if self.is_empty():
            return DependencyClass.EMPTY
        if self.has_embedded():
            return DependencyClass.EMBEDDED
        if self.is_fd_only():
            return DependencyClass.FD_ONLY
        if self.is_ind_only():
            return DependencyClass.IND_ONLY
        if target is not None and self.is_key_based(target):
            return DependencyClass.KEY_BASED
        return DependencyClass.GENERAL

    def supports_exact_containment(self, schema: Optional[DatabaseSchema] = None) -> bool:
        """True if Σ is in a class for which Theorem 2 gives a decision procedure."""
        return self.classify(schema) in (
            DependencyClass.EMPTY,
            DependencyClass.FD_ONLY,
            DependencyClass.IND_ONLY,
            DependencyClass.KEY_BASED,
        )

    def is_finitely_controllable(self, schema: Optional[DatabaseSchema] = None) -> bool:
        """True if Theorem 3 guarantees ⊆f and ⊆∞ coincide for Σ.

        That is: Σ is empty, FD-only, key-based, or consists only of
        width-1 INDs.  (The paper conjectures the IND-only case in general
        but proves only width 1.)
        """
        classification = self.classify(schema)
        if classification in (DependencyClass.EMPTY, DependencyClass.FD_ONLY,
                              DependencyClass.KEY_BASED):
            return True
        if classification is DependencyClass.IND_ONLY:
            return self.has_only_unary_inds()
        return False

    # -- normalization ----------------------------------------------------------------------------

    def normalized_embedded(self, schema: Optional[DatabaseSchema] = None) -> "DependencySet":
        """Σ with every FD rewritten as an EGD and every IND as a TGD.

        The result expresses the identical constraints in the uniform
        embedded-dependency vocabulary, so it chases to the same atoms
        and yields the same containment verdicts; the tests assert this
        equivalence.  A schema is required to resolve attribute
        positions.  TGDs and EGDs already in the set are kept as-is;
        trivial FDs (tautologies with no EGD form) are dropped.
        """
        target = schema or self._schema
        if target is None:
            raise DependencyError("a schema is required to normalize FDs and INDs")
        normalized = DependencySet(schema=target)
        for dependency in self._dependencies:
            if isinstance(dependency, FunctionalDependency):
                if dependency.is_trivial:
                    continue
                normalized.add(dependency.as_egd(target))
            elif isinstance(dependency, InclusionDependency):
                normalized.add(dependency.as_tgd(target))
            else:
                normalized.add(dependency)
        return normalized

    # -- reporting -------------------------------------------------------------------------------------

    def describe(self) -> str:
        """Multi-line human-readable listing used by examples and reports."""
        lines = [f"dependency set with {len(self)} dependencies "
                 f"(max width {self.max_width()})"]
        kinds = {FunctionalDependency: "FD ", InclusionDependency: "IND",
                 TGD: "TGD", EGD: "EGD"}
        for dependency in self._dependencies:
            lines.append(f"  {kinds[type(dependency)]} {dependency}")
        return "\n".join(lines)
