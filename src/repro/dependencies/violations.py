"""Checking dependencies against finite database instances.

A database *obeys* an FD ``R: Z → A`` if no two tuples of R agree on Z and
differ on A, and obeys an IND ``R[X] ⊆ S[Y]`` if every X-subtuple of R
occurs as a Y-subtuple of S.  These checks are used by the storage engine
(integrity enforcement), by the finite counter-model search (only
Σ-satisfying databases are admissible witnesses), and by tests that verify
the instance-level chase really repairs a database.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.dependencies.dependency_set import Dependency, DependencySet
from repro.dependencies.functional import FunctionalDependency
from repro.dependencies.inclusion import InclusionDependency
from repro.relational.database import Database


@dataclass(frozen=True)
class Violation:
    """One witnessed violation of a dependency by a database instance.

    ``witness`` holds the offending tuples: a pair of rows for an FD, a
    single unmatched row for an IND.
    """

    dependency: Dependency
    relation: str
    witness: Tuple[Tuple[Any, ...], ...]
    message: str

    def __str__(self) -> str:
        return self.message


def fd_violations(database: Database, fd: FunctionalDependency,
                  limit: Optional[int] = None) -> List[Violation]:
    """All (or the first ``limit``) violations of one FD."""
    relation = database.relation(fd.relation)
    schema = relation.schema
    lhs_positions = fd.lhs_positions(schema)
    rhs_position = fd.rhs_position(schema)
    groups: Dict[Tuple[Any, ...], Tuple[Any, Tuple[Any, ...]]] = {}
    violations: List[Violation] = []
    for row in relation:
        key = tuple(row[p] for p in lhs_positions)
        value = row[rhs_position]
        if key not in groups:
            groups[key] = (value, row)
            continue
        first_value, first_row = groups[key]
        if first_value != value:
            violations.append(Violation(
                dependency=fd,
                relation=fd.relation,
                witness=(first_row, row),
                message=(
                    f"FD {fd} violated: rows {first_row} and {row} agree on "
                    f"{fd.lhs} but differ on {fd.rhs}"
                ),
            ))
            if limit is not None and len(violations) >= limit:
                break
    return violations


def ind_violations(database: Database, ind: InclusionDependency,
                   limit: Optional[int] = None) -> List[Violation]:
    """All (or the first ``limit``) violations of one IND."""
    source = database.relation(ind.lhs_relation)
    target = database.relation(ind.rhs_relation)
    schema = database.schema
    lhs_positions = ind.lhs_positions(schema)
    rhs_positions = ind.rhs_positions(schema)
    available = {tuple(row[p] for p in rhs_positions) for row in target}
    violations: List[Violation] = []
    for row in source:
        subtuple = tuple(row[p] for p in lhs_positions)
        if subtuple not in available:
            violations.append(Violation(
                dependency=ind,
                relation=ind.lhs_relation,
                witness=(row,),
                message=(
                    f"IND {ind} violated: subtuple {subtuple} of row {row} has no "
                    f"matching tuple in {ind.rhs_relation}"
                ),
            ))
            if limit is not None and len(violations) >= limit:
                break
    return violations


def dependency_violations(database: Database, dependency: Dependency,
                          limit: Optional[int] = None) -> List[Violation]:
    """Violations of a single FD or IND."""
    if isinstance(dependency, FunctionalDependency):
        return fd_violations(database, dependency, limit=limit)
    if isinstance(dependency, InclusionDependency):
        return ind_violations(database, dependency, limit=limit)
    raise TypeError(f"unsupported dependency type: {dependency!r}")


def check_database(database: Database,
                   dependencies: Union[DependencySet, Iterable[Dependency]],
                   limit_per_dependency: Optional[int] = None) -> List[Violation]:
    """All violations of every dependency in Σ (possibly limited per dependency)."""
    violations: List[Violation] = []
    for dependency in dependencies:
        violations.extend(
            dependency_violations(database, dependency, limit=limit_per_dependency)
        )
    return violations


def database_satisfies(database: Database,
                       dependencies: Union[DependencySet, Iterable[Dependency]]) -> bool:
    """True if the database obeys every dependency in Σ."""
    for dependency in dependencies:
        if dependency_violations(database, dependency, limit=1):
            return False
    return True
