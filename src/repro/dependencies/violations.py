"""Checking dependencies against finite database instances.

A database *obeys* an FD ``R: Z → A`` if no two tuples of R agree on Z and
differ on A, and obeys an IND ``R[X] ⊆ S[Y]`` if every X-subtuple of R
occurs as a Y-subtuple of S.  The general embedded forms are the same
conditions on arbitrary rule bodies: a TGD is obeyed when every
homomorphism of its body into the rows extends to its head, an EGD when
no body homomorphism binds its two equated variables to different values.
These checks are used by the storage engine (integrity enforcement), by
the finite counter-model search (only Σ-satisfying databases are
admissible witnesses), and by tests that verify the instance-level chase
really repairs a database.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.dependencies.dependency_set import Dependency, DependencySet
from repro.dependencies.embedded import EGD, TGD
from repro.dependencies.functional import FunctionalDependency
from repro.dependencies.inclusion import InclusionDependency
from repro.queries.conjunct import Conjunct
from repro.relational.database import Database
from repro.terms.term import Constant, Variable


@dataclass(frozen=True)
class Violation:
    """One witnessed violation of a dependency by a database instance.

    ``witness`` holds the offending tuples: a pair of rows for an FD, a
    single unmatched row for an IND.
    """

    dependency: Dependency
    relation: str
    witness: Tuple[Tuple[Any, ...], ...]
    message: str

    def __str__(self) -> str:
        return self.message


def fd_violations(database: Database, fd: FunctionalDependency,
                  limit: Optional[int] = None) -> List[Violation]:
    """All (or the first ``limit``) violations of one FD."""
    relation = database.relation(fd.relation)
    schema = relation.schema
    lhs_positions = fd.lhs_positions(schema)
    rhs_position = fd.rhs_position(schema)
    groups: Dict[Tuple[Any, ...], Tuple[Any, Tuple[Any, ...]]] = {}
    violations: List[Violation] = []
    for row in relation:
        key = tuple(row[p] for p in lhs_positions)
        value = row[rhs_position]
        if key not in groups:
            groups[key] = (value, row)
            continue
        first_value, first_row = groups[key]
        if first_value != value:
            violations.append(Violation(
                dependency=fd,
                relation=fd.relation,
                witness=(first_row, row),
                message=(
                    f"FD {fd} violated: rows {first_row} and {row} agree on "
                    f"{fd.lhs} but differ on {fd.rhs}"
                ),
            ))
            if limit is not None and len(violations) >= limit:
                break
    return violations


def ind_violations(database: Database, ind: InclusionDependency,
                   limit: Optional[int] = None) -> List[Violation]:
    """All (or the first ``limit``) violations of one IND."""
    source = database.relation(ind.lhs_relation)
    target = database.relation(ind.rhs_relation)
    schema = database.schema
    lhs_positions = ind.lhs_positions(schema)
    rhs_positions = ind.rhs_positions(schema)
    available = {tuple(row[p] for p in rhs_positions) for row in target}
    violations: List[Violation] = []
    for row in source:
        subtuple = tuple(row[p] for p in lhs_positions)
        if subtuple not in available:
            violations.append(Violation(
                dependency=ind,
                relation=ind.lhs_relation,
                witness=(row,),
                message=(
                    f"IND {ind} violated: subtuple {subtuple} of row {row} has no "
                    f"matching tuple in {ind.rhs_relation}"
                ),
            ))
            if limit is not None and len(violations) >= limit:
                break
    return violations


class _Fact:
    """A database row viewed through the chase-node interface.

    Wrapping each value as a :class:`Constant` lets the embedded-trigger
    matcher (:func:`repro.chase.embedded_triggers.iter_body_matches`)
    enumerate rule-body homomorphisms over *rows* with the exact same
    algorithm it uses over chase nodes — one matcher, two backings.
    """

    __slots__ = ("conjunct", "row")

    def __init__(self, relation: str, row: Tuple[Any, ...]):
        self.conjunct = Conjunct(relation, [Constant(value) for value in row])
        self.row = row


def _fact_source(database: Database):
    """Per-relation fact lists for the shared body matcher, built lazily."""
    cache: Dict[str, List[_Fact]] = {}

    def facts_for_relation(relation: str) -> Sequence[_Fact]:
        if relation not in cache:
            cache[relation] = [_Fact(relation, row)
                               for row in database.relation(relation)]
        return cache[relation]

    return facts_for_relation


def _iter_row_matches(database: Database, atoms: Sequence[Conjunct],
                      binding: Optional[Dict[Variable, Any]] = None
                      ) -> Iterator[Tuple[Tuple[Tuple[Any, ...], ...],
                                          Dict[Variable, Constant]]]:
    """All homomorphisms of rule atoms into the database's rows.

    Yields the matched rows (one per atom, in order) and the binding,
    whose values are :class:`Constant`-wrapped row values.
    """
    from repro.chase.embedded_triggers import iter_body_matches
    source = _fact_source(database)
    for facts, match_binding in iter_body_matches(atoms, source, binding):
        yield tuple(fact.row for fact in facts), match_binding


def tgd_violations(database: Database, tgd: TGD,
                   limit: Optional[int] = None) -> List[Violation]:
    """All (or the first ``limit``) violations of one general TGD.

    A violation is a body match whose frontier values admit no head
    match; the witness is the matched body rows.

    The TGD is validated against the database's schema first: an atom
    whose arity disagrees with its relation would otherwise prefix-match
    rows silently and report nonsense verdicts.
    """
    tgd.validate(database.schema)
    violations: List[Violation] = []
    frontier = tgd.frontier()
    for rows, binding in _iter_row_matches(database, tgd.body):
        pinned = {variable: binding[variable] for variable in frontier}
        if any(True for _ in _iter_row_matches(database, tgd.head, pinned)):
            continue
        violations.append(Violation(
            dependency=tgd,
            relation=tgd.body[0].relation,
            witness=rows,
            message=(
                f"TGD {tgd} violated: body rows {rows} have no matching "
                "head tuples"
            ),
        ))
        if limit is not None and len(violations) >= limit:
            break
    return violations


def egd_violations(database: Database, egd: EGD,
                   limit: Optional[int] = None) -> List[Violation]:
    """All (or the first ``limit``) violations of one general EGD.

    A violation is a body match binding the two equated variables to
    different values; the witness is the matched body rows.

    The EGD is validated against the database's schema first: a body
    atom longer than its relation would leave its trailing variables
    unbound and surface as a bare ``KeyError`` mid-scan.
    """
    egd.validate(database.schema)
    violations: List[Violation] = []
    for rows, binding in _iter_row_matches(database, egd.body):
        if binding[egd.lhs] == binding[egd.rhs]:
            continue
        violations.append(Violation(
            dependency=egd,
            relation=egd.body[0].relation,
            witness=rows,
            message=(
                f"EGD {egd} violated: body rows {rows} bind {egd.lhs} to "
                f"{binding[egd.lhs].value!r} but {egd.rhs} to "
                f"{binding[egd.rhs].value!r}"
            ),
        ))
        if limit is not None and len(violations) >= limit:
            break
    return violations


def dependency_violations(database: Database, dependency: Dependency,
                          limit: Optional[int] = None) -> List[Violation]:
    """Violations of a single FD, IND, TGD, or EGD."""
    if isinstance(dependency, FunctionalDependency):
        return fd_violations(database, dependency, limit=limit)
    if isinstance(dependency, InclusionDependency):
        return ind_violations(database, dependency, limit=limit)
    if isinstance(dependency, TGD):
        return tgd_violations(database, dependency, limit=limit)
    if isinstance(dependency, EGD):
        return egd_violations(database, dependency, limit=limit)
    raise TypeError(f"unsupported dependency type: {dependency!r}")


def check_database(database: Database,
                   dependencies: Union[DependencySet, Iterable[Dependency]],
                   limit_per_dependency: Optional[int] = None) -> List[Violation]:
    """All violations of every dependency in Σ (possibly limited per dependency)."""
    violations: List[Violation] = []
    for dependency in dependencies:
        violations.extend(
            dependency_violations(database, dependency, limit=limit_per_dependency)
        )
    return violations


def database_satisfies(database: Database,
                       dependencies: Union[DependencySet, Iterable[Dependency]]) -> bool:
    """True if the database obeys every dependency in Σ."""
    for dependency in dependencies:
        if dependency_violations(database, dependency, limit=1):
            return False
    return True
