"""Schema-design analysis: keys, normal forms, and key-based repair.

The paper's "key-based" class is motivated by design practice: "databases
are often specifically designed so that the FDs determine a key for each
relation".  This module provides the design-side tooling that connects a
declared FD set to that practice:

* per-relation candidate keys and Boyce–Codd / third normal form checks;
* a report of which relations stop a dependency set from being key-based
  and why (missing keys, non-key FD left-hand sides, INDs that do not
  target keys or leave the source key);
* :func:`suggest_key_based_repair` — the FDs one would have to add (key
  declarations) to make condition (a) of the key-based definition hold,
  which is how the workload generators build key-based sets in the first
  place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set

from repro.dependencies.dependency_set import DependencySet
from repro.dependencies.fd_inference import candidate_keys, is_superkey
from repro.dependencies.functional import FunctionalDependency
from repro.relational.schema import DatabaseSchema, RelationSchema


@dataclass
class RelationDesignReport:
    """Normal-form facts about one relation under the declared FDs."""

    relation: str
    candidate_keys: List[FrozenSet[str]]
    violating_fds_bcnf: List[FunctionalDependency]
    violating_fds_3nf: List[FunctionalDependency]

    @property
    def in_bcnf(self) -> bool:
        return not self.violating_fds_bcnf

    @property
    def in_3nf(self) -> bool:
        return not self.violating_fds_3nf


def relation_design_report(relation: RelationSchema,
                           fds: Sequence[FunctionalDependency],
                           schema: DatabaseSchema) -> RelationDesignReport:
    """Candidate keys plus BCNF / 3NF violations for one relation."""
    local_fds = [fd for fd in fds if fd.relation == relation.name]
    keys = candidate_keys(relation, local_fds, schema)
    prime_attributes: Set[str] = set()
    for key in keys:
        prime_attributes.update(key)
    bcnf_violations: List[FunctionalDependency] = []
    tnf_violations: List[FunctionalDependency] = []
    for fd in local_fds:
        if fd.is_trivial:
            continue
        lhs = fd.lhs_names(schema)
        if is_superkey(lhs, relation, local_fds, schema):
            continue
        bcnf_violations.append(fd)
        if fd.rhs_name(schema) not in prime_attributes:
            tnf_violations.append(fd)
    return RelationDesignReport(
        relation=relation.name,
        candidate_keys=keys,
        violating_fds_bcnf=bcnf_violations,
        violating_fds_3nf=tnf_violations,
    )


@dataclass
class KeyBasedDiagnosis:
    """Why a dependency set is (or is not) key-based."""

    key_based: bool
    problems: List[str] = field(default_factory=list)
    keys: Dict[str, FrozenSet[str]] = field(default_factory=dict)

    def describe(self) -> str:
        if self.key_based:
            keyed = ", ".join(f"{relation}({', '.join(sorted(key))})"
                              for relation, key in sorted(self.keys.items()))
            return f"the dependency set is key-based; keys: {keyed}"
        lines = ["the dependency set is NOT key-based:"]
        lines.extend(f"  - {problem}" for problem in self.problems)
        return "\n".join(lines)


def diagnose_key_based(dependencies: DependencySet,
                       schema: Optional[DatabaseSchema] = None) -> KeyBasedDiagnosis:
    """Explain the key-based test's verdict, problem by problem."""
    target = schema or dependencies.schema
    if target is None:
        raise ValueError("a schema is required for the key-based diagnosis")
    problems: List[str] = []
    keys: Dict[str, FrozenSet[str]] = {}

    for relation_name in sorted({fd.relation for fd in dependencies.functional_dependencies()}):
        fds = dependencies.fds_for(relation_name)
        lhs_sets = {fd.lhs_names(target) for fd in fds}
        if len(lhs_sets) > 1:
            problems.append(
                f"relation {relation_name} has FDs with different left-hand sides: "
                + ", ".join(str(sorted(lhs)) for lhs in sorted(lhs_sets, key=sorted)))
            continue
        key = next(iter(lhs_sets))
        keys[relation_name] = key
        relation = target.relation(relation_name)
        covered = {fd.rhs_name(target) for fd in fds}
        uncovered = [attribute for attribute in relation.attribute_names
                     if attribute not in key and attribute not in covered]
        if uncovered:
            problems.append(
                f"relation {relation_name}: attributes {uncovered} are neither in the "
                f"key {sorted(key)} nor determined by it")

    for ind in dependencies.inclusion_dependencies():
        target_key = keys.get(ind.rhs_relation)
        if target_key is None:
            problems.append(
                f"IND {ind}: target relation {ind.rhs_relation} has no declared key "
                "(no FDs)")
        elif not ind.rhs_names(target) <= target_key:
            problems.append(
                f"IND {ind}: its right-hand side is not contained in the key "
                f"{sorted(target_key)} of {ind.rhs_relation}")
        source_key = keys.get(ind.lhs_relation)
        if source_key is not None and ind.lhs_names(target) & source_key:
            problems.append(
                f"IND {ind}: its left-hand side overlaps the key "
                f"{sorted(source_key)} of {ind.lhs_relation}")

    if not dependencies.functional_dependencies() and not dependencies.inclusion_dependencies():
        problems.append("the dependency set is empty")

    return KeyBasedDiagnosis(key_based=not problems and len(dependencies) > 0,
                             problems=problems, keys=keys)


def suggest_key_based_repair(dependencies: DependencySet,
                             schema: Optional[DatabaseSchema] = None
                             ) -> List[FunctionalDependency]:
    """FDs to add so that condition (a) of the key-based definition holds.

    For every relation that is the target of an IND (or already has FDs),
    choose a key — the existing common FD left-hand side when there is
    one, otherwise the smallest candidate key under the declared FDs,
    otherwise the IND's target columns — and return the missing
    ``key → attribute`` FDs.  Condition (b) (INDs targeting keys and
    leaving source keys) may still fail; the diagnosis reports that
    separately because it cannot be fixed by *adding* dependencies.
    """
    target = schema or dependencies.schema
    if target is None:
        raise ValueError("a schema is required to suggest a repair")
    additions: List[FunctionalDependency] = []
    relations_needing_keys: Dict[str, FrozenSet[str]] = {}

    for relation_name in {fd.relation for fd in dependencies.functional_dependencies()}:
        try:
            key = dependencies.key_of(relation_name, target)
        except Exception:
            continue
        if key is not None:
            relations_needing_keys[relation_name] = key

    for ind in dependencies.inclusion_dependencies():
        if ind.rhs_relation not in relations_needing_keys:
            relation = target.relation(ind.rhs_relation)
            fds = dependencies.fds_for(ind.rhs_relation)
            if fds:
                keys = candidate_keys(relation, fds, target)
                chosen = keys[0] if keys else ind.rhs_names(target)
            else:
                chosen = ind.rhs_names(target)
            relations_needing_keys[ind.rhs_relation] = frozenset(chosen)

    existing = {(fd.relation, fd.lhs_names(target), fd.rhs_name(target))
                for fd in dependencies.functional_dependencies()}
    for relation_name, key in relations_needing_keys.items():
        relation = target.relation(relation_name)
        for attribute in relation.attribute_names:
            if attribute in key:
                continue
            signature = (relation_name, frozenset(key), attribute)
            if signature in existing:
                continue
            additions.append(FunctionalDependency(relation_name, sorted(key), attribute))
    return additions
