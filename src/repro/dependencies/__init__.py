"""Functional and inclusion dependencies.

The paper studies two classes of dependencies:

* **functional dependencies (FDs)** ``R: Z → A`` — no two tuples of R agree
  on Z but differ on A;
* **inclusion dependencies (INDs)** ``R[X] ⊆ S[Y]`` — every X-subtuple of R
  appears as a Y-subtuple of S; the *width* of the IND is ``|X| = |Y|``.

A set of FDs and INDs is *key-based* (Section 2) when (a) for each relation
all its FDs share one left-hand side Z and every non-Z attribute is some
FD's right-hand side, and (b) every IND's right-hand side is contained in
the key of its target relation while its left-hand side is disjoint from
the key of its source relation.

Both are special cases of the general *embedded* dependencies — TGDs and
EGDs with arbitrary CQ bodies and heads (``repro.dependencies.embedded``)
— which a :class:`DependencySet` accepts alongside them; FDs normalise to
EGDs and INDs to single-atom TGDs via
:meth:`DependencySet.normalized_embedded`.

This package provides the dependency objects, dependency sets with the
classifications the containment procedures dispatch on, inference for FDs
(attribute closure) and INDs (the Casanova–Fagin–Papadimitriou axioms and
the reduction to containment from Corollary 2.3), and violation checking
on finite database instances.
"""

from repro.dependencies.embedded import EGD, TGD
from repro.dependencies.functional import FunctionalDependency
from repro.dependencies.inclusion import InclusionDependency
from repro.dependencies.dependency_set import DependencyClass, DependencySet
from repro.dependencies.fd_inference import (
    attribute_closure,
    candidate_keys,
    fd_implies,
    is_superkey,
    minimal_cover,
)
from repro.dependencies.ind_inference import (
    derive_ind_closure,
    ind_implied_by_axioms,
)
from repro.dependencies.normalization import (
    KeyBasedDiagnosis,
    RelationDesignReport,
    diagnose_key_based,
    relation_design_report,
    suggest_key_based_repair,
)
from repro.dependencies.violations import (
    Violation,
    check_database,
    database_satisfies,
    fd_violations,
    ind_violations,
)

__all__ = [
    "DependencyClass",
    "DependencySet",
    "EGD",
    "FunctionalDependency",
    "InclusionDependency",
    "TGD",
    "KeyBasedDiagnosis",
    "RelationDesignReport",
    "Violation",
    "attribute_closure",
    "candidate_keys",
    "check_database",
    "database_satisfies",
    "derive_ind_closure",
    "diagnose_key_based",
    "fd_implies",
    "fd_violations",
    "ind_implied_by_axioms",
    "ind_violations",
    "is_superkey",
    "minimal_cover",
    "relation_design_report",
    "suggest_key_based_repair",
]
