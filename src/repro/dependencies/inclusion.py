"""Inclusion dependencies ``R[X] ⊆ S[Y]``.

A database obeys ``R[J1..Jj] ⊆ S[K1..Kj]`` if for every subtuple occurring
in columns J1..Jj of some tuple of R there is a tuple of S containing that
subtuple in columns K1..Kj.  The *width* of the IND is j, the number of
attributes on either side; the paper's complexity bounds are parameterised
by the maximum width W.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Sequence, Tuple

from repro.exceptions import DependencyError
from repro.relational.schema import AttributeRef, DatabaseSchema


@dataclass(frozen=True)
class InclusionDependency:
    """An IND ``lhs_relation[lhs_attributes] ⊆ rhs_relation[rhs_attributes]``."""

    lhs_relation: str
    lhs_attributes: Tuple[AttributeRef, ...]
    rhs_relation: str
    rhs_attributes: Tuple[AttributeRef, ...]

    def __init__(self, lhs_relation: str, lhs_attributes: Sequence[AttributeRef],
                 rhs_relation: str, rhs_attributes: Sequence[AttributeRef]):
        lhs = tuple(lhs_attributes)
        rhs = tuple(rhs_attributes)
        if not lhs_relation or not rhs_relation:
            raise DependencyError("an IND must name relations on both sides")
        if not lhs or not rhs:
            raise DependencyError("an IND must list at least one attribute on each side")
        if len(lhs) != len(rhs):
            raise DependencyError(
                f"IND sides have different widths: {lhs} vs {rhs}"
            )
        if len(set(lhs)) != len(lhs):
            raise DependencyError(f"IND left-hand side repeats attributes: {lhs}")
        if len(set(rhs)) != len(rhs):
            raise DependencyError(f"IND right-hand side repeats attributes: {rhs}")
        object.__setattr__(self, "lhs_relation", lhs_relation)
        object.__setattr__(self, "lhs_attributes", lhs)
        object.__setattr__(self, "rhs_relation", rhs_relation)
        object.__setattr__(self, "rhs_attributes", rhs)

    # -- rendering ---------------------------------------------------------------

    def __str__(self) -> str:
        left = ", ".join(str(a) for a in self.lhs_attributes)
        right = ", ".join(str(a) for a in self.rhs_attributes)
        return f"{self.lhs_relation}[{left}] <= {self.rhs_relation}[{right}]"

    # -- structural properties --------------------------------------------------------

    @property
    def width(self) -> int:
        """The number of attributes on either side of the IND."""
        return len(self.lhs_attributes)

    @property
    def is_unary(self) -> bool:
        """True for width-1 INDs (the finitely controllable IND class)."""
        return self.width == 1

    @property
    def is_trivial(self) -> bool:
        """True for INDs of the form R[X] ⊆ R[X]."""
        return (
            self.lhs_relation == self.rhs_relation
            and self.lhs_attributes == self.rhs_attributes
        )

    # -- schema resolution ---------------------------------------------------------------

    def validate(self, schema: DatabaseSchema) -> None:
        """Raise DependencyError unless the IND fits the schema."""
        for relation_name, attributes in (
            (self.lhs_relation, self.lhs_attributes),
            (self.rhs_relation, self.rhs_attributes),
        ):
            if relation_name not in schema:
                raise DependencyError(f"IND {self} refers to unknown relation {relation_name!r}")
            relation = schema.relation(relation_name)
            for attribute in attributes:
                relation.position_of(attribute)  # raises SchemaError on failure

    def lhs_positions(self, schema: DatabaseSchema) -> Tuple[int, ...]:
        """0-based columns of the left-hand side in the source relation."""
        return schema.relation(self.lhs_relation).positions_of(self.lhs_attributes)

    def rhs_positions(self, schema: DatabaseSchema) -> Tuple[int, ...]:
        """0-based columns of the right-hand side in the target relation."""
        return schema.relation(self.rhs_relation).positions_of(self.rhs_attributes)

    def lhs_names(self, schema: DatabaseSchema) -> FrozenSet[str]:
        relation = schema.relation(self.lhs_relation)
        return frozenset(
            relation.attribute_name_at(p) for p in self.lhs_positions(schema)
        )

    def rhs_names(self, schema: DatabaseSchema) -> FrozenSet[str]:
        relation = schema.relation(self.rhs_relation)
        return frozenset(
            relation.attribute_name_at(p) for p in self.rhs_positions(schema)
        )

    # -- normalization -----------------------------------------------------------------

    def as_tgd(self, schema: DatabaseSchema) -> "TGD":
        """This IND as the single-atom tuple-generating dependency it abbreviates.

        ``R[X] ⊆ S[Y]`` becomes ``R(x1..xm) → S(...)`` where the Y columns
        of the head carry the X-column body variables and every other head
        column carries a fresh existential variable::

            R(x1, x2) -> S(x2, y2)                      # R[2] <= S[1]

        The chase of the TGD creates the same atoms (same copied values,
        same fresh-NDV columns) the IND chase rule creates, so the two
        forms yield identical verdicts.
        """
        from repro.dependencies.embedded import TGD
        from repro.queries.conjunct import Conjunct
        from repro.terms.term import Variable

        lhs_positions = self.lhs_positions(schema)
        rhs_positions = self.rhs_positions(schema)
        source_arity = schema.relation(self.lhs_relation).arity
        target_arity = schema.relation(self.rhs_relation).arity
        body_terms = [Variable(f"x{position + 1}") for position in range(source_arity)]
        head_terms = [body_terms[lhs_positions[rhs_positions.index(position)]]
                      if position in rhs_positions else Variable(f"y{position + 1}")
                      for position in range(target_arity)]
        return TGD(body=[Conjunct(self.lhs_relation, body_terms)],
                   head=[Conjunct(self.rhs_relation, head_terms)])

    # -- derived dependencies -----------------------------------------------------------

    def projected(self, index_sequence: Sequence[int]) -> "InclusionDependency":
        """Projection-and-permutation (a CFP inference axiom).

        ``index_sequence`` selects positions (0-based, distinct) of the
        current attribute lists; the resulting IND keeps corresponding
        attributes on both sides.
        """
        if len(set(index_sequence)) != len(index_sequence):
            raise DependencyError("projection indices must be distinct")
        if not index_sequence:
            raise DependencyError("projection must keep at least one attribute")
        for index in index_sequence:
            if not 0 <= index < self.width:
                raise DependencyError(
                    f"projection index {index} out of range for IND of width {self.width}"
                )
        return InclusionDependency(
            self.lhs_relation,
            tuple(self.lhs_attributes[i] for i in index_sequence),
            self.rhs_relation,
            tuple(self.rhs_attributes[i] for i in index_sequence),
        )

    def composed_with(self, other: "InclusionDependency") -> "InclusionDependency":
        """Transitivity (a CFP inference axiom): R[X] ⊆ S[Y], S[Y] ⊆ T[Z] gives R[X] ⊆ T[Z].

        ``other`` must start exactly where this IND ends (same relation and
        attribute list); otherwise a DependencyError is raised.
        """
        if (self.rhs_relation != other.lhs_relation
                or self.rhs_attributes != other.lhs_attributes):
            raise DependencyError(
                f"cannot compose {self} with {other}: sides do not match"
            )
        return InclusionDependency(
            self.lhs_relation, self.lhs_attributes,
            other.rhs_relation, other.rhs_attributes,
        )

    @classmethod
    def reflexive(cls, relation: str, attributes: Sequence[AttributeRef]) -> "InclusionDependency":
        """Reflexivity (a CFP inference axiom): R[X] ⊆ R[X]."""
        return cls(relation, tuple(attributes), relation, tuple(attributes))
