"""Functional dependencies ``R: Z → A``.

The paper's FDs have a set-valued left-hand side and a single attribute on
the right-hand side; a database obeys the FD if no two tuples of R have
identical Z-values and different A-values.  Attributes may be referenced by
name or 1-based position (resolved against a schema when one is supplied).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Sequence, Tuple

from repro.exceptions import DependencyError
from repro.relational.schema import AttributeRef, DatabaseSchema, RelationSchema


@dataclass(frozen=True)
class FunctionalDependency:
    """An FD ``relation: lhs → rhs`` with a single right-hand-side attribute."""

    relation: str
    lhs: Tuple[AttributeRef, ...]
    rhs: AttributeRef

    def __init__(self, relation: str, lhs: Sequence[AttributeRef], rhs: AttributeRef):
        if not relation:
            raise DependencyError("an FD must name a relation")
        lhs_tuple = tuple(lhs)
        if not lhs_tuple:
            raise DependencyError(f"FD on {relation!r} must have a non-empty left-hand side")
        if len(set(lhs_tuple)) != len(lhs_tuple):
            raise DependencyError(
                f"FD on {relation!r} has repeated attributes on its left-hand side: {lhs_tuple}"
            )
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "lhs", lhs_tuple)
        object.__setattr__(self, "rhs", rhs)

    # -- rendering ------------------------------------------------------------

    def __str__(self) -> str:
        left = ", ".join(str(a) for a in self.lhs)
        return f"{self.relation}: {left} -> {self.rhs}"

    @property
    def is_trivial(self) -> bool:
        """True if the right-hand side already appears on the left."""
        return self.rhs in self.lhs

    # -- schema resolution ---------------------------------------------------------

    def validate(self, schema: DatabaseSchema) -> None:
        """Raise DependencyError unless the FD fits the schema."""
        if self.relation not in schema:
            raise DependencyError(f"FD {self} refers to unknown relation {self.relation!r}")
        relation = schema.relation(self.relation)
        for attribute in self.lhs + (self.rhs,):
            relation.position_of(attribute)  # raises SchemaError on failure

    def lhs_positions(self, relation: RelationSchema) -> Tuple[int, ...]:
        """0-based columns of the left-hand side."""
        return relation.positions_of(self.lhs)

    def rhs_position(self, relation: RelationSchema) -> int:
        """0-based column of the right-hand side."""
        return relation.position_of(self.rhs)

    def lhs_names(self, schema: DatabaseSchema) -> FrozenSet[str]:
        """Left-hand-side attributes as names, resolved against the schema."""
        relation = schema.relation(self.relation)
        return frozenset(
            relation.attribute_name_at(position) for position in self.lhs_positions(relation)
        )

    def rhs_name(self, schema: DatabaseSchema) -> str:
        """Right-hand-side attribute as a name, resolved against the schema."""
        relation = schema.relation(self.relation)
        return relation.attribute_name_at(self.rhs_position(relation))

    # -- normalization -----------------------------------------------------------------

    def as_egd(self, schema: DatabaseSchema) -> "EGD":
        """This FD as the equality-generating dependency it abbreviates.

        ``R: Z → A`` becomes the two-atom EGD over R whose atoms share
        fresh variables exactly at the Z columns and whose head equates
        the two A-column variables::

            R(x1, x2, x3), R(x1, y2, y3) -> x2 = y2     # R: 1 -> 2

        The chase of the EGD performs the identical merges the FD chase
        rule performs, so the two forms yield identical verdicts.  A
        trivial FD (``A ∈ Z``) is a tautology with no EGD form and is
        rejected; :meth:`DependencySet.normalized_embedded` skips such
        FDs instead of calling this.
        """
        from repro.dependencies.embedded import EGD
        from repro.queries.conjunct import Conjunct
        from repro.terms.term import Variable

        if self.is_trivial:
            raise DependencyError(
                f"trivial FD {self} is a tautology and has no EGD form")
        relation = schema.relation(self.relation)
        lhs_positions = set(self.lhs_positions(relation))
        rhs_position = self.rhs_position(relation)
        first = [Variable(f"x{position + 1}") for position in range(relation.arity)]
        second = [first[position] if position in lhs_positions
                  else Variable(f"y{position + 1}")
                  for position in range(relation.arity)]
        return EGD(
            body=[Conjunct(self.relation, first), Conjunct(self.relation, second)],
            lhs=first[rhs_position], rhs=second[rhs_position],
        )

    # -- convenience constructors ------------------------------------------------------

    @classmethod
    def key(cls, relation: RelationSchema, key_attributes: Sequence[AttributeRef]) -> List["FunctionalDependency"]:
        """FDs declaring ``key_attributes`` a key of the relation.

        One FD ``relation: key → A`` is produced for every non-key attribute
        A, which is exactly the "key-based" shape of condition (a) in the
        paper's definition.
        """
        key_positions = set(relation.positions_of(key_attributes))
        dependencies = []
        for position, attribute in enumerate(relation.attributes):
            if position in key_positions:
                continue
            dependencies.append(cls(relation.name, tuple(key_attributes), attribute.name))
        return dependencies

    @classmethod
    def expand_multi_rhs(cls, relation: str, lhs: Sequence[AttributeRef],
                         rhs_attributes: Iterable[AttributeRef]) -> List["FunctionalDependency"]:
        """Split ``Z → A1 A2 ...`` into the paper's single-RHS FDs."""
        return [cls(relation, lhs, rhs) for rhs in rhs_attributes]
