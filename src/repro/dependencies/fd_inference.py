"""Inference for functional dependencies.

The paper notes that the inference problem for FDs alone is solvable in
polynomial time; the standard algorithm is the attribute-closure
computation, which this module implements together with the derived
notions the rest of the library needs: implication of an FD, superkey and
candidate-key computation, and minimal covers.  All functions work on the
FDs of a single relation (FDs never cross relations).
"""

from __future__ import annotations

from itertools import combinations
from typing import FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.dependencies.functional import FunctionalDependency
from repro.exceptions import DependencyError
from repro.relational.schema import DatabaseSchema, RelationSchema


def _resolve_names(fds: Sequence[FunctionalDependency], schema: DatabaseSchema) -> List[Tuple[FrozenSet[str], str]]:
    """FDs of one relation as (lhs-names, rhs-name) pairs."""
    return [(fd.lhs_names(schema), fd.rhs_name(schema)) for fd in fds]


def _require_single_relation(fds: Sequence[FunctionalDependency]) -> str:
    relations = {fd.relation for fd in fds}
    if len(relations) > 1:
        raise DependencyError(
            f"FD inference works per relation; got FDs over {sorted(relations)}"
        )
    return next(iter(relations)) if relations else ""


def attribute_closure(attributes: Iterable[str], fds: Sequence[FunctionalDependency],
                      schema: DatabaseSchema) -> FrozenSet[str]:
    """The closure X+ of an attribute set under a relation's FDs.

    Standard fixpoint: add the right-hand side of every FD whose left-hand
    side is already contained in the closure, until nothing changes.
    """
    _require_single_relation(fds)
    resolved = _resolve_names(fds, schema) if fds else []
    closure: Set[str] = set(attributes)
    changed = True
    while changed:
        changed = False
        for lhs, rhs in resolved:
            if rhs not in closure and lhs <= closure:
                closure.add(rhs)
                changed = True
    return frozenset(closure)


def fd_implies(fds: Sequence[FunctionalDependency], candidate: FunctionalDependency,
               schema: DatabaseSchema) -> bool:
    """True if ``candidate`` is a logical consequence of ``fds``.

    ``X → A`` follows from F iff A is in the closure of X under F (or the
    candidate is trivial).
    """
    if candidate.is_trivial:
        return True
    relation_fds = [fd for fd in fds if fd.relation == candidate.relation]
    closure = attribute_closure(candidate.lhs_names(schema), relation_fds, schema)
    return candidate.rhs_name(schema) in closure


def is_superkey(attributes: Iterable[str], relation: RelationSchema,
                fds: Sequence[FunctionalDependency], schema: DatabaseSchema) -> bool:
    """True if the attribute set functionally determines every attribute."""
    closure = attribute_closure(attributes, [fd for fd in fds if fd.relation == relation.name], schema)
    return set(relation.attribute_names) <= closure


def candidate_keys(relation: RelationSchema, fds: Sequence[FunctionalDependency],
                   schema: DatabaseSchema) -> List[FrozenSet[str]]:
    """All minimal superkeys of the relation, smallest first.

    Exhaustive over subsets of the attribute set — adequate for the small
    schemas of the paper's setting (and of the benchmarks), not for
    arbitrary wide tables.
    """
    attributes = relation.attribute_names
    keys: List[FrozenSet[str]] = []
    for size in range(1, len(attributes) + 1):
        for subset in combinations(attributes, size):
            candidate = frozenset(subset)
            if any(key <= candidate for key in keys):
                continue
            if is_superkey(candidate, relation, fds, schema):
                keys.append(candidate)
    return keys


def remove_redundant_fds(fds: Sequence[FunctionalDependency],
                         schema: DatabaseSchema) -> List[FunctionalDependency]:
    """Drop FDs implied by the remaining ones (one pass, order-dependent)."""
    remaining = list(fds)
    index = 0
    while index < len(remaining):
        candidate = remaining[index]
        others = remaining[:index] + remaining[index + 1:]
        if fd_implies(others, candidate, schema):
            remaining = others
        else:
            index += 1
    return remaining


def reduce_lhs(fd: FunctionalDependency, fds: Sequence[FunctionalDependency],
               schema: DatabaseSchema) -> FunctionalDependency:
    """Remove extraneous attributes from an FD's left-hand side."""
    current = list(fd.lhs_names(schema))
    rhs = fd.rhs_name(schema)
    changed = True
    while changed and len(current) > 1:
        changed = False
        for attribute in list(current):
            reduced = [a for a in current if a != attribute]
            candidate = FunctionalDependency(fd.relation, reduced, rhs)
            if fd_implies(fds, candidate, schema):
                current = reduced
                changed = True
                break
    return FunctionalDependency(fd.relation, current, rhs)


def minimal_cover(fds: Sequence[FunctionalDependency],
                  schema: DatabaseSchema) -> List[FunctionalDependency]:
    """A minimal cover: equivalent set with reduced left sides, no redundancy.

    The FDs already have singleton right-hand sides (the paper's form), so
    the classical three-step procedure reduces to left-reduction followed by
    removal of redundant FDs.
    """
    left_reduced = [reduce_lhs(fd, list(fds), schema) for fd in fds]
    # Deduplicate while keeping order.
    unique: List[FunctionalDependency] = []
    for fd in left_reduced:
        if fd not in unique:
            unique.append(fd)
    return remove_redundant_fds(unique, schema)


def equivalent_fd_sets(first: Sequence[FunctionalDependency],
                       second: Sequence[FunctionalDependency],
                       schema: DatabaseSchema) -> bool:
    """True if the two FD sets imply each other."""
    return (
        all(fd_implies(first, fd, schema) for fd in second)
        and all(fd_implies(second, fd, schema) for fd in first)
    )
