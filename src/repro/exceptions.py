"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still being able to distinguish schema problems from chase or containment
problems when they need to.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A relation or database schema is malformed or violated.

    Raised, for example, when a tuple has the wrong arity for its relation,
    when two relations in a database schema share a name, or when an
    attribute referenced by a query or dependency does not exist.
    """


class QueryError(ReproError):
    """A conjunctive query is malformed.

    Raised when a conjunct does not match its relation's arity, when the
    summary row mentions a symbol that is not a distinguished variable or a
    constant, or when two queries that must share schemas do not.
    """


class DependencyError(ReproError):
    """A functional or inclusion dependency is malformed.

    Raised when a dependency references attributes missing from its
    relation, when an inclusion dependency's two sides have different
    widths, or when an operation requires a key-based or IND-only set and
    the supplied set is neither.
    """


class ChaseError(ReproError):
    """The chase construction failed or was used incorrectly.

    Raised when a chase step is applied to a conjunct it does not match,
    or when an FD chase application would need to merge two distinct
    constants (the paper's "delete all conjuncts and halt" case) and the
    caller asked for that situation to be an error.
    """


class ChaseBudgetExceeded(ChaseError):
    """A bounded chase construction hit its conjunct or level budget.

    The partial chase built so far is attached as :attr:`partial`, so
    callers that treat the budget as a soft limit can still inspect what
    was constructed.
    """

    def __init__(self, message: str, partial=None):
        super().__init__(message)
        self.partial = partial


class ContainmentUndecided(ReproError):
    """The containment procedure could not reach a definite answer.

    This only happens for dependency sets outside the paper's decidable
    cases (neither IND-only nor key-based) when the bounded chase hits its
    budget before either finding a homomorphism or saturating.
    """


class ParseError(ReproError):
    """A textual query, dependency, or schema could not be parsed."""

    def __init__(self, message: str, text: str = "", position: int = -1):
        location = f" at position {position}" if position >= 0 else ""
        super().__init__(f"{message}{location}")
        self.text = text
        self.position = position


class EvaluationError(ReproError):
    """A query could not be evaluated against a database instance."""


class ViewError(ReproError):
    """A view definition or view catalog is malformed.

    Raised when a view's head contains anything but pairwise distinct
    distinguished variables, when a view name collides with a base relation
    or another view, or when a query handed to the expansion or rewriting
    machinery does not fit the catalog's extended schema.
    """


class IntegrityError(ReproError):
    """A database instance violates a declared dependency.

    Raised by the storage engine when integrity enforcement is enabled and
    an insert (or a bulk load) would leave the instance violating one of
    the declared functional or inclusion dependencies.
    """
