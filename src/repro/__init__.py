"""repro — conjunctive-query containment under FDs and INDs.

A from-scratch, laptop-scale reproduction of

    D. S. Johnson and A. Klug,
    "Testing Containment of Conjunctive Queries under Functional and
    Inclusion Dependencies", PODS 1982 / JCSS 28 (1984) 167-189.

The package provides the relational model, conjunctive queries, functional
and inclusion dependencies, the O-chase and R-chase of Section 3, the
Theorem 2 bounded-chase containment procedure with verifiable
certificates, equivalence and minimization under dependencies, and the
Section 4 finite-containment tooling, plus an in-memory storage engine, a
textual parser, and workload generators used by the examples and
benchmarks.

Quickstart::

    from repro import (
        DatabaseSchema, QueryBuilder, DependencySet, InclusionDependency,
        is_contained,
    )

    schema = DatabaseSchema.from_dict(
        {"EMP": ["emp", "sal", "dept"], "DEP": ["dept", "loc"]})
    q1 = (QueryBuilder(schema, "Q1").head("e")
          .atom("EMP", "e", "s", "d").atom("DEP", "d", "l").build())
    q2 = (QueryBuilder(schema, "Q2").head("e")
          .atom("EMP", "e", "s", "d").build())
    sigma = DependencySet(
        [InclusionDependency("EMP", ["dept"], "DEP", ["dept"])], schema=schema)

    assert is_contained(q2, q1, sigma).holds      # needs the IND
    assert is_contained(q2, q1).holds is False    # fails without it
"""

from repro.exceptions import (
    ChaseBudgetExceeded,
    ChaseError,
    ContainmentUndecided,
    DependencyError,
    EvaluationError,
    IntegrityError,
    ParseError,
    QueryError,
    ReproError,
    SchemaError,
)
from repro.relational import (
    Attribute,
    Database,
    DatabaseSchema,
    Domain,
    RelationInstance,
    RelationSchema,
)
from repro.terms import (
    Constant,
    DistinguishedVariable,
    FreshVariableFactory,
    NonDistinguishedVariable,
    Substitution,
    Variable,
)
from repro.queries import (
    Conjunct,
    ConjunctiveQuery,
    QueryBuilder,
    QueryGraph,
    canonical_database,
    core_of,
    evaluate,
    is_minimal,
    minimize,
)
from repro.dependencies import (
    DependencySet,
    FunctionalDependency,
    InclusionDependency,
    attribute_closure,
    check_database,
    database_satisfies,
    fd_implies,
    ind_implied_by_axioms,
)
from repro.chase import (
    ChaseConfig,
    ChaseResult,
    ChaseVariant,
    chase,
    chase_instance,
    fd_chase_query,
    o_chase,
    r_chase,
)
from repro.containment import (
    ContainmentCertificate,
    ContainmentResult,
    are_equivalent,
    contains,
    finite_containment_sample,
    is_contained,
    is_minimal_under,
    k_sigma,
    minimize_under,
    section4_counterexample,
    theorem2_level_bound,
)
from repro.optimizer import OptimizationReport, optimize

__version__ = "1.0.0"

__all__ = [
    "Attribute",
    "ChaseBudgetExceeded",
    "ChaseConfig",
    "ChaseError",
    "ChaseResult",
    "ChaseVariant",
    "Conjunct",
    "ConjunctiveQuery",
    "Constant",
    "ContainmentCertificate",
    "ContainmentResult",
    "ContainmentUndecided",
    "Database",
    "DatabaseSchema",
    "DependencyError",
    "DependencySet",
    "DistinguishedVariable",
    "Domain",
    "EvaluationError",
    "FreshVariableFactory",
    "FunctionalDependency",
    "InclusionDependency",
    "IntegrityError",
    "NonDistinguishedVariable",
    "OptimizationReport",
    "ParseError",
    "QueryBuilder",
    "QueryError",
    "QueryGraph",
    "RelationInstance",
    "RelationSchema",
    "ReproError",
    "SchemaError",
    "Substitution",
    "Variable",
    "are_equivalent",
    "attribute_closure",
    "canonical_database",
    "chase",
    "chase_instance",
    "check_database",
    "contains",
    "core_of",
    "database_satisfies",
    "evaluate",
    "fd_chase_query",
    "fd_implies",
    "finite_containment_sample",
    "ind_implied_by_axioms",
    "is_contained",
    "is_minimal",
    "is_minimal_under",
    "k_sigma",
    "minimize",
    "minimize_under",
    "o_chase",
    "optimize",
    "r_chase",
    "section4_counterexample",
    "theorem2_level_bound",
]
