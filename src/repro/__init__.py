"""repro — conjunctive-query containment under FDs and INDs.

A from-scratch, laptop-scale reproduction of

    D. S. Johnson and A. Klug,
    "Testing Containment of Conjunctive Queries under Functional and
    Inclusion Dependencies", PODS 1982 / JCSS 28 (1984) 167-189.

The package provides the relational model, conjunctive queries, functional
and inclusion dependencies, the O-chase and R-chase of Section 3, the
Theorem 2 bounded-chase containment procedure with verifiable
certificates, equivalence and minimization under dependencies, and the
Section 4 finite-containment tooling, plus an in-memory storage engine, a
textual parser, and workload generators used by the examples and
benchmarks.

Quickstart — build one :class:`~repro.api.Solver` per session and submit
typed requests; answers are cached across calls::

    from repro import (
        DatabaseSchema, QueryBuilder, DependencySet, InclusionDependency,
        ContainmentRequest, Solver,
    )

    schema = DatabaseSchema.from_dict(
        {"EMP": ["emp", "sal", "dept"], "DEP": ["dept", "loc"]})
    q1 = (QueryBuilder(schema, "Q1").head("e")
          .atom("EMP", "e", "s", "d").atom("DEP", "d", "l").build())
    q2 = (QueryBuilder(schema, "Q2").head("e")
          .atom("EMP", "e", "s", "d").build())
    sigma = DependencySet(
        [InclusionDependency("EMP", ["dept"], "DEP", ["dept"])], schema=schema)

    solver = Solver()
    response = solver.solve(ContainmentRequest(q2, q1, sigma))
    assert response.holds                 # needs the IND
    assert not response.cache_hit         # first time: computed
    assert solver.solve(ContainmentRequest(q2, q1, sigma)).cache_hit

The classic functional API works as before (and now shares a default
Solver's caches behind the scenes)::

    from repro import is_contained

    assert is_contained(q2, q1, sigma).holds      # needs the IND
    assert is_contained(q2, q1).holds is False    # fails without it
"""

from repro.exceptions import (
    ChaseBudgetExceeded,
    ChaseError,
    ContainmentUndecided,
    DependencyError,
    EvaluationError,
    IntegrityError,
    ParseError,
    QueryError,
    ReproError,
    SchemaError,
    ViewError,
)
from repro.relational import (
    Attribute,
    Database,
    DatabaseSchema,
    Domain,
    RelationInstance,
    RelationSchema,
)
from repro.terms import (
    Constant,
    DistinguishedVariable,
    FreshVariableFactory,
    NonDistinguishedVariable,
    Substitution,
    Variable,
)
from repro.queries import (
    Conjunct,
    ConjunctiveQuery,
    QueryBuilder,
    QueryGraph,
    canonical_database,
    core_of,
    evaluate,
    is_minimal,
    minimize,
)
from repro.dependencies import (
    EGD,
    TGD,
    DependencySet,
    FunctionalDependency,
    InclusionDependency,
    attribute_closure,
    check_database,
    database_satisfies,
    fd_implies,
    ind_implied_by_axioms,
)
from repro.chase import (
    ChaseConfig,
    ChaseResult,
    ChaseVariant,
    chase,
    chase_instance,
    fd_chase_query,
    o_chase,
    r_chase,
)
from repro.containment import (
    ContainmentCertificate,
    ContainmentResult,
    are_equivalent,
    contains,
    finite_containment_sample,
    is_contained,
    is_minimal_under,
    k_sigma,
    minimize_under,
    section4_counterexample,
    theorem2_level_bound,
)
from repro.optimizer import OptimizationReport, optimize
from repro.views import (
    RewriteReport,
    Rewriting,
    View,
    ViewCatalog,
    expand_query,
    rewrite_with_views,
)
from repro.api import (
    ChaseRequest,
    ChaseResponse,
    ContainmentRequest,
    ContainmentResponse,
    OptimizeRequest,
    OptimizeResponse,
    PairwiseContainment,
    RewriteRequest,
    RewriteResponse,
    Solver,
    SolverConfig,
    get_default_solver,
    reset_default_solver,
    set_default_solver,
)

__version__ = "1.2.0"

__all__ = [
    "Attribute",
    "ChaseBudgetExceeded",
    "ChaseConfig",
    "ChaseError",
    "ChaseRequest",
    "ChaseResponse",
    "ChaseResult",
    "ChaseVariant",
    "Conjunct",
    "ConjunctiveQuery",
    "Constant",
    "ContainmentCertificate",
    "ContainmentRequest",
    "ContainmentResponse",
    "ContainmentResult",
    "ContainmentUndecided",
    "Database",
    "DatabaseSchema",
    "DependencyError",
    "DependencySet",
    "DistinguishedVariable",
    "Domain",
    "EGD",
    "EvaluationError",
    "FreshVariableFactory",
    "FunctionalDependency",
    "InclusionDependency",
    "IntegrityError",
    "NonDistinguishedVariable",
    "OptimizationReport",
    "OptimizeRequest",
    "OptimizeResponse",
    "PairwiseContainment",
    "ParseError",
    "QueryBuilder",
    "QueryError",
    "QueryGraph",
    "RelationInstance",
    "RelationSchema",
    "ReproError",
    "RewriteReport",
    "RewriteRequest",
    "RewriteResponse",
    "Rewriting",
    "SchemaError",
    "Solver",
    "SolverConfig",
    "Substitution",
    "TGD",
    "Variable",
    "View",
    "ViewCatalog",
    "ViewError",
    "are_equivalent",
    "attribute_closure",
    "canonical_database",
    "chase",
    "chase_instance",
    "check_database",
    "contains",
    "core_of",
    "database_satisfies",
    "evaluate",
    "expand_query",
    "fd_chase_query",
    "fd_implies",
    "finite_containment_sample",
    "get_default_solver",
    "ind_implied_by_axioms",
    "is_contained",
    "is_minimal",
    "is_minimal_under",
    "k_sigma",
    "minimize",
    "minimize_under",
    "o_chase",
    "optimize",
    "r_chase",
    "reset_default_solver",
    "rewrite_with_views",
    "section4_counterexample",
    "set_default_solver",
    "theorem2_level_bound",
]
