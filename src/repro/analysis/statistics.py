"""Measurement helpers: chase growth profiles and containment sweeps.

These are the functions the benchmark harness calls to produce the rows
and series reported in EXPERIMENTS.md: how fast the chase grows with the
level budget (the Figure 1 / O-vs-R ablation) and how the containment
decision behaves across parameter sweeps (query size, |Σ|, width).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.chase.engine import ChaseConfig, ChaseVariant, chase
from repro.obs.clock import monotonic
from repro.containment.decision import is_contained
from repro.containment.result import ContainmentResult
from repro.dependencies.dependency_set import DependencySet
from repro.queries.conjunctive_query import ConjunctiveQuery


@dataclass
class ChaseGrowthProfile:
    """Chase size as a function of the level budget, for one query and Σ."""

    variant: str
    levels: List[int] = field(default_factory=list)
    conjunct_counts: List[int] = field(default_factory=list)
    saturated_at: Optional[int] = None

    def as_rows(self) -> List[Tuple[int, int]]:
        return list(zip(self.levels, self.conjunct_counts))


def chase_growth_profile(query: ConjunctiveQuery, dependencies: DependencySet,
                         max_levels: Sequence[int],
                         variant: ChaseVariant = ChaseVariant.RESTRICTED,
                         max_conjuncts: int = 20_000) -> ChaseGrowthProfile:
    """Build the chase at each level budget and record its size."""
    profile = ChaseGrowthProfile(variant=variant.value)
    for level in max_levels:
        config = ChaseConfig(variant=variant, max_level=level,
                             max_conjuncts=max_conjuncts, record_trace=False)
        result = chase(query, dependencies, config)
        profile.levels.append(level)
        profile.conjunct_counts.append(len(result))
        if result.saturated and profile.saturated_at is None:
            profile.saturated_at = level
    return profile


@dataclass
class SweepPoint:
    """One measured point of a containment sweep."""

    label: str
    parameters: Dict[str, object]
    holds: bool
    certain: bool
    seconds: float
    chase_size: int
    levels_built: int
    level_bound: Optional[int]

    def as_row(self) -> Tuple:
        return (
            self.label,
            self.parameters,
            "yes" if self.holds else "no",
            "exact" if self.certain else "unknown",
            f"{self.seconds * 1000:.2f} ms",
            self.chase_size,
            self.levels_built,
            self.level_bound,
        )


def containment_sweep(cases: Sequence[Tuple[str, Dict[str, object],
                                            ConjunctiveQuery, ConjunctiveQuery,
                                            Optional[DependencySet]]],
                      **options) -> List[SweepPoint]:
    """Run the containment decision on each case, timing it.

    ``cases`` entries are ``(label, parameters, Q, Q', Σ)``; ``options``
    are forwarded to :func:`repro.containment.decision.is_contained`.
    """
    points: List[SweepPoint] = []
    for label, parameters, query, query_prime, dependencies in cases:
        started = monotonic()
        result: ContainmentResult = is_contained(query, query_prime, dependencies, **options)
        elapsed = monotonic() - started
        points.append(SweepPoint(
            label=label,
            parameters=dict(parameters),
            holds=result.holds,
            certain=result.certain,
            seconds=elapsed,
            chase_size=result.chase_size,
            levels_built=result.levels_built,
            level_bound=result.level_bound,
        ))
    return points
