"""Analysis and reporting helpers used by the benchmark harness."""

from repro.analysis.statistics import (
    ChaseGrowthProfile,
    chase_growth_profile,
    containment_sweep,
    SweepPoint,
)
from repro.analysis.reporting import chase_statistics_report, format_table, series_report

__all__ = [
    "ChaseGrowthProfile",
    "SweepPoint",
    "chase_growth_profile",
    "chase_statistics_report",
    "containment_sweep",
    "format_table",
    "series_report",
]
