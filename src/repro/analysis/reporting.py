"""Plain-text table rendering for benchmark output and EXPERIMENTS.md."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, List, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.chase.engine import ChaseStatistics


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Any]],
                 title: str = "") -> str:
    """Render a fixed-width text table (markdown-compatible pipes)."""
    rendered_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
            else:
                widths.append(len(cell))

    def line(cells: Sequence[str]) -> str:
        padded = [cell.ljust(widths[index]) for index, cell in enumerate(cells)]
        return "| " + " | ".join(padded) + " |"

    separator = "|" + "|".join("-" * (width + 2) for width in widths) + "|"
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(line(list(headers)))
    lines.append(separator)
    for row in rendered_rows:
        lines.append(line(row))
    return "\n".join(lines)


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    if isinstance(value, dict):
        return ", ".join(f"{k}={v}" for k, v in value.items())
    return str(value)


def series_report(name: str, xs: Sequence[Any], ys: Sequence[Any],
                  x_label: str = "x", y_label: str = "y") -> str:
    """Render a single (x, y) series as a two-column table."""
    return format_table(
        headers=[x_label, y_label],
        rows=list(zip(xs, ys)),
        title=name,
    )


def chase_statistics_report(statistics_by_engine: Mapping[str, "ChaseStatistics"],
                            title: str = "chase work accounting") -> str:
    """Side-by-side work accounting for chase runs, one column per engine.

    Renders every counter a :class:`~repro.chase.engine.ChaseStatistics`
    carries — rule applications *and* the examined/fired trigger counts —
    so the incremental-chase benchmark can print legacy and indexed runs
    of the same workload next to each other.  The derived totals come
    from the statistics object's own properties, keeping this table
    truthful by construction.
    """
    counters = (
        ("fd steps", lambda s: s.fd_steps),
        ("ind steps", lambda s: s.ind_steps),
        ("redundant ind applications", lambda s: s.redundant_ind_applications),
        ("merged conjuncts", lambda s: s.merged_conjuncts),
        ("total steps", lambda s: s.total_steps),
        ("max level reached", lambda s: s.max_level_reached),
        ("triggers examined", lambda s: s.triggers_examined),
        ("triggers fired", lambda s: s.triggers_fired),
        ("index hits", lambda s: s.index_hits),
        ("delta seeded matches", lambda s: s.delta_seeded_matches),
        ("trigger cache hits", lambda s: s.trigger_cache_hits),
        ("tgd batches", lambda s: s.tgd_batches),
        ("batched tgd triggers", lambda s: s.batched_tgd_triggers),
        ("interned terms", lambda s: s.interned_terms),
        ("union-find unions", lambda s: s.union_find_unions),
        ("union-find finds", lambda s: s.union_find_finds),
        ("column probes", lambda s: s.column_probes),
    )
    engines = list(statistics_by_engine)
    rows = [
        [label] + [reader(statistics_by_engine[engine]) for engine in engines]
        for label, reader in counters
    ]
    return format_table(headers=["counter"] + engines, rows=rows, title=title)
