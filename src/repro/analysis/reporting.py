"""Plain-text table rendering for benchmark output and EXPERIMENTS.md."""

from __future__ import annotations

from typing import Any, Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Any]],
                 title: str = "") -> str:
    """Render a fixed-width text table (markdown-compatible pipes)."""
    rendered_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
            else:
                widths.append(len(cell))

    def line(cells: Sequence[str]) -> str:
        padded = [cell.ljust(widths[index]) for index, cell in enumerate(cells)]
        return "| " + " | ".join(padded) + " |"

    separator = "|" + "|".join("-" * (width + 2) for width in widths) + "|"
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(line(list(headers)))
    lines.append(separator)
    for row in rendered_rows:
        lines.append(line(row))
    return "\n".join(lines)


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    if isinstance(value, dict):
        return ", ".join(f"{k}={v}" for k, v in value.items())
    return str(value)


def series_report(name: str, xs: Sequence[Any], ys: Sequence[Any],
                  x_label: str = "x", y_label: str = "y") -> str:
    """Render a single (x, y) series as a two-column table."""
    return format_table(
        headers=[x_label, y_label],
        rows=list(zip(xs, ys)),
        title=name,
    )
