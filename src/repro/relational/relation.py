"""Relation instances: finite sets of tuples over a relation schema."""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.exceptions import SchemaError
from repro.relational.schema import AttributeRef, RelationSchema

Row = Tuple[Any, ...]


class RelationInstance:
    """A finite relation: a set of rows conforming to one schema.

    Rows are stored as tuples in a set (order-insensitive, duplicate-free,
    exactly as the paper's model requires).  Projection helpers used by the
    dependency checkers and by the chase on instances are provided here so
    they can be reused by the storage engine, the evaluator, and the finite
    counter-model search.
    """

    def __init__(self, schema: RelationSchema, rows: Optional[Iterable[Sequence[Any]]] = None,
                 check_domains: bool = False):
        self._schema = schema
        self._check_domains = check_domains
        self._rows: Set[Row] = set()
        for row in rows or ():
            self.add(row)

    # -- basic protocol -----------------------------------------------------

    @property
    def schema(self) -> RelationSchema:
        return self._schema

    @property
    def name(self) -> str:
        return self._schema.name

    @property
    def arity(self) -> int:
        return self._schema.arity

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __contains__(self, row: Sequence[Any]) -> bool:
        return tuple(row) in self._rows

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RelationInstance):
            return NotImplemented
        return self._schema == other._schema and self._rows == other._rows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RelationInstance({self.name}, {len(self)} rows)"

    def rows(self) -> FrozenSet[Row]:
        """An immutable snapshot of the rows."""
        return frozenset(self._rows)

    def sorted_rows(self) -> List[Row]:
        """Rows in a deterministic order (for reports and tests)."""
        return sorted(self._rows, key=repr)

    # -- mutation --------------------------------------------------------------

    def add(self, row: Sequence[Any]) -> Row:
        """Add one row (validated against the schema); returns the stored tuple."""
        values = self._schema.validate_row(row, check_domains=self._check_domains)
        self._rows.add(values)
        return values

    def add_all(self, rows: Iterable[Sequence[Any]]) -> int:
        """Add many rows; returns the number of *new* rows added."""
        before = len(self._rows)
        for row in rows:
            self.add(row)
        return len(self._rows) - before

    def discard(self, row: Sequence[Any]) -> bool:
        """Remove a row if present; returns True if it was removed."""
        values = tuple(row)
        if values in self._rows:
            self._rows.remove(values)
            return True
        return False

    def clear(self) -> None:
        self._rows.clear()

    def copy(self) -> "RelationInstance":
        """A deep-enough copy (rows are immutable tuples)."""
        clone = RelationInstance(self._schema, check_domains=self._check_domains)
        clone._rows = set(self._rows)
        return clone

    # -- projection and selection helpers ---------------------------------------

    def project(self, refs: Sequence[AttributeRef]) -> Set[Row]:
        """Project onto the given attributes (by name or 1-based position)."""
        positions = self._schema.positions_of(refs)
        return {tuple(row[p] for p in positions) for row in self._rows}

    def select_equal(self, ref: AttributeRef, value: Any) -> List[Row]:
        """All rows whose ``ref`` column equals ``value``."""
        position = self._schema.position_of(ref)
        return [row for row in self._rows if row[position] == value]

    def select_matching(self, assignment: Dict[AttributeRef, Any]) -> List[Row]:
        """All rows agreeing with ``assignment`` on every listed attribute."""
        positions = [(self._schema.position_of(ref), value) for ref, value in assignment.items()]
        return [
            row for row in self._rows
            if all(row[position] == value for position, value in positions)
        ]

    def active_domain(self) -> Set[Any]:
        """All values occurring anywhere in the relation."""
        values: Set[Any] = set()
        for row in self._rows:
            values.update(row)
        return values

    def column_values(self, ref: AttributeRef) -> Set[Any]:
        """All values occurring in one column."""
        position = self._schema.position_of(ref)
        return {row[position] for row in self._rows}

    # -- schema compatibility -----------------------------------------------------

    def require_same_schema(self, other: "RelationInstance") -> None:
        """Raise SchemaError unless the two instances share a schema."""
        if self._schema != other._schema:
            raise SchemaError(
                f"relation instances have different schemas: "
                f"{self._schema} vs {other._schema}"
            )

    def union(self, other: "RelationInstance") -> "RelationInstance":
        """Set union of two instances over the same schema."""
        self.require_same_schema(other)
        merged = self.copy()
        merged._rows.update(other._rows)
        return merged

    def difference(self, other: "RelationInstance") -> "RelationInstance":
        """Set difference of two instances over the same schema."""
        self.require_same_schema(other)
        result = RelationInstance(self._schema)
        result._rows = self._rows - other._rows
        return result

    def is_subset_of(self, other: "RelationInstance") -> bool:
        """True if every row of this instance appears in ``other``."""
        self.require_same_schema(other)
        return self._rows <= other._rows
