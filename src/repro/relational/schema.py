"""Relation and database schemas.

A relation scheme is the ordered sequence of attributes labelling a
relation's columns; a database scheme is a named collection of relation
schemes.  Both inclusion dependencies and conjunctive queries refer to
attributes either by name or by 1-based position (the paper's Figure 1
writes ``R[1,3] ⊆ S[1,2]``), so the schema classes support both addressing
modes and translate between them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.exceptions import SchemaError
from repro.relational.attribute import Attribute, AttributeSpec, coerce_attributes

AttributeRef = Union[str, int]


@dataclass(frozen=True)
class RelationSchema:
    """The scheme of one relation: a name plus an ordered attribute list."""

    name: str
    attributes: Tuple[Attribute, ...]

    def __init__(self, name: str, attributes: Sequence[AttributeSpec]):
        if not name:
            raise SchemaError("relation name must be non-empty")
        attrs = coerce_attributes(attributes)
        if len(attrs) == 0:
            raise SchemaError(f"relation {name!r} must have at least one attribute")
        names = [a.name for a in attrs]
        if len(set(names)) != len(names):
            raise SchemaError(f"relation {name!r} has duplicate attribute names: {names}")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "attributes", attrs)

    # -- basic accessors ----------------------------------------------------

    @property
    def arity(self) -> int:
        """Number of columns."""
        return len(self.attributes)

    @property
    def attribute_names(self) -> Tuple[str, ...]:
        return tuple(a.name for a in self.attributes)

    def __len__(self) -> int:
        return self.arity

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self.attributes)

    def __str__(self) -> str:
        cols = ", ".join(self.attribute_names)
        return f"{self.name}({cols})"

    # -- attribute addressing ------------------------------------------------

    def position_of(self, ref: AttributeRef) -> int:
        """Return the 0-based column index of an attribute reference.

        ``ref`` may be an attribute name or a 1-based position (the paper's
        convention when attributes are written as numbers).
        """
        if isinstance(ref, int):
            if not 1 <= ref <= self.arity:
                raise SchemaError(
                    f"position {ref} out of range for relation {self.name!r} "
                    f"of arity {self.arity}"
                )
            return ref - 1
        for index, attribute in enumerate(self.attributes):
            if attribute.name == ref:
                return index
        raise SchemaError(f"relation {self.name!r} has no attribute {ref!r}")

    def positions_of(self, refs: Sequence[AttributeRef]) -> Tuple[int, ...]:
        """Column indexes for a sequence of attribute references."""
        return tuple(self.position_of(ref) for ref in refs)

    def attribute_at(self, position: int) -> Attribute:
        """The attribute labelling 0-based column ``position``."""
        if not 0 <= position < self.arity:
            raise SchemaError(
                f"column {position} out of range for relation {self.name!r}"
            )
        return self.attributes[position]

    def has_attribute(self, name: str) -> bool:
        return any(a.name == name for a in self.attributes)

    def attribute_name_at(self, position: int) -> str:
        return self.attribute_at(position).name

    # -- validation -----------------------------------------------------------

    def validate_row(self, row: Sequence[object], check_domains: bool = False) -> Tuple[object, ...]:
        """Check arity (and optionally domains) of a candidate row."""
        values = tuple(row)
        if len(values) != self.arity:
            raise SchemaError(
                f"row {values!r} has arity {len(values)}, expected {self.arity} "
                f"for relation {self.name!r}"
            )
        if check_domains:
            for attribute, value in zip(self.attributes, values):
                if not attribute.accepts(value):
                    raise SchemaError(
                        f"value {value!r} not in domain of {self.name}.{attribute.name}"
                    )
        return values


class DatabaseSchema:
    """A named collection of relation schemas.

    Iteration order is the insertion order of relations, which keeps chase
    construction and report output deterministic.
    """

    def __init__(self, relations: Optional[Iterable[RelationSchema]] = None):
        self._relations: Dict[str, RelationSchema] = {}
        for schema in relations or ():
            self.add(schema)

    # -- construction ----------------------------------------------------------

    def add(self, schema: RelationSchema) -> "DatabaseSchema":
        """Add a relation schema; names must be unique."""
        if schema.name in self._relations:
            raise SchemaError(f"duplicate relation name {schema.name!r} in database schema")
        self._relations[schema.name] = schema
        return self

    def add_relation(self, name: str, attributes: Sequence[AttributeSpec]) -> RelationSchema:
        """Create and add a relation schema in one step."""
        schema = RelationSchema(name, attributes)
        self.add(schema)
        return schema

    @classmethod
    def from_dict(cls, spec: Mapping[str, Sequence[AttributeSpec]]) -> "DatabaseSchema":
        """Build a schema from ``{relation_name: [attribute, ...]}``."""
        schema = cls()
        for name, attributes in spec.items():
            schema.add_relation(name, attributes)
        return schema

    # -- accessors ---------------------------------------------------------------

    def relation(self, name: str) -> RelationSchema:
        """Look up one relation schema by name."""
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"database schema has no relation {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[RelationSchema]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DatabaseSchema):
            return NotImplemented
        return self._relations == other._relations

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = "; ".join(str(r) for r in self)
        return f"DatabaseSchema({body})"

    @property
    def relation_names(self) -> List[str]:
        return list(self._relations)

    def signature(self) -> Tuple[Tuple[str, Tuple[str, ...]], ...]:
        """A hashable content projection of the schema.

        Two schemas whose relations have the same names and attribute
        names (in order) share a signature; content-addressed caches
        (dependency classification, the solver's fingerprints) key on it
        so mutating a schema in place cannot serve stale entries.
        """
        return tuple(
            (relation.name, relation.attribute_names) for relation in self)

    def restricted_to(self, names: Iterable[str]) -> "DatabaseSchema":
        """A new schema containing only the listed relations."""
        return DatabaseSchema(self.relation(name) for name in names)

    def merged_with(self, other: "DatabaseSchema") -> "DatabaseSchema":
        """Union of two schemas; shared names must agree exactly."""
        merged = DatabaseSchema(list(self))
        for schema in other:
            if schema.name in merged._relations:
                if merged.relation(schema.name) != schema:
                    raise SchemaError(
                        f"conflicting definitions of relation {schema.name!r}"
                    )
                continue
            merged.add(schema)
        return merged
