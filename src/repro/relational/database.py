"""Databases: finite collections of relation instances over a schema."""

from __future__ import annotations

from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
)

from repro.exceptions import SchemaError
from repro.relational.relation import RelationInstance, Row
from repro.relational.schema import DatabaseSchema


class Database:
    """A finite database: one relation instance per relation of a schema.

    Relations not explicitly populated are present but empty, which matches
    the paper's convention that a database supplies a (possibly empty)
    relation for every relation name in the input scheme of a query.
    """

    def __init__(self, schema: DatabaseSchema,
                 relations: Optional[Mapping[str, Iterable[Sequence[Any]]]] = None):
        self._schema = schema
        self._relations: Dict[str, RelationInstance] = {
            rel.name: RelationInstance(rel) for rel in schema
        }
        for name, rows in (relations or {}).items():
            instance = self.relation(name)
            instance.add_all(rows)

    # -- accessors ----------------------------------------------------------------

    @property
    def schema(self) -> DatabaseSchema:
        return self._schema

    def relation(self, name: str) -> RelationInstance:
        """The instance of the named relation (always exists, may be empty)."""
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"database has no relation {name!r}") from None

    def __iter__(self) -> Iterator[RelationInstance]:
        return iter(self._relations.values())

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Database):
            return NotImplemented
        return self._schema == other._schema and self._relations == other._relations

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(f"{name}:{len(rel)}" for name, rel in self._relations.items())
        return f"Database({body})"

    @property
    def relation_names(self) -> List[str]:
        return list(self._relations)

    def total_rows(self) -> int:
        """Total number of tuples across all relations."""
        return sum(len(rel) for rel in self)

    def is_empty(self) -> bool:
        return self.total_rows() == 0

    def active_domain(self) -> Set[Any]:
        """All values occurring anywhere in the database."""
        values: Set[Any] = set()
        for relation in self:
            values.update(relation.active_domain())
        return values

    # -- mutation -------------------------------------------------------------------

    def add(self, relation_name: str, row: Sequence[Any]) -> Row:
        """Insert one row into the named relation."""
        return self.relation(relation_name).add(row)

    def add_all(self, relation_name: str, rows: Iterable[Sequence[Any]]) -> int:
        """Insert many rows into the named relation; returns rows added."""
        return self.relation(relation_name).add_all(rows)

    def copy(self) -> "Database":
        """A copy sharing the schema but with independent row sets."""
        clone = Database(self._schema)
        for name, relation in self._relations.items():
            clone._relations[name] = relation.copy()
        return clone

    # -- convenience constructors ------------------------------------------------------

    @classmethod
    def from_dict(cls, schema_spec: Mapping[str, Sequence[Any]],
                  rows: Optional[Mapping[str, Iterable[Sequence[Any]]]] = None) -> "Database":
        """Build a schema from ``{name: attributes}`` and populate it.

        Convenience used heavily by tests and examples::

            db = Database.from_dict(
                {"EMP": ["emp", "sal", "dept"], "DEP": ["dept", "loc"]},
                {"EMP": [("e1", 100, "d1")], "DEP": [("d1", "NYC")]},
            )
        """
        schema = DatabaseSchema.from_dict(schema_spec)
        return cls(schema, rows)

    def as_dict(self) -> Dict[str, List[Row]]:
        """Plain-data rendering ``{relation: sorted rows}`` for reports."""
        return {name: relation.sorted_rows() for name, relation in self._relations.items()}

    # -- comparison helpers used by containment experiments -----------------------------

    def contains_database(self, other: "Database") -> bool:
        """True if every tuple of ``other`` is present here (same schema)."""
        if self._schema != other._schema:
            raise SchemaError("cannot compare databases over different schemas")
        return all(
            other.relation(name).is_subset_of(self.relation(name))
            for name in self.relation_names
        )

    def union(self, other: "Database") -> "Database":
        """Relation-wise union of two databases over the same schema."""
        if self._schema != other._schema:
            raise SchemaError("cannot union databases over different schemas")
        merged = self.copy()
        for name in merged.relation_names:
            merged._relations[name] = merged.relation(name).union(other.relation(name))
        return merged
