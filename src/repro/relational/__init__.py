"""Relational model: attributes, schemas, tuples, relations, databases.

This package implements the (finite) relational data model of Section 2 of
the paper: relations are tables whose columns are labelled by attributes,
a database is a finite set of relations, and a database scheme is the set
of relation schemes of its tables.  The chase and containment machinery
treats queries themselves as (symbolic) databases; the classes here are the
concrete, value-carrying counterpart used for evaluation, for finite
counter-model search, and by the storage engine.
"""

from repro.relational.attribute import Attribute, Domain
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.relation import RelationInstance
from repro.relational.database import Database

__all__ = [
    "Attribute",
    "Database",
    "DatabaseSchema",
    "Domain",
    "RelationInstance",
    "RelationSchema",
]
