"""Attributes and their domains.

The paper associates a domain D(A) with every attribute A; entries in the
column labelled by A must belong to D(A).  For the purposes of the
reproduction a domain is a named, optionally enumerable set of Python
values with a membership test.  Domains matter mostly to the workload
generators (which draw values from them) and to the storage engine's
optional type checking; the chase itself is purely symbolic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Domain:
    """A named domain of attribute values.

    A domain may be *enumerated* (a finite tuple of allowed values, used by
    the finite counter-model search and the workload generators) or
    *open* (any value accepted, possibly filtered by a predicate).
    """

    name: str
    values: Optional[Tuple[Any, ...]] = None
    predicate: Optional[Callable[[Any], bool]] = field(default=None, compare=False)

    def __contains__(self, value: Any) -> bool:
        if self.values is not None and value not in self.values:
            return False
        if self.predicate is not None and not self.predicate(value):
            return False
        return True

    @property
    def is_finite(self) -> bool:
        """True if the domain is an explicitly enumerated finite set."""
        return self.values is not None

    def sample(self, count: int) -> Tuple[Any, ...]:
        """Return up to ``count`` example values from an enumerated domain.

        Open domains return synthetic string values ``"<name>:<i>"`` which
        is sufficient for the symbolic experiments in the benchmarks.
        """
        if self.values is not None:
            return tuple(self.values[:count])
        return tuple(f"{self.name}:{i}" for i in range(count))

    @classmethod
    def integers(cls, name: str = "int") -> "Domain":
        """An open domain accepting any Python int."""
        return cls(name=name, predicate=lambda v: isinstance(v, int))

    @classmethod
    def strings(cls, name: str = "str") -> "Domain":
        """An open domain accepting any Python str."""
        return cls(name=name, predicate=lambda v: isinstance(v, str))

    @classmethod
    def anything(cls, name: str = "any") -> "Domain":
        """The unconstrained domain."""
        return cls(name=name)

    @classmethod
    def enumerated(cls, name: str, values: Iterable[Any]) -> "Domain":
        """A finite domain with exactly the given values."""
        return cls(name=name, values=tuple(values))


@dataclass(frozen=True)
class Attribute:
    """A named attribute with an optional domain.

    Relation schemas may be built either from plain strings (in which case
    the attribute gets the unconstrained domain) or from ``Attribute``
    objects carrying explicit domains.
    """

    name: str
    domain: Domain = field(default_factory=lambda: Domain.anything())

    def __str__(self) -> str:
        return self.name

    def accepts(self, value: Any) -> bool:
        """True if ``value`` belongs to the attribute's domain."""
        return value in self.domain

    @classmethod
    def coerce(cls, spec: "AttributeSpec") -> "Attribute":
        """Turn a string or Attribute into an Attribute."""
        if isinstance(spec, Attribute):
            return spec
        return cls(name=str(spec))


AttributeSpec = Any  # str | Attribute


def coerce_attributes(specs: Sequence[AttributeSpec]) -> Tuple[Attribute, ...]:
    """Coerce a sequence of attribute specs to Attribute objects."""
    return tuple(Attribute.coerce(spec) for spec in specs)
