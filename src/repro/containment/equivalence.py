"""Equivalence and minimality under dependencies.

The paper reduces both to containment: Q and Q' are (infinitely)
equivalent iff each is contained in the other, and Q is non-minimal under
Σ iff some proper subquery (Q with one conjunct removed) is equivalent to
Q under Σ.  Since dropping a conjunct only weakens a query, the reduced
query always contains the original; only the converse direction has to be
tested.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.containment.result import ContainmentResult
from repro.dependencies.dependency_set import DependencySet
from repro.exceptions import QueryError
from repro.queries.conjunctive_query import ConjunctiveQuery


def _without_conjunct_or_none(query: ConjunctiveQuery, label: str) -> Optional[ConjunctiveQuery]:
    """Drop a conjunct unless the reduced query would be unsafe.

    A conjunct carrying the only occurrence of a summary-row variable can
    never be dropped, so minimality checks simply skip it.
    """
    try:
        return query.without_conjunct(label)
    except QueryError:
        return None


def are_equivalent(query: ConjunctiveQuery, query_prime: ConjunctiveQuery,
                   dependencies: Optional[DependencySet] = None,
                   solver=None,
                   **options) -> bool:
    """``Σ ⊨ Q ≡∞ Q'``: containment in both directions.

    Raises :class:`~repro.exceptions.ContainmentUndecided` if either
    direction could not be decided with certainty.  ``solver`` is the
    :class:`~repro.api.solver.Solver` whose caches back the checks;
    ``None`` uses the process-wide default.
    """
    from repro.api.solver import resolve_solver
    session = resolve_solver(solver)
    forward = session.is_contained(query, query_prime, dependencies, **options)
    if forward.certain and not forward.holds:
        return False
    backward = session.is_contained(query_prime, query, dependencies, **options)
    return bool(forward) and bool(backward)


def equivalence_results(query: ConjunctiveQuery, query_prime: ConjunctiveQuery,
                        dependencies: Optional[DependencySet] = None,
                        solver=None,
                        **options) -> Tuple[ContainmentResult, ContainmentResult]:
    """Both directions' full results (for reports and benchmarks)."""
    from repro.api.solver import resolve_solver
    session = resolve_solver(solver)
    forward = session.is_contained(query, query_prime, dependencies, **options)
    backward = session.is_contained(query_prime, query, dependencies, **options)
    return forward, backward


def removable_conjuncts_under(query: ConjunctiveQuery,
                              dependencies: Optional[DependencySet] = None,
                              solver=None,
                              **options) -> List[str]:
    """Labels of conjuncts removable without changing the query under Σ.

    A conjunct c is removable iff ``Σ ⊨ (Q without c) ⊆ Q`` — the other
    direction always holds because removing a conjunct weakens the query.
    """
    from repro.api.solver import resolve_solver
    session = resolve_solver(solver)
    removable: List[str] = []
    if len(query) <= 1:
        return removable
    for conjunct in query.conjuncts:
        reduced = _without_conjunct_or_none(query, conjunct.label)
        if reduced is not None and bool(
                session.is_contained(reduced, query, dependencies, **options)):
            removable.append(conjunct.label)
    return removable


def is_minimal_under(query: ConjunctiveQuery,
                     dependencies: Optional[DependencySet] = None,
                     solver=None,
                     **options) -> bool:
    """True if no single conjunct can be dropped without changing Q under Σ."""
    return not removable_conjuncts_under(query, dependencies, solver=solver,
                                         **options)


def minimize_under(query: ConjunctiveQuery,
                   dependencies: Optional[DependencySet] = None,
                   name: Optional[str] = None,
                   solver=None,
                   **options) -> ConjunctiveQuery:
    """Greedily drop removable conjuncts until the query is minimal under Σ.

    Every intermediate query is equivalent to the original under Σ, so the
    final query is an equivalent minimal form.  (Unlike the dependency-free
    core it need not be unique, but it is always correct.)
    """
    from repro.api.solver import resolve_solver
    session = resolve_solver(solver)
    current = query
    changed = True
    while changed and len(current) > 1:
        changed = False
        for conjunct in current.conjuncts:
            reduced = _without_conjunct_or_none(current, conjunct.label)
            if reduced is not None and bool(
                    session.is_contained(reduced, query, dependencies, **options)):
                current = reduced
                changed = True
                break
    if name is not None:
        current = current.renamed(name)
    return current
