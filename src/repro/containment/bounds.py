"""The level bound of Theorem 2 (via Lemma 5).

Lemma 5: if Σ is a set of INDs (or key-based, via the same argument on the
R-chase) and C is a set of conjuncts of chase(Q), there is a homomorphism
of C into chase(Q) preserving the summary row whose image lies within the
first ``|C| · |Σ| · (W + 1)^W`` levels, where W is the maximum IND width.
Taking C = h(Q') for a containment homomorphism h gives the bound the
decision procedure chases to: ``|Q'| · |Σ| · (W + 1)^W``.
"""

from __future__ import annotations

from typing import Optional

from repro.dependencies.dependency_set import DependencySet
from repro.queries.conjunctive_query import ConjunctiveQuery


def lemma5_level_bound(conjunct_count: int, dependency_count: int, max_width: int) -> int:
    """``|C| · |Σ| · (W + 1)^W`` — the image-level bound of Lemma 5.

    For W = 0 (no INDs) the bound degenerates to ``|C| · |Σ|``; it is never
    smaller than 1 so the chase always includes its level-0 conjuncts.
    """
    bound = conjunct_count * dependency_count * (max_width + 1) ** max_width
    return max(bound, 1)


def theorem2_level_bound(query_prime: ConjunctiveQuery,
                         dependencies: DependencySet,
                         max_width: Optional[int] = None) -> int:
    """The chase depth sufficient for the Theorem 2 containment test.

    If a homomorphism from Q' into chase(Q) exists at all, one exists whose
    image lies within this many levels, so chasing to this depth and
    searching for a homomorphism is a complete decision procedure for the
    IND-only and key-based cases.  For general Σ — including embedded
    TGDs, whose *frontier* size stands in for the IND width W — the same
    formula serves as the pragmatic cutoff of the semi-decision.
    """
    width = dependencies.max_width() if max_width is None else max_width
    return lemma5_level_bound(len(query_prime), max(len(dependencies), 1), width)
