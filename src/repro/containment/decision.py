"""The top-level containment decision (dispatch on the shape of Σ).

``is_contained(Q, Q', Σ)`` decides ``Σ ⊨ Q ⊆∞ Q'``:

* Σ empty — Chandra–Merlin containment mapping;
* Σ FD-only — finite FD chase + containment mapping;
* Σ IND-only or key-based — the Theorem 2 bounded-chase procedure (exact);
* any other Σ — general FD/IND mixes and embedded TGD/EGD sets — the same
  bounded-chase procedure as a *sound semi-decision*: a positive answer
  or a saturated chase is exact, hitting the level bound returns an
  uncertain negative.  When the weak-acyclicity analysis certifies that
  the R-chase terminates (``SolverConfig.certify_termination``, on by
  default), the procedure instead deepens to saturation and every
  verdict short of the conjunct budget is exact.
"""

from __future__ import annotations

from typing import Optional

from repro.chase.engine import ChaseVariant
from repro.containment.result import ContainmentResult
from repro.dependencies.dependency_set import DependencySet
from repro.queries.conjunctive_query import ConjunctiveQuery

def is_contained(query: ConjunctiveQuery, query_prime: ConjunctiveQuery,
                 dependencies: Optional[DependencySet] = None,
                 variant: Optional[ChaseVariant] = None,
                 level_bound: Optional[int] = None,
                 max_conjuncts: Optional[int] = None,
                 record_trace: Optional[bool] = None,
                 with_certificate: Optional[bool] = None,
                 deepening: Optional[bool] = None) -> ContainmentResult:
    """Decide ``Σ ⊨ Q ⊆∞ Q'`` and return a detailed result object.

    ``dependencies=None`` (or an empty set) is the dependency-free case.
    The result's ``holds``/``certain`` flags carry the answer; its
    ``homomorphism`` field carries the witnessing containment mapping when
    containment holds.

    This is a thin wrapper over the process-wide default
    :class:`~repro.api.solver.Solver`; repeated questions are answered
    from its cross-call caches.  Each tuning argument defaults to ``None``,
    meaning "use the default solver's session config" — whose own defaults
    are the historical ones (R-chase, computed level bound, 20 000-conjunct
    budget, no trace, no certificate, iterative deepening) — while an
    explicitly passed value overrides the session for this call.  Build a
    dedicated ``Solver`` for isolated cache lifetimes or per-session
    configuration.
    """
    from repro.api.solver import get_default_solver
    supplied = {
        "variant": variant, "level_bound": level_bound,
        "max_conjuncts": max_conjuncts, "record_trace": record_trace,
        "with_certificate": with_certificate, "deepening": deepening,
    }
    overrides = {key: value for key, value in supplied.items()
                 if value is not None}
    return get_default_solver().is_contained(
        query, query_prime, dependencies, **overrides)


def contains(query: ConjunctiveQuery, query_prime: ConjunctiveQuery,
             dependencies: Optional[DependencySet] = None,
             **options) -> bool:
    """Boolean form of :func:`is_contained`.

    Raises :class:`~repro.exceptions.ContainmentUndecided` when the
    procedure could not reach a certain answer (only possible for Σ outside
    the paper's decidable classes or when a size budget was exhausted).
    """
    result = is_contained(query, query_prime, dependencies, **options)
    return bool(result)
