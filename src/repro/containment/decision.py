"""The top-level containment decision (dispatch on the shape of Σ).

``is_contained(Q, Q', Σ)`` decides ``Σ ⊨ Q ⊆∞ Q'``:

* Σ empty — Chandra–Merlin containment mapping;
* Σ FD-only — finite FD chase + containment mapping;
* Σ IND-only or key-based — the Theorem 2 bounded-chase procedure (exact);
* any other Σ — the same bounded-chase procedure as a *sound
  semi-decision*: a positive answer or a saturated chase is exact, hitting
  the level bound returns an uncertain negative.
"""

from __future__ import annotations

from typing import Optional

from repro.chase.engine import ChaseVariant
from repro.containment.fd_containment import contained_under_fds
from repro.containment.ind_containment import contained_under_bounded_chase
from repro.containment.no_dependencies import contained_without_dependencies
from repro.containment.result import ContainmentResult
from repro.dependencies.dependency_set import DependencyClass, DependencySet
from repro.queries.conjunctive_query import ConjunctiveQuery


def is_contained(query: ConjunctiveQuery, query_prime: ConjunctiveQuery,
                 dependencies: Optional[DependencySet] = None,
                 variant: ChaseVariant = ChaseVariant.RESTRICTED,
                 level_bound: Optional[int] = None,
                 max_conjuncts: int = 20_000,
                 record_trace: bool = False,
                 with_certificate: bool = False,
                 deepening: bool = True) -> ContainmentResult:
    """Decide ``Σ ⊨ Q ⊆∞ Q'`` and return a detailed result object.

    ``dependencies=None`` (or an empty set) is the dependency-free case.
    The result's ``holds``/``certain`` flags carry the answer; its
    ``homomorphism`` field carries the witnessing containment mapping when
    containment holds.
    """
    sigma = dependencies if dependencies is not None else DependencySet()
    classification = sigma.classify(query.input_schema)

    if classification is DependencyClass.EMPTY:
        return contained_without_dependencies(query, query_prime)
    if classification is DependencyClass.FD_ONLY:
        return contained_under_fds(query, query_prime, sigma)

    exact = classification in (DependencyClass.IND_ONLY, DependencyClass.KEY_BASED)
    return contained_under_bounded_chase(
        query, query_prime, sigma,
        variant=variant, level_bound=level_bound,
        max_conjuncts=max_conjuncts, exact=exact, record_trace=record_trace,
        with_certificate=with_certificate, deepening=deepening,
    )


def contains(query: ConjunctiveQuery, query_prime: ConjunctiveQuery,
             dependencies: Optional[DependencySet] = None,
             **options) -> bool:
    """Boolean form of :func:`is_contained`.

    Raises :class:`~repro.exceptions.ContainmentUndecided` when the
    procedure could not reach a certain answer (only possible for Σ outside
    the paper's decidable classes or when a size budget was exhausted).
    """
    result = is_contained(query, query_prime, dependencies, **options)
    return bool(result)
