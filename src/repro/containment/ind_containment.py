"""Containment via the bounded chase (Theorem 2).

For Σ that is IND-only or key-based, ``Σ ⊨ Q ⊆∞ Q'`` iff there is a
homomorphism from Q' into the (possibly infinite) chase of Q (Theorem 1),
and by Lemma 5 it suffices to look for one whose image lies within the
first ``|Q'| · |Σ| · (W + 1)^W`` levels.  The procedure therefore chases Q
level by level up to that bound (iterative deepening, so cheap positive
answers are found on shallow prefixes), testing for a homomorphism after
each stage:

* a homomorphism found → contained (with the mapping as witness);
* the chase saturates with no homomorphism → not contained;
* the level bound is reached with no homomorphism → not contained for the
  decidable classes (exact by Lemma 5), "unknown" for general Σ;
* the conjunct budget is exhausted first → "unknown" (raise the budget).

For general Σ (arbitrary FD/IND mixes, or embedded TGDs/EGDs) whose
chase the weak-acyclicity analysis certifies finite, the caller passes
``assume_terminating=True`` and the schedule deepens past the Theorem 2
bound until the chase saturates, restoring exact verdicts.

For Σ containing FDs the R-chase is used, which by Lemma 2 performs all
its FD applications up front when Σ is key-based; if that initial FD phase
fails on a constant clash, Q is empty on every Σ-database and containment
holds vacuously.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.chase.engine import ChaseConfig, ChaseResult, ChaseVariant, chase
from repro.containment.bounds import theorem2_level_bound
from repro.containment.certificates import build_certificate
from repro.containment.result import ContainmentResult
from repro.dependencies.dependency_set import DependencySet
from repro.homomorphism.query_homomorphism import build_target_index, find_query_homomorphism
from repro.queries.conjunctive_query import ConjunctiveQuery

#: Builds (or fetches from a cache) the chase of a query under a config.
ChaseFn = Callable[[ConjunctiveQuery, DependencySet, ChaseConfig], ChaseResult]


def _deepening_schedule(bound: int, start: int = 2) -> List[int]:
    """Levels at which to (re)build the chase and test for a homomorphism.

    Doubling schedule capped at the Theorem 2 bound; the total work is
    dominated by the deepest chase built, so the early, cheap stages are
    effectively free and catch the common case of shallow witnesses.
    """
    levels: List[int] = []
    level = min(max(start, 1), bound)
    while True:
        levels.append(level)
        if level >= bound:
            break
        level = min(level * 2, bound)
    return levels


def contained_under_bounded_chase(query: ConjunctiveQuery,
                                  query_prime: ConjunctiveQuery,
                                  dependencies: DependencySet,
                                  variant: ChaseVariant = ChaseVariant.RESTRICTED,
                                  level_bound: Optional[int] = None,
                                  max_conjuncts: int = 20_000,
                                  exact: bool = True,
                                  record_trace: bool = False,
                                  with_certificate: bool = False,
                                  deepening: bool = True,
                                  chase_fn: Optional[ChaseFn] = None,
                                  engine: Optional[str] = None,
                                  assume_terminating: bool = False,
                                  saturation_level_cap: Optional[int] = None) -> ContainmentResult:
    """The Theorem 2 decision procedure (sound semi-decision for general Σ).

    Parameters
    ----------
    variant:
        Which chase to build; Theorem 1 holds for both, the R-chase is
        smaller and is the default.
    level_bound:
        Override for the Theorem 2 bound (used by the level-bound
        benchmark); ``None`` computes ``|Q'|·|Σ|·(W+1)^W``.
    max_conjuncts:
        Hard size budget per chase construction.
    exact:
        Whether reaching the level bound without a homomorphism may be
        reported as a certain "no" (True for IND-only / key-based Σ; the
        dispatcher passes False for general Σ).
    with_certificate:
        Attach a verifiable :class:`ContainmentCertificate` to positive
        answers (the Theorem 2 "short proof").
    deepening:
        Use the iterative-deepening schedule (default).  With ``False`` the
        chase is built straight to the level bound in one shot — the
        ablation benchmarked in experiment E13.
    chase_fn:
        How to obtain the chase of Q for a given config.  A
        :class:`~repro.api.solver.Solver` passes its caching chase here so
        chase prefixes are shared across containment questions; ``None``
        uses the module-level :func:`~repro.chase.engine.chase`.
    engine:
        Which chase implementation to build with (``"indexed"`` /
        ``"legacy"``); ``None`` uses the process default.  The verdict is
        engine-independent — the differential harness asserts exactly
        that — but the knob lets it ask both sides the same question.
    assume_terminating:
        The caller certified (e.g. by weak acyclicity) that the chase of
        Q under Σ is finite.  The level schedule then ignores the
        Theorem 2 bound and deepens until the chase *saturates*, so every
        answer short of the conjunct budget is exact — this is how
        general weakly-acyclic Σ gets decision-procedure semantics.
    saturation_level_cap:
        Ceiling on the certified deepening; reaching it without
        saturation falls back to the uncertain-negative bound answer.
        Shared services set it so one tenant's deeply-saturating Σ
        cannot monopolise a worker.  Ignored without
        ``assume_terminating``.
    """
    query.require_same_interface(query_prime)
    bound = level_bound if level_bound is not None else theorem2_level_bound(query_prime, dependencies)
    build_chase = chase_fn if chase_fn is not None else chase

    last_chase: Optional[ChaseResult] = None

    def attempt(level: Optional[int]) -> Optional[ContainmentResult]:
        """One chase-and-test stage; a result ends the search."""
        nonlocal last_chase
        config = ChaseConfig(variant=variant, max_level=level,
                             max_conjuncts=max_conjuncts, record_trace=record_trace,
                             engine=engine)
        chase_result = build_chase(query, dependencies, config)
        last_chase = chase_result

        if chase_result.failed:
            clashed = chase_result.failure_dependency or "a dependency"
            return ContainmentResult(
                holds=True, certain=True, method="failed-chase",
                reason=f"the chase of Q is inconsistent: applying {clashed} "
                       "clashed two distinct constants; Q is empty on every "
                       "database obeying Σ",
                levels_built=chase_result.statistics.max_level_reached,
                chase_size=chase_result.failure_live_conjuncts,
                level_bound=bound,
            )

        conjuncts = chase_result.conjuncts()
        mapping = find_query_homomorphism(
            query_prime.conjuncts, query_prime.summary_row,
            conjuncts, chase_result.summary_row,
            target_index=build_target_index(conjuncts),
        )
        if mapping is not None:
            certificate = None
            if with_certificate:
                certificate = build_certificate(
                    query, query_prime, dependencies, chase_result, mapping)
            within = (f"the first {level} levels" if level is not None
                      else "the saturated chase")
            return ContainmentResult(
                holds=True, certain=True, method="bounded-chase",
                reason=f"homomorphism from Q' into {within} of the "
                       f"{variant.value}-chase of Q",
                levels_built=chase_result.max_level(), chase_size=len(conjuncts),
                level_bound=bound, homomorphism=mapping, certificate=certificate,
            )
        if chase_result.saturated:
            return ContainmentResult(
                holds=False, certain=True, method="bounded-chase",
                reason="the chase saturated (it is the complete chase) and admits "
                       "no homomorphism from Q'",
                levels_built=chase_result.max_level(), chase_size=len(conjuncts),
                level_bound=bound,
            )
        if chase_result.hit_conjunct_budget:
            return ContainmentResult(
                holds=False, certain=False, method="bounded-chase",
                reason=f"chase size budget of {max_conjuncts} conjuncts exhausted at "
                       f"level {chase_result.max_level()} before the level bound {bound}",
                levels_built=chase_result.max_level(), chase_size=len(conjuncts),
                level_bound=bound,
            )
        return None

    exhausted_at = bound
    if assume_terminating:
        # Termination is certified, so there is no bound to respect: the
        # doubling schedule runs until the chase saturates (or fails, or
        # maps Q', or exhausts the conjunct budget — all of which return).
        # Without deepening the chase is built in one shot — unbounded,
        # or straight to the cap when one is set.  Reaching the cap
        # without saturating falls through to the uncertain answer.
        cap = saturation_level_cap
        level: Optional[int] = ((2 if cap is None else min(2, cap))
                                if deepening else cap)
        while True:
            result = attempt(level)
            if result is not None:
                return result
            assert level is not None, "an unbounded chase stage always concludes"
            if cap is not None and level >= cap:
                exhausted_at = cap
                break
            level = level * 2 if cap is None else min(level * 2, cap)
    else:
        schedule = _deepening_schedule(bound) if deepening else [bound]
        for level in schedule:
            result = attempt(level)
            if result is not None:
                return result

    assert last_chase is not None
    return ContainmentResult(
        holds=False, certain=exact, method="bounded-chase",
        reason=(
            f"no homomorphism from Q' within the Theorem 2 level bound {bound}"
            if exact else
            f"no homomorphism from Q' within level {exhausted_at}; Σ is outside "
            "the paper's decidable classes so deeper levels could still matter"
        ),
        levels_built=last_chase.max_level(), chase_size=len(last_chase.conjuncts()),
        level_bound=bound,
    )
