"""Containment certificates: the polynomial-size proofs of Theorem 2.

When ``Σ ⊨ Q ⊆∞ Q'`` holds, the nondeterministic algorithm of Theorem 2
guesses (1) the image of Q' under a homomorphism into the chase of Q,
(2) enough of the chase to prove that image really is part of the chase —
the ancestors of the image conjuncts along ordinary arcs, plus (for the
key-based R-chase) the low-level conjuncts and the children needed to
justify "required" applications — and (3) the homomorphism itself.

:func:`build_certificate` extracts exactly that object from a successful
run of the bounded-chase procedure, and
:meth:`ContainmentCertificate.verify` re-checks it *independently of the
search*: it replays each IND application along the ancestor paths and
re-validates the homomorphism.  The property-based tests assert that every
positive containment answer yields a verifying certificate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.chase.chase_graph import ChaseGraph, ChaseNode
from repro.chase.engine import ChaseResult
from repro.dependencies.dependency_set import DependencySet
from repro.exceptions import ReproError
from repro.homomorphism.query_homomorphism import verify_query_homomorphism
from repro.queries.conjunct import Conjunct
from repro.queries.conjunctive_query import ConjunctiveQuery
from repro.terms.term import Term, Variable


@dataclass
class CertificateStep:
    """One justified conjunct of the chase prefix included in the proof.

    Root conjuncts (level 0) are justified by membership in Q (or in the
    FD chase of Q for key-based Σ); created conjuncts are justified by the
    IND application that produced them from their parent.
    """

    node_id: int
    conjunct: Conjunct
    level: int
    parent: Optional[int]
    dependency: Optional[str]

    @property
    def is_root(self) -> bool:
        return self.parent is None


@dataclass
class ContainmentCertificate:
    """A verifiable witness that ``Σ ⊨ Q ⊆∞ Q'``."""

    query: ConjunctiveQuery
    query_prime: ConjunctiveQuery
    dependencies: DependencySet
    homomorphism: Dict[Variable, Term]
    image_nodes: List[int]
    steps: List[CertificateStep]
    chase_summary_row: Tuple[Term, ...]

    def proof_size(self) -> int:
        """Number of chase conjuncts included in the proof."""
        return len(self.steps)

    def max_image_level(self) -> int:
        """Deepest level used by the homomorphic image (Lemma 5's quantity)."""
        step_by_id = {step.node_id: step for step in self.steps}
        return max((step_by_id[node_id].level for node_id in self.image_nodes), default=0)

    # -- verification ------------------------------------------------------------

    def verify(self) -> bool:
        """Re-check the certificate independently of how it was produced."""
        return not self.verification_errors()

    def verification_errors(self) -> List[str]:
        """All problems found while re-checking (empty list means valid)."""
        errors: List[str] = []
        step_by_id = {step.node_id: step for step in self.steps}

        # 1. Roots must be conjuncts of Q (up to the FD chase's symbol
        #    merging, root atoms use only symbols of Q), and every
        #    non-root step must be a correct application of a declared IND
        #    to its parent.
        declared_inds = {str(ind): ind for ind in self.dependencies.inclusion_dependencies()}
        schema = self.query.input_schema
        for step in self.steps:
            if step.is_root:
                if step.level != 0:
                    errors.append(f"root step {step.node_id} has level {step.level} != 0")
                continue
            parent = step_by_id.get(step.parent)
            if parent is None:
                errors.append(f"step {step.node_id} references missing parent {step.parent}")
                continue
            if step.level != parent.level + 1:
                errors.append(
                    f"step {step.node_id} level {step.level} is not parent level + 1"
                )
            ind = declared_inds.get(step.dependency or "")
            if ind is None:
                errors.append(f"step {step.node_id} cites undeclared IND {step.dependency!r}")
                continue
            if step.conjunct.relation != ind.rhs_relation:
                errors.append(
                    f"step {step.node_id} creates a {step.conjunct.relation} conjunct "
                    f"but the IND targets {ind.rhs_relation}"
                )
                continue
            lhs_positions = ind.lhs_positions(schema)
            rhs_positions = ind.rhs_positions(schema)
            copied = parent.conjunct.terms_at(lhs_positions)
            placed = step.conjunct.terms_at(rhs_positions)
            if copied != placed:
                errors.append(
                    f"step {step.node_id} does not copy the parent's {ind.lhs_attributes} "
                    f"values into {ind.rhs_attributes}"
                )
            # The non-copied entries must be NDVs that occur nowhere else in
            # the proof except in descendants of this step.
            fresh = [term for position, term in enumerate(step.conjunct.terms)
                     if position not in rhs_positions]
            for term in fresh:
                if not isinstance(term, Variable):
                    errors.append(
                        f"step {step.node_id} places constant {term} in a freshly "
                        "created column"
                    )

        # 2. The image nodes must all be part of the proof.
        for node_id in self.image_nodes:
            if node_id not in step_by_id:
                errors.append(f"image node {node_id} is not justified by any step")

        # 3. The homomorphism must map Q' onto the proof's conjuncts and the
        #    summary row of Q' onto the chase's summary row.
        proof_conjuncts = [step.conjunct for step in self.steps]
        if not verify_query_homomorphism(
            self.homomorphism,
            self.query_prime.conjuncts, self.query_prime.summary_row,
            proof_conjuncts, self.chase_summary_row,
        ):
            errors.append("the recorded mapping is not a homomorphism from Q' into the proof")
        return errors

    def describe(self) -> str:
        lines = [
            f"containment certificate: {self.query_prime.name} maps into "
            f"chase({self.query.name})",
            f"  proof size: {self.proof_size()} conjuncts, "
            f"max image level {self.max_image_level()}",
        ]
        for step in self.steps:
            origin = "in Q" if step.is_root else f"from #{step.parent} via {step.dependency}"
            lines.append(f"  #{step.node_id} L{step.level} {step.conjunct}  ({origin})")
        return "\n".join(lines)


def build_certificate(query: ConjunctiveQuery, query_prime: ConjunctiveQuery,
                      dependencies: DependencySet,
                      chase_result: ChaseResult,
                      homomorphism: Dict[Variable, Term]) -> ContainmentCertificate:
    """Assemble a certificate from a chase and a containment homomorphism.

    The proof contains the image conjuncts, their ordinary-arc ancestors,
    and every level-0 conjunct (the latter makes the proof self-contained
    for the key-based case, mirroring the construction in the proof of
    Theorem 2).

    Certificates replay *IND* applications — the Theorem 2 shape.  A Σ
    with general TGDs/EGDs is refused outright: a TGD step records only
    one of its body nodes as parent, so the replay could not re-derive
    it, and shipping a proof that fails its own :meth:`verify` would be
    worse than no proof.
    """
    if dependencies.has_embedded():
        raise ReproError(
            "containment certificates replay IND applications (Theorem 2) and "
            "are not supported for Σ with general TGDs/EGDs; decide without "
            "with_certificate for embedded dependency sets")
    graph: ChaseGraph = chase_result.graph
    conjunct_owner: Dict[Tuple[str, Tuple[Term, ...]], ChaseNode] = {}
    for node in graph:
        conjunct_owner.setdefault((node.relation, node.conjunct.terms), node)

    # Which chase nodes does the image of Q' use?  Map each conjunct of Q'
    # through the homomorphism and look the resulting atom up in the graph.
    image_nodes: Set[int] = set()
    for conjunct in query_prime.conjuncts:
        mapped_terms = tuple(
            homomorphism.get(term, term) if isinstance(term, Variable) else term
            for term in conjunct.terms
        )
        owner = conjunct_owner.get((conjunct.relation, mapped_terms))
        if owner is not None:
            image_nodes.add(owner.node_id)

    needed: Set[int] = set(image_nodes)
    for node_id in list(image_nodes):
        for ancestor in graph.ancestors(node_id):
            needed.add(ancestor.node_id)
    for node in graph.nodes_at_level(0):
        needed.add(node.node_id)

    steps = [
        CertificateStep(
            node_id=node.node_id,
            conjunct=node.conjunct,
            level=node.level,
            parent=node.parent,
            dependency=str(node.via) if node.via is not None else None,
        )
        for node in sorted((graph.node(node_id) for node_id in needed),
                           key=lambda n: n.node_id)
    ]
    return ContainmentCertificate(
        query=query,
        query_prime=query_prime,
        dependencies=dependencies,
        homomorphism=dict(homomorphism),
        image_nodes=sorted(image_nodes),
        steps=steps,
        chase_summary_row=chase_result.summary_row,
    )
