"""Counterexample witnesses for non-containment.

Theorem 1's proof contains a constructive converse: if there is *no*
homomorphism from Q' into chase_Σ(Q), then the chase itself — viewed as a
database, with every symbol frozen to a distinct constant — is a database
obeying Σ on which Q produces the frozen summary row while Q' does not.
When the chase is finite (it saturated), that gives a concrete, finite,
Σ-satisfying counterexample database that a user can inspect, store, or
feed back into the evaluators.

When the chase is infinite the same construction only yields a finite
*prefix*, which obeys the FDs but may violate some INDs; in that case the
witness is still returned but flagged ``sigma_satisfied=False`` (the
infinite completion would satisfy Σ — that is exactly the Section 4
phenomenon).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

from repro.chase.engine import r_chase
from repro.containment.bounds import theorem2_level_bound
from repro.containment.decision import is_contained
from repro.containment.result import ContainmentResult
from repro.dependencies.dependency_set import DependencySet
from repro.dependencies.violations import database_satisfies
from repro.queries.canonical import freeze_symbol
from repro.queries.conjunctive_query import ConjunctiveQuery
from repro.queries.evaluation import answer_contains
from repro.relational.database import Database
from repro.terms.term import Term


@dataclass
class NonContainmentWitness:
    """A database separating Q from Q'.

    ``row`` belongs to ``Q(database)`` but not to ``Q'(database)``.
    ``sigma_satisfied`` records whether the database obeys every
    dependency of Σ (always true when the chase saturated; possibly false
    when only a finite prefix of an infinite chase could be materialised).
    """

    database: Database
    row: Tuple[Any, ...]
    sigma_satisfied: bool
    chase_levels: int
    chase_saturated: bool

    def separates(self, query: ConjunctiveQuery, query_prime: ConjunctiveQuery) -> bool:
        """Re-check the witness against the two queries (independent check)."""
        return (answer_contains(query, self.database, self.row)
                and not answer_contains(query_prime, self.database, self.row))

    def describe(self) -> str:
        status = "Σ-satisfying" if self.sigma_satisfied else (
            "prefix witness (some INDs unsatisfied; the infinite completion satisfies Σ)")
        lines = [
            f"non-containment witness ({status}), row {self.row}:",
        ]
        for name, rows in sorted(self.database.as_dict().items()):
            lines.append(f"  {name}: {rows}")
        return "\n".join(lines)


def _freeze_chase_database(chase_result, schema) -> Database:
    database = Database(schema)
    for conjunct in chase_result.conjuncts():
        database.add(conjunct.relation,
                     tuple(freeze_symbol(term) for term in conjunct.terms))
    return database


def _frozen_row(summary_row: Tuple[Term, ...]) -> Tuple[Any, ...]:
    return tuple(freeze_symbol(term) for term in summary_row)


def non_containment_witness(query: ConjunctiveQuery, query_prime: ConjunctiveQuery,
                            dependencies: Optional[DependencySet] = None,
                            max_level: Optional[int] = None,
                            max_conjuncts: int = 20_000) -> Optional[NonContainmentWitness]:
    """Build a separating database for ``Q ⊄ Q'`` under Σ, if one exists.

    Returns ``None`` when the containment actually holds (or could not be
    refuted with certainty within the budgets).  The returned witness's
    ``separates`` method re-verifies it from scratch.
    """
    sigma = dependencies if dependencies is not None else DependencySet()
    verdict: ContainmentResult = is_contained(query, query_prime, sigma,
                                              max_conjuncts=max_conjuncts)
    if verdict.holds or not verdict.certain:
        return None

    bound = max_level if max_level is not None else theorem2_level_bound(query_prime, sigma)
    chase_result = r_chase(query, sigma, max_level=bound,
                           max_conjuncts=max_conjuncts, record_trace=False)
    if chase_result.failed:
        # Q is empty on every Σ-database, so it is contained in everything;
        # is_contained cannot have said "no" — defensive only.
        return None

    database = _freeze_chase_database(chase_result, query.input_schema)
    row = _frozen_row(chase_result.summary_row)
    return NonContainmentWitness(
        database=database,
        row=row,
        sigma_satisfied=database_satisfies(database, sigma),
        chase_levels=chase_result.max_level(),
        chase_saturated=chase_result.saturated,
    )
