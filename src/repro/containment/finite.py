"""Finite containment (Section 4).

Containment over *finite* databases (⊆f) is implied by containment over
all databases (⊆∞) but not conversely: the paper's counterexample uses
Σ = {R: 2 → 1, R[2] ⊆ R[1]} and the queries

    Q1 = {(x) : ∃y  R(x, y)}
    Q2 = {(x) : ∃y ∃y' R(x, y) ∧ R(y', x)}

which are finitely equivalent (in a finite R obeying Σ, column 2 is an
injective map into column 1, hence — by finiteness — onto it) but not
infinitely equivalent.  Theorem 3 shows the two notions *do* coincide when
Σ is key-based or consists of width-1 INDs ("finite controllability"),
with the constant k_Σ bounding how far apart the levels of two conjuncts
sharing a symbol can be.

This module provides:

* :func:`section4_counterexample` — the example above, ready to run;
* :func:`k_sigma` — the paper's constant for the finitely controllable
  classes;
* :func:`finite_containment_sample` — an empirical ⊆f check that
  enumerates or samples finite Σ-satisfying databases and looks for a
  counterexample database (the experiment E7/E8 harness).
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Any, Iterator, List, NamedTuple, Optional, Sequence, Tuple

from repro.chase.instance_chase import chase_instance
from repro.dependencies.dependency_set import DependencyClass, DependencySet
from repro.dependencies.functional import FunctionalDependency
from repro.dependencies.inclusion import InclusionDependency
from repro.dependencies.violations import database_satisfies
from repro.queries.conjunctive_query import ConjunctiveQuery
from repro.queries.evaluation import answers_contained_in
from repro.relational.database import Database
from repro.relational.schema import DatabaseSchema
from repro.terms.term import DistinguishedVariable, NonDistinguishedVariable
from repro.queries.conjunct import Conjunct


# ---------------------------------------------------------------------------
# k_Σ and finite controllability
# ---------------------------------------------------------------------------


def k_sigma(dependencies: DependencySet, schema: Optional[DatabaseSchema] = None) -> Optional[int]:
    """The constant k_Σ of Theorem 3's proof, or ``None`` outside its cases.

    * key-based Σ — k_Σ = 1 (Lemma 6: no symbol survives more than one
      level);
    * width-1 INDs — k_Σ = the sum of the arities of the relations that
      occur as right-hand sides of INDs in Σ (the paper's bound on how
      often a symbol can be propagated to a new column);
    * anything else — ``None`` (Theorem 3 does not apply).
    """
    target_schema = schema or dependencies.schema
    classification = dependencies.classify(target_schema)
    if classification is DependencyClass.KEY_BASED:
        return 1
    if classification is DependencyClass.IND_ONLY and dependencies.has_only_unary_inds():
        if target_schema is None:
            raise ValueError("a schema is required to compute k_sigma for IND-only sets")
        rhs_relations = {ind.rhs_relation for ind in dependencies.inclusion_dependencies()}
        return sum(target_schema.relation(name).arity for name in rhs_relations)
    if classification in (DependencyClass.EMPTY, DependencyClass.FD_ONLY):
        return 0
    return None


def is_finitely_controllable(dependencies: DependencySet,
                             schema: Optional[DatabaseSchema] = None) -> bool:
    """True when Theorem 3 guarantees ⊆f and ⊆∞ coincide for Σ."""
    return dependencies.is_finitely_controllable(schema)


# ---------------------------------------------------------------------------
# The Section 4 counterexample
# ---------------------------------------------------------------------------


class Section4Example(NamedTuple):
    """The paper's finite-vs-infinite counterexample, as runnable objects."""

    schema: DatabaseSchema
    dependencies: DependencySet
    q1: ConjunctiveQuery
    q2: ConjunctiveQuery


def section4_counterexample() -> Section4Example:
    """Σ = {R: 2 → 1, R[2] ⊆ R[1]} with Q1, Q2 as in Section 4.

    ``Σ ⊨ Q1 ⊆f Q2`` holds (and hence Q1 ≡f Q2, since Q2 ⊆ Q1 always),
    but ``Σ ⊨ Q1 ⊆∞ Q2`` fails — the chase-based test reports
    non-containment, and an infinite database witnessing the difference is
    an infinite forward chain under R.
    """
    schema = DatabaseSchema.from_dict({"R": ["a1", "a2"]})
    dependencies = DependencySet(
        [
            FunctionalDependency("R", ["a2"], "a1"),
            InclusionDependency("R", ["a2"], "R", ["a1"]),
        ],
        schema=schema,
    )
    x = DistinguishedVariable("x")
    y = NonDistinguishedVariable("y")
    y_prime = NonDistinguishedVariable("y_prime")
    q1 = ConjunctiveQuery(
        input_schema=schema,
        conjuncts=[Conjunct("R", [x, y])],
        summary_row=(x,),
        name="Q1",
    )
    q2 = ConjunctiveQuery(
        input_schema=schema,
        conjuncts=[Conjunct("R", [x, y]), Conjunct("R", [y_prime, x])],
        summary_row=(x,),
        name="Q2",
    )
    return Section4Example(schema=schema, dependencies=dependencies, q1=q1, q2=q2)


# ---------------------------------------------------------------------------
# Empirical finite containment: enumeration and sampling of finite models
# ---------------------------------------------------------------------------


@dataclass
class FiniteContainmentReport:
    """Result of checking ``Q(B) ⊆ Q'(B)`` over many finite Σ-databases.

    ``holds_on_sample`` is True when no counterexample database was found;
    this is evidence for ⊆f, not a proof (unless the enumeration was
    exhaustive for a domain size that happens to suffice).
    """

    holds_on_sample: bool
    databases_checked: int
    databases_generated: int
    counterexample: Optional[Database]
    method: str

    def describe(self) -> str:
        verdict = "no counterexample found" if self.holds_on_sample else "counterexample found"
        return (
            f"finite containment check ({self.method}): {verdict} over "
            f"{self.databases_checked} Σ-satisfying databases "
            f"(of {self.databases_generated} generated)"
        )


def enumerate_databases(schema: DatabaseSchema, domain: Sequence[Any],
                        max_databases: int = 100_000) -> Iterator[Database]:
    """Every database over ``schema`` whose values come from ``domain``.

    The number of databases is ``2 ** (sum_R |domain| ** arity(R))``; the
    generator stops with a ``ValueError`` if that exceeds ``max_databases``
    so callers do not silently fall into an exponential trap.
    """
    per_relation: List[Tuple[str, List[Tuple[Any, ...]]]] = []
    total_exponent = 0
    for relation in schema:
        possible = list(itertools.product(domain, repeat=relation.arity))
        per_relation.append((relation.name, possible))
        total_exponent += len(possible)
    if 2 ** total_exponent > max_databases:
        raise ValueError(
            f"exhaustive enumeration would produce 2**{total_exponent} databases; "
            f"use finite_containment_sample with sampling instead"
        )
    tuple_sets = [
        [subset for size in range(len(possible) + 1)
         for subset in itertools.combinations(possible, size)]
        for _, possible in per_relation
    ]
    for combination in itertools.product(*tuple_sets):
        database = Database(schema)
        for (relation_name, _), rows in zip(per_relation, combination):
            database.add_all(relation_name, rows)
        yield database


def sample_database(schema: DatabaseSchema, domain: Sequence[Any], rng: random.Random,
                    max_tuples_per_relation: int = 4) -> Database:
    """One random database over ``schema`` with values from ``domain``."""
    database = Database(schema)
    for relation in schema:
        count = rng.randint(0, max_tuples_per_relation)
        for _ in range(count):
            row = tuple(rng.choice(list(domain)) for _ in range(relation.arity))
            database.add(relation.name, row)
    return database


def finite_containment_sample(query: ConjunctiveQuery, query_prime: ConjunctiveQuery,
                              dependencies: DependencySet,
                              domain_size: int = 3,
                              exhaustive: bool = True,
                              samples: int = 200,
                              repair: bool = True,
                              seed: int = 0,
                              max_enumeration: int = 100_000) -> FiniteContainmentReport:
    """Search for a finite Σ-satisfying database with ``Q(B) ⊄ Q'(B)``.

    With ``exhaustive=True`` (and a schema small enough) every database
    over a ``domain_size``-element domain is checked — for the Section 4
    example this is a complete check of ⊆f up to that domain size.  With
    ``exhaustive=False`` random databases are drawn and (optionally)
    repaired with the instance chase before being checked.
    """
    query.require_same_interface(query_prime)
    schema = query.input_schema
    domain = list(range(domain_size))
    checked = 0
    generated = 0

    def candidates() -> Iterator[Database]:
        nonlocal generated
        if exhaustive:
            for database in enumerate_databases(schema, domain, max_databases=max_enumeration):
                generated += 1
                yield database
            return
        rng = random.Random(seed)
        # The instance chase only repairs FDs and INDs; for embedded Σ
        # samples are filtered by the satisfaction check below instead.
        repairable = repair and not dependencies.has_embedded()
        for _ in range(samples):
            generated += 1
            database = sample_database(schema, domain, rng)
            if repairable and not database_satisfies(database, dependencies):
                repaired = chase_instance(database, dependencies, max_steps=200)
                if repaired.succeeded:
                    database = repaired.database
            yield database

    method = "exhaustive enumeration" if exhaustive else "random sampling with chase repair"
    for database in candidates():
        if not database_satisfies(database, dependencies):
            continue
        checked += 1
        if not answers_contained_in(query, query_prime, database):
            return FiniteContainmentReport(
                holds_on_sample=False, databases_checked=checked,
                databases_generated=generated, counterexample=database, method=method,
            )
    return FiniteContainmentReport(
        holds_on_sample=True, databases_checked=checked,
        databases_generated=generated, counterexample=None, method=method,
    )
