"""Serialization of queries, dependencies, and containment certificates.

Theorem 2's point is that containment has polynomial-size *certificates*.
To make that concrete the library can export a certificate (together with
the two queries, the dependency set, and the schema they live over) as a
plain-JSON document and re-import and re-verify it elsewhere — the
"short proof" can be shipped to a different process and checked without
re-running the search.

The format is versioned and intentionally simple: terms are tagged
dictionaries, conjuncts are ``{relation, terms}``, and everything else is
lists of those.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Union

from repro.containment.certificates import CertificateStep, ContainmentCertificate
from repro.dependencies.dependency_set import DependencySet
from repro.dependencies.embedded import EGD, TGD
from repro.dependencies.functional import FunctionalDependency
from repro.dependencies.inclusion import InclusionDependency
from repro.exceptions import ReproError
from repro.queries.conjunct import Conjunct
from repro.queries.conjunctive_query import ConjunctiveQuery
from repro.relational.schema import DatabaseSchema
from repro.terms.term import (
    Constant,
    DistinguishedVariable,
    NonDistinguishedVariable,
    Term,
    Variable,
)

FORMAT_VERSION = 1


class SerializationError(ReproError):
    """A document could not be converted to or from the JSON format."""


# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------


def term_to_dict(term: Term) -> Dict[str, Any]:
    if isinstance(term, Constant):
        return {"kind": "constant", "value": term.value}
    if isinstance(term, DistinguishedVariable):
        return {"kind": "dv", "name": term.name}
    if isinstance(term, NonDistinguishedVariable):
        return {"kind": "ndv", "name": term.name, "created": term.created,
                "serial": list(term.serial)}
    if isinstance(term, Variable):
        # Plain rule-scoped variables, as used by TGD/EGD atoms.
        return {"kind": "var", "name": term.name}
    raise SerializationError(f"cannot serialize term {term!r}")


def term_from_dict(data: Dict[str, Any]) -> Term:
    kind = data.get("kind")
    if kind == "constant":
        return Constant(data["value"])
    if kind == "dv":
        return DistinguishedVariable(data["name"])
    if kind == "ndv":
        return NonDistinguishedVariable(
            data["name"], serial=tuple(data.get("serial", ())),
            created=bool(data.get("created", False)))
    if kind == "var":
        return Variable(data["name"])
    raise SerializationError(f"unknown term kind {kind!r}")


# ---------------------------------------------------------------------------
# Schemas, conjuncts, queries, dependencies
# ---------------------------------------------------------------------------


def schema_to_dict(schema: DatabaseSchema) -> Dict[str, Any]:
    return {
        "relations": [
            {"name": relation.name, "attributes": list(relation.attribute_names)}
            for relation in schema
        ]
    }


def schema_from_dict(data: Dict[str, Any]) -> DatabaseSchema:
    schema = DatabaseSchema()
    for relation in data.get("relations", []):
        schema.add_relation(relation["name"], relation["attributes"])
    return schema


def conjunct_to_dict(conjunct: Conjunct) -> Dict[str, Any]:
    return {
        "relation": conjunct.relation,
        "label": conjunct.label,
        "terms": [term_to_dict(term) for term in conjunct.terms],
    }


def conjunct_from_dict(data: Dict[str, Any]) -> Conjunct:
    return Conjunct(
        data["relation"],
        [term_from_dict(term) for term in data["terms"]],
        label=data.get("label", ""),
    )


def query_to_dict(query: ConjunctiveQuery) -> Dict[str, Any]:
    return {
        "name": query.name,
        "schema": schema_to_dict(query.input_schema),
        "conjuncts": [conjunct_to_dict(conjunct) for conjunct in query.conjuncts],
        "summary_row": [term_to_dict(term) for term in query.summary_row],
        "output_attributes": list(query.output_attributes),
    }


def query_from_dict(data: Dict[str, Any],
                    schema: Optional[DatabaseSchema] = None) -> ConjunctiveQuery:
    resolved_schema = schema if schema is not None else schema_from_dict(data["schema"])
    return ConjunctiveQuery(
        input_schema=resolved_schema,
        conjuncts=[conjunct_from_dict(conjunct) for conjunct in data["conjuncts"]],
        summary_row=tuple(term_from_dict(term) for term in data["summary_row"]),
        output_attributes=data.get("output_attributes"),
        name=data.get("name", "Q"),
    )


def dependency_to_dict(dependency: Union[FunctionalDependency, InclusionDependency,
                                         TGD, EGD]) -> Dict[str, Any]:
    if isinstance(dependency, FunctionalDependency):
        return {"kind": "fd", "relation": dependency.relation,
                "lhs": list(dependency.lhs), "rhs": dependency.rhs}
    if isinstance(dependency, InclusionDependency):
        return {"kind": "ind",
                "lhs_relation": dependency.lhs_relation,
                "lhs_attributes": list(dependency.lhs_attributes),
                "rhs_relation": dependency.rhs_relation,
                "rhs_attributes": list(dependency.rhs_attributes)}
    if isinstance(dependency, TGD):
        return {"kind": "tgd",
                "body": [conjunct_to_dict(atom) for atom in dependency.body],
                "head": [conjunct_to_dict(atom) for atom in dependency.head]}
    if isinstance(dependency, EGD):
        return {"kind": "egd",
                "body": [conjunct_to_dict(atom) for atom in dependency.body],
                "lhs": term_to_dict(dependency.lhs),
                "rhs": term_to_dict(dependency.rhs)}
    raise SerializationError(f"cannot serialize dependency {dependency!r}")


def dependency_from_dict(data: Dict[str, Any]) -> Union[FunctionalDependency,
                                                        InclusionDependency, TGD, EGD]:
    kind = data.get("kind")
    if kind == "fd":
        return FunctionalDependency(data["relation"], data["lhs"], data["rhs"])
    if kind == "ind":
        return InclusionDependency(data["lhs_relation"], data["lhs_attributes"],
                                   data["rhs_relation"], data["rhs_attributes"])
    if kind == "tgd":
        return TGD([conjunct_from_dict(atom) for atom in data["body"]],
                   [conjunct_from_dict(atom) for atom in data["head"]])
    if kind == "egd":
        return EGD([conjunct_from_dict(atom) for atom in data["body"]],
                   term_from_dict(data["lhs"]), term_from_dict(data["rhs"]))
    raise SerializationError(f"unknown dependency kind {kind!r}")


def dependency_set_to_dict(dependencies: DependencySet) -> List[Dict[str, Any]]:
    return [dependency_to_dict(dependency) for dependency in dependencies]


def dependency_set_from_dict(data: List[Dict[str, Any]],
                             schema: Optional[DatabaseSchema] = None) -> DependencySet:
    return DependencySet([dependency_from_dict(entry) for entry in data], schema=schema)


# ---------------------------------------------------------------------------
# Certificates
# ---------------------------------------------------------------------------


def certificate_to_dict(certificate: ContainmentCertificate) -> Dict[str, Any]:
    """Export a certificate (with its full context) as plain data."""
    return {
        "format_version": FORMAT_VERSION,
        "query": query_to_dict(certificate.query),
        "query_prime": query_to_dict(certificate.query_prime),
        "dependencies": dependency_set_to_dict(certificate.dependencies),
        "homomorphism": [
            {"variable": term_to_dict(variable), "image": term_to_dict(image)}
            for variable, image in certificate.homomorphism.items()
        ],
        "image_nodes": list(certificate.image_nodes),
        "chase_summary_row": [term_to_dict(term) for term in certificate.chase_summary_row],
        "steps": [
            {
                "node_id": step.node_id,
                "level": step.level,
                "parent": step.parent,
                "dependency": step.dependency,
                "conjunct": conjunct_to_dict(step.conjunct),
            }
            for step in certificate.steps
        ],
    }


def certificate_from_dict(data: Dict[str, Any]) -> ContainmentCertificate:
    """Rebuild a certificate from exported data (ready to ``verify()``)."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise SerializationError(
            f"unsupported certificate format version {version!r}")
    schema = schema_from_dict(data["query"]["schema"])
    query = query_from_dict(data["query"], schema=schema)
    query_prime = query_from_dict(data["query_prime"], schema=schema)
    dependencies = dependency_set_from_dict(data["dependencies"], schema=schema)
    homomorphism = {
        term_from_dict(entry["variable"]): term_from_dict(entry["image"])
        for entry in data["homomorphism"]
    }
    steps = [
        CertificateStep(
            node_id=entry["node_id"],
            conjunct=conjunct_from_dict(entry["conjunct"]),
            level=entry["level"],
            parent=entry["parent"],
            dependency=entry["dependency"],
        )
        for entry in data["steps"]
    ]
    return ContainmentCertificate(
        query=query,
        query_prime=query_prime,
        dependencies=dependencies,
        homomorphism=homomorphism,
        image_nodes=list(data["image_nodes"]),
        steps=steps,
        chase_summary_row=tuple(term_from_dict(term)
                                for term in data["chase_summary_row"]),
    )


# ---------------------------------------------------------------------------
# Results and reports (the CLI's --json output)
# ---------------------------------------------------------------------------


def homomorphism_to_dict(mapping: Dict[Any, Any]) -> List[Dict[str, Any]]:
    """A containment mapping as a list of tagged (variable, image) pairs."""
    return [
        {"variable": term_to_dict(variable), "image": term_to_dict(image)}
        for variable, image in mapping.items()
    ]


def containment_result_to_dict(result: "ContainmentResult") -> Dict[str, Any]:
    """A :class:`ContainmentResult` as plain JSON-ready data.

    The certificate, when present, is embedded in its own versioned
    format (the one :func:`certificate_to_dict` produces).
    """
    data: Dict[str, Any] = {
        "holds": result.holds,
        "certain": result.certain,
        "method": result.method,
        "reason": result.reason,
        "levels_built": result.levels_built,
        "chase_size": result.chase_size,
        "level_bound": result.level_bound,
    }
    if result.homomorphism is not None:
        data["homomorphism"] = homomorphism_to_dict(result.homomorphism)
    if result.certificate is not None:
        data["certificate"] = certificate_to_dict(result.certificate)
    return data


def chase_result_to_dict(result: "ChaseResult",
                         include_trace: bool = False) -> Dict[str, Any]:
    """A chase outcome (status, statistics, per-level conjuncts) as data.

    ``include_trace`` adds the application trace as one human-readable
    line per recorded step (empty when the run had ``record_trace`` off).
    """
    data: Dict[str, Any] = {
        "query": result.query.name,
        "variant": result.variant.value,
        "engine": result.engine,
        "failed": result.failed,
        "saturated": result.saturated,
        "truncated": result.truncated,
        "max_level": result.max_level(),
        "statistics": {
            "fd_steps": result.statistics.fd_steps,
            "ind_steps": result.statistics.ind_steps,
            "egd_steps": result.statistics.egd_steps,
            "tgd_steps": result.statistics.tgd_steps,
            "redundant_ind_applications": result.statistics.redundant_ind_applications,
            "redundant_tgd_applications": result.statistics.redundant_tgd_applications,
            "merged_conjuncts": result.statistics.merged_conjuncts,
            "total_steps": result.statistics.total_steps,
            "triggers_examined": result.statistics.triggers_examined,
            "index_hits": result.statistics.index_hits,
            "delta_seeded_matches": result.statistics.delta_seeded_matches,
            "trigger_cache_hits": result.statistics.trigger_cache_hits,
            "tgd_batches": result.statistics.tgd_batches,
            "batched_tgd_triggers": result.statistics.batched_tgd_triggers,
            "interned_terms": result.statistics.interned_terms,
            "union_find_unions": result.statistics.union_find_unions,
            "union_find_finds": result.statistics.union_find_finds,
            "column_probes": result.statistics.column_probes,
        },
        "level_histogram": {str(level): count for level, count
                            in sorted(result.level_histogram().items())},
        "conjuncts": [] if result.failed else [
            dict(conjunct_to_dict(node.conjunct), level=node.level)
            for node in result.graph
        ],
    }
    if result.failed:
        data["failure_dependency"] = result.failure_dependency
        data["failure_live_conjuncts"] = result.failure_live_conjuncts
    if include_trace:
        data["trace"] = [step.describe() for step in result.trace]
    return data


def optimization_report_to_dict(report: "OptimizationReport") -> Dict[str, Any]:
    """An :class:`OptimizationReport` as data (queries fully serialized)."""
    return {
        "original": query_to_dict(report.original),
        "optimized": query_to_dict(report.optimized),
        "original_text": str(report.original),
        "optimized_text": str(report.optimized),
        "unsatisfiable": report.unsatisfiable,
        "conjuncts_removed": report.conjuncts_removed,
        "steps": [
            {
                "stage": step.stage,
                "description": step.description,
                "removed_conjunct": (conjunct_to_dict(step.removed_conjunct)
                                     if step.removed_conjunct is not None else None),
            }
            for step in report.steps
        ],
    }


def certificate_to_json(certificate: ContainmentCertificate, indent: int = 2) -> str:
    """Export a certificate as a JSON string."""
    return json.dumps(certificate_to_dict(certificate), indent=indent, sort_keys=True)


def certificate_from_json(text: str) -> ContainmentCertificate:
    """Import a certificate from a JSON string produced by :func:`certificate_to_json`."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise SerializationError(f"invalid JSON: {error}") from error
    return certificate_from_dict(data)
