"""Containment of conjunctive queries under FDs and INDs.

The public entry points are

* :func:`is_contained` — decide ``Σ ⊨ Q ⊆∞ Q'``, dispatching on the shape
  of Σ (empty, FD-only, IND-only, key-based, general);
* :func:`are_equivalent` — containment in both directions;
* :func:`is_minimal_under` / :func:`minimize_under` — non-minimality and
  minimization under Σ (the paper's third optimization problem);
* the finite-containment tooling in :mod:`repro.containment.finite` —
  the Section 4 counterexample, the k_Σ constant, and a sampling-based
  search for finite counterexamples.

All decisions about ⊆∞ go through Theorem 1 (homomorphism into the chase)
with the Theorem 2 level bound making the chase finite for the decidable
cases.
"""

from repro.containment.bounds import theorem2_level_bound
from repro.containment.result import ContainmentResult
from repro.containment.no_dependencies import contained_without_dependencies
from repro.containment.fd_containment import contained_under_fds
from repro.containment.ind_containment import contained_under_bounded_chase
from repro.containment.decision import contains, is_contained
from repro.containment.equivalence import (
    are_equivalent,
    is_minimal_under,
    minimize_under,
)
from repro.containment.certificates import ContainmentCertificate, build_certificate
from repro.containment.finite import (
    FiniteContainmentReport,
    finite_containment_sample,
    k_sigma,
    section4_counterexample,
)
from repro.containment.witness import NonContainmentWitness, non_containment_witness

__all__ = [
    "ContainmentCertificate",
    "ContainmentResult",
    "FiniteContainmentReport",
    "NonContainmentWitness",
    "are_equivalent",
    "build_certificate",
    "contained_under_bounded_chase",
    "contained_under_fds",
    "contained_without_dependencies",
    "contains",
    "finite_containment_sample",
    "is_contained",
    "is_minimal_under",
    "k_sigma",
    "minimize_under",
    "non_containment_witness",
    "section4_counterexample",
    "theorem2_level_bound",
]
