"""Containment under functional dependencies only.

The classical result the paper builds on: with Σ containing only FDs,
``Σ ⊨ Q ⊆ Q'`` iff there is a query homomorphism from Q' to the (finite)
FD chase of Q.  If the chase fails on a constant clash, Q returns the
empty answer on every Σ-database and the containment holds vacuously.
"""

from __future__ import annotations

from typing import Sequence, Union

from repro.chase.fd_chase import fd_only_chase
from repro.containment.result import ContainmentResult
from repro.dependencies.dependency_set import DependencySet
from repro.dependencies.functional import FunctionalDependency
from repro.homomorphism.query_homomorphism import find_query_homomorphism
from repro.queries.conjunctive_query import ConjunctiveQuery


def contained_under_fds(query: ConjunctiveQuery, query_prime: ConjunctiveQuery,
                        dependencies: Union[DependencySet, Sequence[FunctionalDependency]]
                        ) -> ContainmentResult:
    """Decide ``Σ ⊨ Q ⊆∞ Q'`` for FD-only Σ via the finite chase."""
    query.require_same_interface(query_prime)
    chase_result = fd_only_chase(query, dependencies)
    if chase_result.failed:
        return ContainmentResult(
            holds=True, certain=True, method="failed-chase",
            reason="the FD chase of Q is inconsistent (constant clash); "
                   "Q is empty on every database obeying Σ",
            chase_size=0,
        )
    chased = chase_result.query
    assert chased is not None
    mapping = find_query_homomorphism(
        query_prime.conjuncts, query_prime.summary_row,
        chased.conjuncts, chased.summary_row,
    )
    if mapping is not None:
        return ContainmentResult(
            holds=True, certain=True, method="fd-chase",
            reason="homomorphism from Q' to chase_F(Q) found",
            chase_size=len(chased), homomorphism=mapping,
        )
    return ContainmentResult(
        holds=False, certain=True, method="fd-chase",
        reason="no homomorphism from Q' to chase_F(Q)",
        chase_size=len(chased),
    )
