"""The result object returned by every containment test."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.exceptions import ContainmentUndecided


@dataclass
class ContainmentResult:
    """Outcome of testing ``Σ ⊨ Q ⊆∞ Q'``.

    Results may be shared across calls by a solver's cross-call cache, so
    treat them (including the ``homomorphism`` mapping) as immutable; copy
    before annotating.  Certificates are exempt — a result carrying one is
    never served from a cache precisely so the certificate can be mutated.

    Attributes
    ----------
    holds:
        The procedure's answer.  Meaningful on its own only when
        ``certain`` is True.
    certain:
        True when the answer is exact (always the case for the paper's
        decidable classes unless a size budget was exhausted first).
    method:
        Which procedure produced the answer (``"chandra-merlin"``,
        ``"fd-chase"``, ``"bounded-chase"``, ``"failed-chase"``).
    reason:
        One-line human-readable justification.
    levels_built / chase_size:
        Size of the (partial) chase the decision inspected.
    level_bound:
        The Theorem 2 bound that was in force (None for the FD-only and
        dependency-free procedures).
    homomorphism:
        The witnessing containment mapping when ``holds`` is True (symbols
        of Q' to symbols of the chase of Q).
    certificate:
        A :class:`~repro.containment.certificates.ContainmentCertificate`
        when one was requested.
    """

    holds: bool
    certain: bool
    method: str
    reason: str = ""
    levels_built: int = 0
    chase_size: int = 0
    level_bound: Optional[int] = None
    homomorphism: Optional[Dict[Any, Any]] = None
    certificate: Optional[Any] = None

    def __bool__(self) -> bool:
        """Truthiness is the (certain) answer; raises if uncertain.

        This keeps ``if is_contained(...):`` honest: an uncertain result
        never silently converts to False.
        """
        if not self.certain:
            raise ContainmentUndecided(
                f"containment undecided ({self.reason}); "
                "inspect .holds/.certain explicitly or raise the budgets"
            )
        return self.holds

    def require_certain(self) -> "ContainmentResult":
        """Raise :class:`ContainmentUndecided` unless the answer is exact."""
        if not self.certain:
            raise ContainmentUndecided(self.reason)
        return self

    def describe(self) -> str:
        verdict = "holds" if self.holds else "does not hold"
        certainty = "" if self.certain else " (UNCERTAIN)"
        bound = f", level bound {self.level_bound}" if self.level_bound is not None else ""
        return (
            f"containment {verdict}{certainty} by {self.method}: {self.reason} "
            f"[chase: {self.chase_size} conjuncts, {self.levels_built} levels{bound}]"
        )
