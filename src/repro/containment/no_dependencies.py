"""Containment with no dependencies (Chandra & Merlin, the W = 0 baseline).

``Q ⊆ Q'`` over all databases iff there is a query homomorphism from Q' to
Q.  This is the NP-complete base case the paper's Theorem 2 generalises;
the benchmarks use it both as the baseline (experiment E9) and as a
cross-check for the chase-based procedures on Σ = ∅.
"""

from __future__ import annotations

from repro.containment.result import ContainmentResult
from repro.homomorphism.query_homomorphism import find_query_homomorphism
from repro.queries.conjunctive_query import ConjunctiveQuery


def contained_without_dependencies(query: ConjunctiveQuery,
                                   query_prime: ConjunctiveQuery) -> ContainmentResult:
    """Decide ``Q ⊆ Q'`` with Σ = ∅ via the containment-mapping criterion."""
    query.require_same_interface(query_prime)
    mapping = find_query_homomorphism(
        query_prime.conjuncts, query_prime.summary_row,
        query.conjuncts, query.summary_row,
    )
    if mapping is not None:
        return ContainmentResult(
            holds=True, certain=True, method="chandra-merlin",
            reason="containment mapping from Q' to Q found",
            levels_built=0, chase_size=len(query), homomorphism=mapping,
        )
    return ContainmentResult(
        holds=False, certain=True, method="chandra-merlin",
        reason="no containment mapping from Q' to Q exists",
        levels_built=0, chase_size=len(query),
    )
